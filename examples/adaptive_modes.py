#!/usr/bin/env python3
"""Adaptive mode selection: the §5 hardware sketch, running.

"By measuring the fraction of writes in the distributed write mode and the
fraction of reads in the global read mode it should be possible to choose
the mode with least communication cost.  This could be done by using two
counters..."

This example runs a *phase-changing* workload -- a block that is
read-mostly for a while, then becomes write-heavy, then read-mostly again
-- under four policies: each mode pinned statically, the idealised oracle
selector (sees true w), and the owner-visible two-counter selector of §5.
Watch the adaptive policies switch modes as the phases change, and the
traffic they save.

Run:  python examples/adaptive_modes.py
"""

import os
import sys

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installation
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro.analysis.report import render_table
from repro.cache.state import Mode
from repro.protocol.modes import (
    AdaptiveModePolicy,
    OracleModePolicy,
    StaticModePolicy,
)
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads import markov_block_trace

N_NODES = 16
TASKS = list(range(8))
PHASES = (
    ("read-mostly", 0.05, 1500),
    ("write-heavy", 0.85, 1500),
    ("read-mostly", 0.05, 1500),
)


def phase_trace():
    references = []
    for index, (_, write_fraction, length) in enumerate(PHASES):
        phase = markov_block_trace(
            N_NODES, TASKS, write_fraction, length, seed=index + 1
        )
        references.extend(phase.references)
    return references


def run(policy_name, policy):
    protocol = StenstromProtocol(
        System(SystemConfig(n_nodes=N_NODES)), mode_policy=policy
    )
    trace = phase_trace()
    report = run_trace(
        protocol, trace, verify=True, check_invariants_every=500
    )
    return (
        policy_name,
        f"{report.cost_per_reference:.1f}",
        report.stats.events.get("mode_switches", 0),
        str(protocol.mode_of(0)),
    )


def main() -> None:
    phases_text = " -> ".join(
        f"{name} (w={w})" for name, w, _ in PHASES
    )
    print(f"workload phases: {phases_text}\n")
    rows = [
        run("static DW", StaticModePolicy(Mode.DISTRIBUTED_WRITE)),
        run("static GR", StaticModePolicy(Mode.GLOBAL_READ)),
        run("oracle (true w)", OracleModePolicy(window=64)),
        run("adaptive (§5 counters)", AdaptiveModePolicy(window=64)),
    ]
    print(
        render_table(
            ("policy", "bits/ref", "mode switches", "final mode"),
            rows,
            title="Phase-changing block, 8 sharers, coherence verified",
        )
    )
    print(
        "\nThe measuring policies ride each phase in its cheaper mode; "
        "the statics are right only half the time."
    )


if __name__ == "__main__":
    main()
