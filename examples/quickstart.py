#!/usr/bin/env python3
"""Quickstart: build a machine, run a shared-data workload, read the stats.

Builds the Figure 1 multiprocessor (8 processors with private caches and
interleaved memory modules on an omega network), runs the paper's §4
workload (four tasks sharing one block, 10% writes) under the two-mode
protocol with the oracle mode selector, and prints what the network
carried -- with coherence verified on every reference.

Run:  python examples/quickstart.py
"""

import os
import sys

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installation
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro import (
    Mode,
    OracleModePolicy,
    StenstromProtocol,
    System,
    SystemConfig,
    run_trace,
)
from repro.types import Address
from repro.workloads import markov_block_trace


def main() -> None:
    # An 8-node machine: 8 caches, 8 memory modules, a 3-stage omega
    # network of 2x2 switches.
    system = System(
        SystemConfig(n_nodes=8, cache_entries=16, block_size_words=4)
    )
    protocol = StenstromProtocol(
        system, mode_policy=OracleModePolicy(window=32)
    )

    # The paper's reference model: tasks 0..3 share a block, task 0
    # writes 10% of the time, everyone reads.
    trace = markov_block_trace(
        n_nodes=8,
        tasks=[0, 1, 2, 3],
        write_fraction=0.10,
        n_references=4000,
        seed=1,
    )

    report = run_trace(protocol, trace, verify=True)
    print(report.summary())
    print()

    # Peek at the coherence state the paper distributes to the caches —
    # the Figure 2 picture, straight from the live machine.
    from repro.sim.snapshot import block_snapshot

    block = 0
    print(block_snapshot(system, block).render())
    print()

    # Mode selection in action: with 4 sharers the threshold is
    # w1 = 2/(4+2) = 0.33, so a 10%-write block belongs in
    # distributed-write mode -- reads become local cache hits.
    assert protocol.mode_of(block) is Mode.DISTRIBUTED_WRITE
    print(
        "w = 0.10 < w1 = 0.33 -> the selector put the block in "
        "distributed-write mode;"
    )
    print("a remote read is now a local hit:")
    bits_before = system.network.total_bits
    value = protocol.read(3, Address(block, 0))
    print(
        f"  cache 3 read value {value} costing "
        f"{system.network.total_bits - bits_before} network bits"
    )


if __name__ == "__main__":
    main()
