#!/usr/bin/env python3
"""Blocking, contention and latency on the omega network.

The paper's opening problem is network traffic on a *blocking* multistage
network.  This example makes the blocking tangible:

1. permutations: the identity passes in one conflict-free round, the
   perfect shuffle and bit-reversal do not;
2. hot spots: repeated-unicast multicast (scheme 1) hammers the source's
   first link, the vector scheme (scheme 2) crosses it once;
3. latency: the same deliveries pushed through the store-and-forward
   timing model, where scheme 1's serialisation shows up as makespan.

Run:  python examples/network_contention.py
"""

import os
import sys

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installation
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro.analysis.report import render_table
from repro.network import Message, OmegaNetwork
from repro.network.contention import (
    is_conflict_free,
    link_load_profile,
    passable_rounds,
)
from repro.network.cost import adjacent_placement
from repro.network.multicast import (
    multicast_scheme1,
    multicast_scheme2,
    multicast_scheme3,
)
from repro.sim.timing import makespan

N = 32
M_BITS = 128


def bit_reversal(port: int, m: int) -> int:
    return int(format(port, f"0{m}b")[::-1], 2)


def permutations() -> None:
    net = OmegaNetwork(N)
    m = net.n_stages
    cases = {
        "identity": [(p, p) for p in range(N)],
        "perfect shuffle": [(p, net.shuffle(p)) for p in range(N)],
        "bit reversal": [(p, bit_reversal(p, m)) for p in range(N)],
    }
    rows = []
    for name, pairs in cases.items():
        rounds = passable_rounds(net, pairs)
        rows.append(
            (name, "yes" if is_conflict_free(net, pairs) else "no",
             len(rounds))
        )
    print(
        render_table(
            ("permutation", "one pass?", "rounds needed"),
            rows,
            title=f"Permutation passability on a {N}-port omega network",
        )
    )
    print()


def hotspots_and_latency() -> None:
    dests = adjacent_placement(N, 8)
    message = Message(source=5, payload_bits=M_BITS)
    rows = []
    for name, scheme in (
        ("scheme 1", multicast_scheme1),
        ("scheme 2", multicast_scheme2),
        ("scheme 3", multicast_scheme3),
    ):
        net = OmegaNetwork(N)
        result = scheme(net, message, dests)
        profile = link_load_profile(net)
        rows.append(
            (
                name,
                result.cost,
                profile.busiest_bits,
                makespan([result.loads]),
            )
        )
    print(
        render_table(
            ("scheme", "total bits", "busiest link bits",
             "makespan (cycles)"),
            rows,
            title=(
                f"One {M_BITS}-bit update to 8 adjacent caches "
                f"(N={N}): traffic, hot spot, latency"
            ),
        )
    )
    print(
        "\nScheme 1 pays the shared links once per destination -- in "
        "bits, in hot-spot\nload, and in serialised cycles.  The tree "
        "schemes pay them once."
    )


def main() -> None:
    permutations()
    hotspots_and_latency()


if __name__ == "__main__":
    main()
