#!/usr/bin/env python3
"""Multicast explorer: the three §3 schemes on a real switch fabric.

Routes one message to a destination set of your choosing through a
simulated omega network under scheme 1 (repeated unicast), scheme 2
(present-flag-vector routing) and scheme 3 (broadcast-bit subcube
routing), printing the per-stage link loads and comparing the measured
bits against the paper's closed forms.  Finishes with the Figure 5 and
Figure 6 cost curves.

Run:  python examples/multicast_explorer.py [dest [dest ...]]
      python examples/multicast_explorer.py 0 2 3 6      # the Figure 4 set
"""

import os
import sys

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installation
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro.analysis.figures import fig5_data, fig6_data
from repro.analysis.report import render_series
from repro.network import Message, OmegaNetwork, cc1, cc2_worst
from repro.network.multicast import (
    multicast_combined,
    multicast_scheme1,
    multicast_scheme2,
    multicast_scheme3,
)

NETWORK_SIZE = 8
MESSAGE_BITS = 20
SOURCE = 1


def describe(name, result):
    print(f"{name}:")
    print(f"  delivered to : {sorted(result.delivered)}")
    by_level = {}
    for load in result.loads:
        by_level.setdefault(load.level, []).append(load)
    for level in sorted(by_level):
        loads = by_level[level]
        detail = ", ".join(
            f"pos {load.position} ({load.bits}b)" for load in loads
        )
        print(f"  link level {level}: {detail}")
    print(f"  total cost   : {result.cost} bits "
          f"over {result.links_used} distinct links")
    print()


def main() -> None:
    dests = (
        [int(arg) for arg in sys.argv[1:]]
        if len(sys.argv) > 1
        else [0, 2, 3, 6]  # the paper's Figure 4 example
    )
    net = OmegaNetwork(NETWORK_SIZE)
    message = Message(source=SOURCE, payload_bits=MESSAGE_BITS)
    print(
        f"N={NETWORK_SIZE} omega network, source {SOURCE}, "
        f"M={MESSAGE_BITS}-bit message, destinations {dests}\n"
    )

    describe(
        "scheme 1 (one unicast per destination)",
        multicast_scheme1(net, message, dests, commit=False),
    )
    describe(
        "scheme 2 (present-flag vector as routing tag)",
        multicast_scheme2(net, message, dests, commit=False),
    )
    describe(
        "scheme 3 (broadcast-bit subcube, minimal cover)",
        multicast_scheme3(net, message, dests, exact=False, commit=False),
    )
    combined = multicast_combined(net, message, dests, commit=False)
    print(
        f"combined scheme (eq. 8) picks: {combined.scheme.name.lower()} "
        f"at {combined.cost} bits\n"
    )

    # Sanity against the closed forms at a canonical placement.
    n = 4
    print(
        f"closed-form check at N=1024, M=20, n={n} (worst case): "
        f"CC1={cc1(n, 1024, 20)}, CC2={cc2_worst(n, 1024, 20)}\n"
    )

    print(
        render_series(
            fig5_data(),
            title="Figure 5: scheme 1 vs scheme 2 (N=1024, M=20)",
            log_x=True,
        )
    )
    print()
    print(
        render_series(
            fig6_data(),
            title="Figure 6: schemes 1, 2', 3 (N=1024, n1=128, M=20)",
            log_x=True,
        )
    )


if __name__ == "__main__":
    main()
