#!/usr/bin/env python3
"""Matrix workloads: the applications §5 says the protocol is built for.

"For any application where each block of its shared data structure is
modified by at most one task, ownership will not change.  This is true for
many supercomputing applications such as algorithms based on matrix
operations."

Runs a banded Jacobi relaxation and a blocked matrix multiply through the
two-mode protocol and the baselines, verifying coherence throughout, and
checks the claim directly: under the single-writer workloads the two-mode
protocol performs (almost) no ownership transfers, while the migratory
workload -- the paper's stated bad case -- forces one per hand-off.

Run:  python examples/matrix_workload.py
"""

import os
import sys

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installation
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro.analysis.compare import compare_protocols, default_factories
from repro.analysis.report import render_table
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads import (
    jacobi_trace,
    matrix_multiply_trace,
    migratory_trace,
)

N_NODES = 8
TASKS = [0, 1, 2, 3]


def run_comparison(name, trace):
    config = SystemConfig(
        n_nodes=N_NODES,
        cache_entries=64,
        block_size_words=trace.block_size_words,
    )
    comparison = compare_protocols(trace, config)
    print(f"== {name} ({len(trace)} references, "
          f"w={trace.write_fraction:.2f}) ==")
    print(comparison.render())
    print(f"cheapest: {comparison.winner()}\n")
    return comparison


def ownership_transfers(trace):
    protocol = StenstromProtocol(
        System(
            SystemConfig(
                n_nodes=N_NODES,
                cache_entries=64,
                block_size_words=trace.block_size_words,
            )
        )
    )
    report = run_trace(protocol, trace, verify=True)
    return report.stats.events.get("ownership_transfers", 0)


def main() -> None:
    jacobi = jacobi_trace(
        N_NODES, TASKS, rows=16, row_words=8, sweeps=3,
        block_size_words=4,
    )
    matmul = matrix_multiply_trace(
        N_NODES, TASKS, size=8, block_size_words=4
    )
    migratory = migratory_trace(N_NODES, TASKS, n_rounds=100)

    run_comparison("Jacobi relaxation (banded rows)", jacobi)
    run_comparison("matrix multiply C = A x B", matmul)
    run_comparison("migratory block (the §5 bad case)", migratory)

    rows = [
        ("jacobi", ownership_transfers(jacobi)),
        ("matmul", ownership_transfers(matmul)),
        ("migratory", ownership_transfers(migratory)),
    ]
    print(
        render_table(
            ("workload", "ownership transfers"),
            rows,
            title=(
                "§5 claim: single-writer matrix workloads keep ownership "
                "fixed; migratory sharing does not"
            ),
        )
    )


if __name__ == "__main__":
    main()
