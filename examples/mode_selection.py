#!/usr/bin/env python3
"""Mode selection: the §4 analysis and the same experiment on the machine.

Sweeps the write fraction ``w`` and shows, side by side:

* the analytic normalized costs of Figure 8 (no cache, write-once,
  distributed write, global read, two-mode with the ``w1 = 2/(n+2)``
  threshold), and
* the measured costs of the actual protocols on the simulated
  multiprocessor under the same uniform message-size model.

The headline claim to watch: the two-mode curve never rises above the
uncached reference line, while write-once (and each single mode) does.

Run:  python examples/mode_selection.py
"""

import os
import sys

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installation
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from repro.analysis.compare import simulated_cost_curve
from repro.analysis.report import render_table
from repro.protocol.costs import (
    normalized_distributed_write,
    normalized_global_read,
    normalized_no_cache,
    normalized_two_mode,
    normalized_write_once,
    two_mode_peak,
)
from repro.protocol.modes import write_fraction_threshold

N_SHARERS = 8
WRITE_FRACTIONS = (0.05, 0.15, 0.3, 0.5, 0.7, 0.9)


def analytic_table() -> str:
    rows = []
    for w in WRITE_FRACTIONS:
        rows.append(
            (
                f"{w:.2f}",
                f"{normalized_no_cache(w):.2f}",
                f"{normalized_write_once(w, N_SHARERS):.2f}",
                f"{normalized_distributed_write(w, N_SHARERS):.2f}",
                f"{normalized_global_read(w):.2f}",
                f"{normalized_two_mode(w, N_SHARERS):.2f}",
            )
        )
    return render_table(
        ("w", "no cache", "write-once", "distr. write", "global read",
         "two-mode"),
        rows,
        title=f"Analytic (eqs. 9-12, scheme 1, n={N_SHARERS} sharers)",
    )


def simulated_table() -> str:
    curves = simulated_cost_curve(
        WRITE_FRACTIONS,
        N_SHARERS,
        n_nodes=16,
        references=3000,
        warmup=500,
        seed=2,
    )
    names = ("no-cache", "write-once", "distributed-write", "global-read",
             "two-mode")
    rows = []
    for index, w in enumerate(WRITE_FRACTIONS):
        rows.append(
            (f"{w:.2f}",)
            + tuple(f"{curves[name][index][1]:.2f}" for name in names)
        )
    return render_table(
        ("w",) + names,
        rows,
        title=(
            f"Simulated (verifying machine, n={N_SHARERS} sharers, "
            f"N=16, uniform M=20)"
        ),
    )


def main() -> None:
    w1 = write_fraction_threshold(N_SHARERS)
    print(analytic_table())
    print()
    print(
        f"threshold w1 = 2/(n+2) = {w1:.3f}; below it distributed write "
        f"wins, above it global read."
    )
    print(
        f"two-mode worst case = 2n/(n+2) = {two_mode_peak(N_SHARERS):.2f}"
        f" < 2.00 = the uncached worst case.\n"
    )
    print(simulated_table())
    print(
        "\nThe simulated two-mode protocol (oracle selector) tracks the "
        "lower envelope, as the analysis predicts."
    )


if __name__ == "__main__":
    main()
