"""Repo-level pytest configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites run against
the in-tree sources even when the package has not been installed (useful in
offline environments where ``pip install -e .`` is unavailable).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
