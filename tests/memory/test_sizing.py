"""Unit tests for the §1 state-memory sizing models."""

import pytest

from repro.cache.state import StateField
from repro.errors import ConfigurationError
from repro.memory.sizing import (
    full_map_directory_bits,
    limited_pointer_directory_bits,
    split_stenstrom_state_bits,
    state_memory_comparison,
    stenstrom_state_bits,
)


class TestFullMapSize:
    def test_formula(self):
        # N presence bits + dirty + valid, per block.
        assert full_map_directory_bits(64, 1000) == 1000 * 66

    def test_scales_linearly_in_memory(self):
        assert full_map_directory_bits(64, 2000) == 2 * (
            full_map_directory_bits(64, 1000)
        )


class TestStenstromSize:
    def test_formula(self):
        n, blocks, entries = 64, 1000, 32
        expected = n * entries * StateField.size_bits(n) + blocks * (1 + 6)
        assert stenstrom_state_bits(n, blocks, entries) == expected

    def test_memory_term_is_log_n_not_n(self):
        # Growing memory adds only (1 + log2 N) bits per block.
        small = stenstrom_state_bits(64, 1000, 32)
        large = stenstrom_state_bits(64, 2000, 32)
        assert large - small == 1000 * 7

    def test_paper_claim_wins_for_large_memories(self):
        """The §1 point: for big main memories the proposed scheme's state
        is far smaller than a full-map directory."""
        comparison = state_memory_comparison(
            n_caches=1024, memory_blocks=1 << 26, cache_entries=1 << 12
        )
        assert comparison.ratio > 10.0

    def test_full_map_can_win_for_tiny_memories(self):
        # With almost no main memory the per-cache state dominates.
        comparison = state_memory_comparison(
            n_caches=1024, memory_blocks=64, cache_entries=1 << 12
        )
        assert comparison.ratio < 1.0


class TestLimitedPointerSize:
    def test_formula(self):
        # 2 pointers x 6 bits + broadcast + dirty + valid, per block.
        assert limited_pointer_directory_bits(64, 1000, 2) == 1000 * 15

    def test_much_smaller_than_full_map_for_large_n(self):
        full = full_map_directory_bits(1024, 1 << 20)
        limited = limited_pointer_directory_bits(1024, 1 << 20, 2)
        assert limited < full / 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            limited_pointer_directory_bits(64, 1000, 0)


class TestSplitOrganisation:
    """The §5 split state memory: present vectors only for owned blocks."""

    def test_formula(self):
        n, blocks, entries, owned, tag = 64, 1000, 32, 4, 32
        expected = (
            n * (entries * (3 + 6) + owned * (tag + 64 + 1))
            + blocks * 7
        )
        assert (
            split_stenstrom_state_bits(n, blocks, entries, owned, tag)
            == expected
        )

    def test_small_owner_store_beats_unified_layout(self):
        """The paper's point: when a cache owns few blocks at a time,
        moving the N-bit vectors to a small associative store shrinks
        the state memory substantially."""
        n, blocks, entries = 1024, 1 << 20, 1 << 12
        unified = stenstrom_state_bits(n, blocks, entries)
        split = split_stenstrom_state_bits(
            n, blocks, entries, owner_store_entries=entries // 16
        )
        assert split < unified / 2

    def test_full_owner_store_is_bigger_than_unified(self):
        # With an owner-store entry per cache entry the tags make the
        # split layout strictly worse -- the trade-off is real.
        n, blocks, entries = 64, 1000, 32
        unified = stenstrom_state_bits(n, blocks, entries)
        split = split_stenstrom_state_bits(
            n, blocks, entries, owner_store_entries=entries
        )
        assert split > unified

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            split_stenstrom_state_bits(64, 1000, 32, 0)
        with pytest.raises(ConfigurationError):
            split_stenstrom_state_bits(64, 1000, 32, 64)
        with pytest.raises(ConfigurationError):
            split_stenstrom_state_bits(64, 1000, 32, 4, tag_bits=0)


class TestValidation:
    def test_rejects_bad_cache_count(self):
        with pytest.raises(ConfigurationError):
            full_map_directory_bits(3, 100)

    def test_rejects_bad_memory(self):
        with pytest.raises(ConfigurationError):
            stenstrom_state_bits(64, 0, 32)

    def test_rejects_bad_cache_entries(self):
        with pytest.raises(ConfigurationError):
            stenstrom_state_bits(64, 100, 0)
