"""Unit tests for the interleaved memory modules."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.memory.module import MemoryModule


class TestInterleaving:
    def test_homes_blocks_by_modulo(self):
        module = MemoryModule(module_id=2, n_modules=4, block_size_words=2)
        assert module.homes(2)
        assert module.homes(6)
        assert not module.homes(3)

    def test_foreign_block_access_rejected(self):
        module = MemoryModule(module_id=2, n_modules=4, block_size_words=2)
        with pytest.raises(ProtocolError):
            module.read_block(3)
        with pytest.raises(ProtocolError):
            module.write_word(0, 0, 1)

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModule(module_id=4, n_modules=4, block_size_words=2)
        with pytest.raises(ConfigurationError):
            MemoryModule(module_id=0, n_modules=4, block_size_words=0)


class TestData:
    def test_uninitialised_memory_reads_zero(self):
        module = MemoryModule(module_id=1, n_modules=4, block_size_words=3)
        assert module.read_block(5) == [0, 0, 0]
        assert module.read_word(5, 2) == 0

    def test_block_writeback_roundtrip(self):
        module = MemoryModule(module_id=1, n_modules=4, block_size_words=3)
        module.write_block(5, [7, 8, 9])
        assert module.read_block(5) == [7, 8, 9]
        assert module.read_word(5, 1) == 8

    def test_read_block_returns_a_copy(self):
        module = MemoryModule(module_id=1, n_modules=4, block_size_words=2)
        module.write_block(5, [1, 2])
        data = module.read_block(5)
        data[0] = 99
        assert module.read_block(5) == [1, 2]

    def test_word_write(self):
        module = MemoryModule(module_id=0, n_modules=4, block_size_words=2)
        module.write_word(4, 1, 42)
        assert module.read_block(4) == [0, 42]

    def test_wrong_sized_writeback_rejected(self):
        module = MemoryModule(module_id=0, n_modules=4, block_size_words=2)
        with pytest.raises(ProtocolError):
            module.write_block(4, [1, 2, 3])

    def test_out_of_range_offset_rejected(self):
        module = MemoryModule(module_id=0, n_modules=4, block_size_words=2)
        with pytest.raises(ProtocolError):
            module.read_word(4, 2)
        with pytest.raises(ProtocolError):
            module.write_word(4, -1, 0)
