"""Unit tests for the memory module's block store."""

from repro.memory.block_store import BlockStore


class TestBlockStore:
    def test_unknown_block_has_no_owner(self):
        store = BlockStore()
        assert store.owner_of(42) is None

    def test_set_and_read_owner(self):
        store = BlockStore()
        store.set_owner(42, 3)
        assert store.owner_of(42) == 3

    def test_owner_can_change(self):
        store = BlockStore()
        store.set_owner(42, 3)
        store.set_owner(42, 5)
        assert store.owner_of(42) == 5

    def test_clear_invalidates(self):
        store = BlockStore()
        store.set_owner(42, 3)
        store.clear(42)
        assert store.owner_of(42) is None

    def test_clear_of_unknown_block_is_harmless(self):
        store = BlockStore()
        store.clear(42)
        assert store.owner_of(42) is None

    def test_valid_blocks_listing(self):
        store = BlockStore()
        store.set_owner(7, 0)
        store.set_owner(3, 1)
        store.set_owner(9, 2)
        store.clear(3)
        assert store.valid_blocks() == [7, 9]

    def test_lazy_entry_materialisation(self):
        store = BlockStore()
        entry = store.lookup(11)
        assert not entry.valid
        entry.valid = True
        entry.owner = 4
        assert store.owner_of(11) == 4
