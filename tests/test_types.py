"""Unit tests for the shared elementary types."""

import pytest

from repro.types import Address, Op, Reference, ilog2, is_power_of_two


class TestAddress:
    def test_from_word_splits(self):
        assert Address.from_word(11, block_size=4) == Address(2, 3)
        assert Address.from_word(0, block_size=4) == Address(0, 0)

    def test_to_word_rebuilds(self):
        assert Address(2, 3).to_word(4) == 11

    def test_roundtrip(self):
        for word in range(64):
            assert Address.from_word(word, 8).to_word(8) == word

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            Address.from_word(10, 0)
        with pytest.raises(ValueError):
            Address(0, 0).to_word(-1)

    def test_out_of_range_offset_rejected(self):
        with pytest.raises(ValueError):
            Address(0, 4).to_word(4)


class TestReference:
    def test_predicates(self):
        write = Reference(0, Op.WRITE, Address(0, 0), 1)
        read = Reference(0, Op.READ, Address(0, 0))
        assert write.is_write and not write.is_read
        assert read.is_read and not read.is_write

    def test_default_value(self):
        assert Reference(0, Op.READ, Address(0, 0)).value == 0


class TestPowerHelpers:
    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 1 << 30])
    def test_powers_accepted(self, value):
        assert is_power_of_two(value)
        assert 2 ** ilog2(value) == value

    @pytest.mark.parametrize("value", [0, -1, 3, 6, 12, 1000])
    def test_non_powers_rejected(self, value):
        assert not is_power_of_two(value)
        with pytest.raises(ValueError):
            ilog2(value)


class TestErrorsHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in (
            "ConfigurationError",
            "NetworkError",
            "MulticastError",
            "ProtocolError",
            "CoherenceError",
            "TraceError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_multicast_error_is_a_network_error(self):
        from repro.errors import MulticastError, NetworkError

        assert issubclass(MulticastError, NetworkError)
