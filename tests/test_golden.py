"""Golden-master traffic numbers.

One fixed trace, every protocol, the exact bit counts the current cost
model produces.  Any change to message sizes, multicast routing, or
protocol behaviour shows up here as a diff to review deliberately -- the
regression net for the quantitative results in EXPERIMENTS.md.

If a change is *intended* (e.g. a cost-model fix), re-derive the numbers
with the snippet in this docstring and update them in the same commit::

    from repro import *
    from repro.cache.state import Mode
    from repro.workloads import random_trace
    trace = random_trace(8, 400, n_blocks=10, block_size_words=2,
                         write_fraction=0.35, seed=2024)
    ...run each protocol and print report.network_total_bits
"""

import pytest

from repro import (
    FullMapProtocol,
    LimitedPointerProtocol,
    NoCacheProtocol,
    StenstromProtocol,
    System,
    SystemConfig,
    WriteOnceProtocol,
    run_trace,
)
from repro.cache.state import Mode
from repro.workloads import random_trace

GOLDEN_TOTAL_BITS = {
    "stenstrom-gr": 143741,
    "stenstrom-dw": 140817,
    "write-once": 112203,
    "full-map": 109835,
    "limited-1": 130782,
    "no-cache": 81672,
}

FACTORIES = {
    "stenstrom-gr": lambda system: StenstromProtocol(system),
    "stenstrom-dw": lambda system: StenstromProtocol(
        system, default_mode=Mode.DISTRIBUTED_WRITE
    ),
    "write-once": WriteOnceProtocol,
    "full-map": FullMapProtocol,
    "limited-1": lambda system: LimitedPointerProtocol(
        system, n_pointers=1
    ),
    "no-cache": NoCacheProtocol,
}


def golden_trace():
    return random_trace(
        8,
        400,
        n_blocks=10,
        block_size_words=2,
        write_fraction=0.35,
        seed=2024,
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_TOTAL_BITS))
def test_golden_traffic(name):
    system = System(
        SystemConfig(n_nodes=8, cache_entries=4, block_size_words=2)
    )
    report = run_trace(
        FACTORIES[name](system), golden_trace(), verify=True
    )
    assert report.network_total_bits == GOLDEN_TOTAL_BITS[name]


def test_golden_trace_is_stable():
    """The workload generator itself must stay deterministic, or the
    numbers above would drift for the wrong reason."""
    first = golden_trace()
    second = golden_trace()
    assert first.references == second.references
    assert first.write_fraction == pytest.approx(0.37)
