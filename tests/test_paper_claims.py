"""The paper's claims, one test per claim, quoted.

A single module that reads as a reproduction certificate: every claim the
paper states (abstract, §3 bullets, §4 theorems, §5 discussion) is quoted
and then checked against this library -- analytically where the paper
argues analytically, and on the simulated machine where that is the
stronger check.
"""

import pytest

from repro.cache.state import Mode
from repro.network import cost
from repro.network.breakeven import (
    breakeven_scheme2_vs_scheme1,
    breakeven_scheme3_vs_scheme2,
)
from repro.protocol import costs as pcosts
from repro.protocol.modes import write_fraction_threshold

W_GRID = [i / 40 for i in range(41)]


class TestAbstract:
    def test_consistency_traffic_restricted_to_copy_holders(self):
        """'Consistency traffic is restricted to the set of caches which
        have a copy of a shared block.'"""
        from repro.protocol.stenstrom import StenstromProtocol
        from repro.sim.system import System, SystemConfig
        from repro.types import Address

        system = System(SystemConfig(n_nodes=16))
        protocol = StenstromProtocol(
            system, default_mode=Mode.DISTRIBUTED_WRITE
        )
        protocol.enable_message_log()
        protocol.write(0, Address(0, 0), 1)
        for node in (1, 2, 3):
            protocol.read(node, Address(0, 0))
        protocol.message_log.clear()
        protocol.write(0, Address(0, 0), 2)
        (update,) = protocol.message_log
        assert update.dests == {1, 2, 3}  # exactly the copy holders

    def test_memory_modules_not_consulted_for_consistency_actions(self):
        """'State information is distributed to the caches and the memory
        modules need not be consulted for consistency actions.'  A warm
        distributed write touches no memory module port."""
        from repro.protocol.messages import MsgKind
        from repro.protocol.stenstrom import StenstromProtocol
        from repro.sim.system import System, SystemConfig
        from repro.types import Address

        system = System(SystemConfig(n_nodes=16))
        protocol = StenstromProtocol(
            system, default_mode=Mode.DISTRIBUTED_WRITE
        )
        protocol.write(0, Address(0, 0), 1)
        protocol.read(1, Address(0, 0))
        protocol.enable_message_log()
        protocol.write(0, Address(0, 0), 2)
        kinds = {entry.kind for entry in protocol.message_log}
        assert kinds == {MsgKind.WRITE_UPDATE}

    def test_two_mode_upper_bound_considerably_lower(self):
        """'The two-mode approach limits the upperbound for the
        communication cost to a value considerably lower than that for
        other protocols.'"""
        for n in (4, 16, 64, 256):
            two_mode_peak = max(
                pcosts.normalized_two_mode(w, n) for w in W_GRID
            )
            write_once_peak = max(
                pcosts.normalized_write_once(w, n) for w in W_GRID
            )
            no_cache_peak = max(
                pcosts.normalized_no_cache(w) for w in W_GRID
            )
            assert two_mode_peak < no_cache_peak
            assert two_mode_peak < write_once_peak
            if n >= 16:
                # 'Considerably': the gap widens without bound in n
                # (two-mode peaks below 2, write-once at (n+2)/4).
                assert two_mode_peak < write_once_peak / 2


class TestSection1Storage:
    def test_state_memory_scaling_claims(self):
        """Directory schemes need O(N M); 'the size of the state
        information memory in this case is O(C(N + log N) + M log N)'.
        Check the scaling exponents empirically on the exact formulas."""
        from repro.memory.sizing import (
            full_map_directory_bits,
            stenstrom_state_bits,
        )

        # Full map: doubling M doubles the bits (linear in M).
        assert full_map_directory_bits(64, 2_000_000) == (
            2 * full_map_directory_bits(64, 1_000_000)
        )
        # Stenström: doubling M adds only (1 + log2 N) per extra block.
        small = stenstrom_state_bits(64, 1_000_000, 1024)
        large = stenstrom_state_bits(64, 2_000_000, 1024)
        assert large - small == 1_000_000 * 7


class TestSection3MulticastBullets:
    def test_breakeven_12_exists_for_n_ge_4(self):
        """'There exists an n <= N such that scheme 2 results in less
        communication cost than scheme 1, for N >= 4.'  (Ties allowed at
        the N=4, M=0 corner, where the formulas give equality.)"""
        for network in (4, 16, 64, 1024):
            for m_bits in (0, 20, 100):
                wins = [
                    n
                    for n in _powers(network)
                    if cost.cc2_worst(n, network, m_bits)
                    <= cost.cc1(n, network, m_bits)
                ]
                assert wins

    def test_breakeven_12_decreases_with_message_size(self):
        """'Break-even will decrease when the message size (M)
        increases.'"""
        values = [
            breakeven_scheme2_vs_scheme1(256, m).first_winning_n
            for m in (0, 20, 40, 100)
        ]
        assert values == sorted(values, reverse=True)

    def test_breakeven_12_increases_with_network_size(self):
        """'Break-even will increase when the number of caches (N)
        increases.'"""
        values = [
            breakeven_scheme2_vs_scheme1(n, 20).first_winning_n
            for n in (64, 256, 1024)
        ]
        assert values == sorted(values)

    def test_breakeven_23_exists(self):
        """'There exists an n <= n1 such that scheme 3 results in less
        communication cost than scheme 2.'"""
        point = breakeven_scheme3_vs_scheme2(128, 1024, 20)
        assert point.first_winning_n is not None

    def test_breakeven_23_increases_with_message_size(self):
        """'Break-even between scheme 2 and 3 will increase when the
        message size (M) increases.'"""
        values = [
            breakeven_scheme3_vs_scheme2(128, 1024, m).first_winning_n
            for m in (0, 20, 40, 60)
        ]
        assert values == sorted(values)

    def test_breakeven_23_decreases_with_network_size(self):
        """'Break-even will decrease when the number of caches (N)
        increases.'"""
        values = [
            breakeven_scheme3_vs_scheme2(128, n, 20).first_winning_n
            for n in (256, 1024, 4096)
        ]
        assert values == sorted(values, reverse=True)


class TestSection4Theorems:
    """'From equations 9, 10, 11, and 12 we can prove that if distributed
    write mode is used when w <= w1 = 2/(n+2) and else global read then
    the average communication cost per reference is (a) less than the
    communication cost without a cache, and (b) [less than] the
    communication cost for write-once.'"""

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 256, 1024])
    def test_threshold_policy_beats_no_cache(self, n):
        for w in W_GRID:
            threshold = write_fraction_threshold(n)
            chosen = (
                pcosts.normalized_distributed_write(w, n)
                if w <= threshold
                else pcosts.normalized_global_read(w)
            )
            assert chosen <= pcosts.normalized_no_cache(w)

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 256, 1024])
    def test_threshold_policy_beats_write_once(self, n):
        for w in W_GRID:
            threshold = write_fraction_threshold(n)
            chosen = (
                pcosts.normalized_distributed_write(w, n)
                if w <= threshold
                else pcosts.normalized_global_read(w)
            )
            assert chosen <= pcosts.normalized_write_once(w, n) + 1e-12

    def test_threshold_is_the_exact_crossover(self):
        for n in (2, 8, 32):
            w1 = write_fraction_threshold(n)
            assert pcosts.normalized_distributed_write(
                w1, n
            ) == pytest.approx(pcosts.normalized_global_read(w1))


class TestSection5Discussion:
    def test_single_writer_blocks_keep_their_owner(self):
        """'For any application where each block of its shared data
        structure is modified by at most one task, ownership will not
        change.'"""
        from repro.protocol.stenstrom import StenstromProtocol
        from repro.sim.engine import run_trace
        from repro.sim.system import System, SystemConfig
        from repro.workloads.matrix import matrix_multiply_trace

        trace = matrix_multiply_trace(
            8, [0, 1, 2, 3], size=4, block_size_words=4
        )
        system = System(
            SystemConfig(n_nodes=8, cache_entries=64, block_size_words=4)
        )
        protocol = StenstromProtocol(
            system, default_mode=Mode.DISTRIBUTED_WRITE
        )
        report = run_trace(protocol, trace, verify=True)
        assert report.stats.events.get("ownership_transfers", 0) == 0

    def test_migratory_blocks_change_owner(self):
        """'However, for applications where several tasks can modify a
        block ... ownership will change which increases the network
        traffic.'"""
        from repro.protocol.stenstrom import StenstromProtocol
        from repro.sim.engine import run_trace
        from repro.sim.system import System, SystemConfig
        from repro.workloads.sharing import migratory_trace

        trace = migratory_trace(8, [0, 1, 2, 3], 10)
        system = System(SystemConfig(n_nodes=8))
        protocol = StenstromProtocol(system)
        report = run_trace(protocol, trace, verify=True)
        assert report.stats.events["ownership_transfers"] > 30

    def test_write_once_can_produce_huge_traffic(self):
        """'The point here was to show that write-once and distributed
        write can result in huge network traffic' -- both exceed the
        uncached cost somewhere, while two-mode never does."""
        n = 64
        exceeds_no_cache = lambda curve: any(  # noqa: E731
            curve(w) > pcosts.normalized_no_cache(w) for w in W_GRID
        )
        assert exceeds_no_cache(
            lambda w: pcosts.normalized_write_once(w, n)
        )
        assert exceeds_no_cache(
            lambda w: pcosts.normalized_distributed_write(w, n)
        )
        assert not exceeds_no_cache(
            lambda w: pcosts.normalized_two_mode(w, n)
        )

    def test_adjacent_allocation_reduces_cost_considerably(self):
        """'Communication cost can be reduced considerably if tasks are
        allocated on adjacently placed processors.'  Compare eq. 8 for
        an adjacent partition against scheme-2 worst case for the same
        destinations scattered."""
        network, n = 1024, 64
        adjacent = cost.cc_combined(n, n, network, 20)
        scattered = min(
            cost.cc1(n, network, 20), cost.cc2_worst(n, network, 20)
        )
        assert adjacent < 0.75 * scattered


def _powers(limit):
    value = 1
    while value <= limit:
        yield value
        value *= 2
