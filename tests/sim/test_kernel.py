"""Tests for the batched columnar kernel (:mod:`repro.sim.kernel`).

Three concerns, mirroring the fast-path table's suite: the kernel must
only be handed out when chunked execution is sound (gating), everything
that can invalidate a memoised answer must be caught by the per-chunk
revalidation (epoch and present-vector stamps), and batched replay must
be bit-identical to the per-``Reference`` dispatch loop for every
workload generator in the repo (equivalence).
"""

import pytest

from repro.cache.state import Mode
from repro.errors import TraceError
from repro.faults.plan import FaultPlan
from repro.obs.hooks import attach_recorder
from repro.obs.recorder import TraceRecorder
from repro.protocol.modes import (
    AdaptiveModePolicy,
    OracleModePolicy,
    PerBlockModePolicy,
    StaticModePolicy,
)
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.kernel import BatchedKernel
from repro.sim.system import System, SystemConfig
from repro.sim.trace import Trace
from repro.types import Address, Op, Reference
from repro.workloads.locks import spinlock_trace
from repro.workloads.markov import markov_block_trace, shared_structure_trace
from repro.workloads.matrix import jacobi_trace, matrix_multiply_trace
from repro.workloads.sharing import (
    migratory_trace,
    ping_pong_trace,
    producer_consumer_trace,
)
from repro.workloads.synthetic import random_trace

from tests.protocol.conftest import build


def _workloads(n_nodes):
    """Every trace generator in the repo, at test-friendly sizes."""
    tasks = list(range(8))
    return {
        "jacobi": lambda compiled: jacobi_trace(
            n_nodes, tasks[:4], rows=8, row_words=8, sweeps=2,
            compiled=compiled,
        ),
        "markov_block": lambda compiled: markov_block_trace(
            n_nodes, tasks, 0.3, 600, seed=3, compiled=compiled
        ),
        "matrix_multiply": lambda compiled: matrix_multiply_trace(
            n_nodes, tasks[:4], size=6, compiled=compiled
        ),
        "migratory": lambda compiled: migratory_trace(
            n_nodes, tasks[:3], 40, compiled=compiled
        ),
        "ping_pong": lambda compiled: ping_pong_trace(
            n_nodes, 0, 1, 60, compiled=compiled
        ),
        "producer_consumer": lambda compiled: producer_consumer_trace(
            n_nodes, 0, tasks[1:4], 40, compiled=compiled
        ),
        "random": lambda compiled: random_trace(
            n_nodes, 600, seed=9, compiled=compiled
        ),
        "shared_structure": lambda compiled: shared_structure_trace(
            n_nodes, tasks[:6], 0.3, 600, seed=4, compiled=compiled
        ),
        "spinlock": lambda compiled: spinlock_trace(
            n_nodes, tasks[:3], 25, compiled=compiled
        ),
    }


class TestEquivalence:
    @pytest.mark.parametrize(
        "default_mode",
        [Mode.GLOBAL_READ, Mode.DISTRIBUTED_WRITE],
        ids=["gr", "dw"],
    )
    @pytest.mark.parametrize("n_nodes", [16, 64])
    @pytest.mark.parametrize("name", sorted(_workloads(16)))
    def test_batched_matches_per_reference(self, name, n_nodes, default_mode):
        make = _workloads(n_nodes)[name]
        compiled_trace = make(True)
        _, batched_protocol = build(
            n_nodes=n_nodes, block_size_words=4, default_mode=default_mode
        )
        batched_report = run_trace(
            batched_protocol,
            compiled_trace,
            verify=False,
            check_invariants_every=0,
        )
        kernel = batched_protocol.batched_kernel()
        assert kernel is not None
        assert (
            kernel.batched_refs + kernel.fallback_refs
            == len(compiled_trace)
        )
        _, slow_protocol = build(
            n_nodes=n_nodes, block_size_words=4, default_mode=default_mode
        )
        slow_report = run_trace(
            slow_protocol,
            make(False).references,
            verify=False,
            check_invariants_every=0,
        )
        assert batched_report.to_dict() == slow_report.to_dict()

    def test_batchable_policy_decisions_match_per_reference(self):
        # A per-block mode map whose decisions fire mid-trace: the kernel
        # must refuse to batch the chunk where decide() wants a switch
        # and route it through the per-reference path.
        n_nodes = 16
        modes = {0: Mode.DISTRIBUTED_WRITE, 1: Mode.GLOBAL_READ}
        reports = []
        for compiled in (True, False):
            trace = shared_structure_trace(
                n_nodes,
                list(range(4)),
                0.4,
                600,
                n_blocks=4,
                seed=12,
                compiled=compiled,
            )
            _, protocol = build(
                n_nodes=n_nodes,
                block_size_words=4,
                mode_policy=PerBlockModePolicy(modes),
            )
            reports.append(
                run_trace(
                    protocol,
                    trace if compiled else trace.references,
                    verify=False,
                    check_invariants_every=0,
                )
            )
        assert reports[0].to_dict() == reports[1].to_dict()

    def test_malformed_row_raises_with_absolute_index(self):
        # The bad row lands in a later chunk, so the index in the error
        # must survive the kernel's chunk-relative fallback replay.
        good = [Reference(0, Op.WRITE, Address(0, 0), 1)] * 100
        bad = good + [Reference(7, Op.READ, Address(0, 0))]
        trace = Trace(bad, 8, 2).compile()
        _, protocol = build(n_nodes=4)
        with pytest.raises(TraceError, match="reference 100"):
            run_trace(protocol, trace, verify=False, check_invariants_every=0)


class TestGating:
    def test_kernel_is_memoised(self):
        _, protocol = build()
        kernel = protocol.batched_kernel()
        assert isinstance(kernel, BatchedKernel)
        assert protocol.batched_kernel() is kernel

    def test_message_log_gates_the_kernel(self):
        _, protocol = build()
        protocol.enable_message_log()
        assert protocol.fastpath() is None
        assert protocol.batched_kernel() is None

    def test_recorder_gates_the_kernel(self):
        _, protocol = build()
        attach_recorder(protocol, TraceRecorder())
        assert protocol.batched_kernel() is None

    def test_fault_injection_gates_the_kernel(self):
        system = System(
            SystemConfig(n_nodes=4),
            fault_plan=FaultPlan(drop_probability=0.1, seed=3),
        )
        protocol = StenstromProtocol(system)
        assert protocol.batched_kernel() is None

    def test_batchable_policies_allow_the_kernel(self):
        for policy in (
            StaticModePolicy(Mode.GLOBAL_READ),
            PerBlockModePolicy({0: Mode.DISTRIBUTED_WRITE}),
        ):
            _, protocol = build(mode_policy=policy)
            assert protocol.batched_kernel() is not None

    def test_counting_policies_stand_the_kernel_down(self):
        # Oracle/adaptive policies observe every reference, which a
        # batched chunk cannot replicate -- but the per-reference fast
        # path (which does observe) must stay engaged.
        for policy in (OracleModePolicy(), AdaptiveModePolicy()):
            _, protocol = build(mode_policy=policy)
            assert protocol.batched_kernel() is None
            assert protocol.fastpath() is not None

    def test_engine_skips_kernel_when_verifying(self):
        _, protocol = build(n_nodes=4)
        refs = [Reference(0, Op.WRITE, Address(0, 0), 1)] * 200
        trace = Trace(refs, 4, 2).compile()
        run_trace(protocol, trace, verify=True)
        kernel = protocol.batched_kernel()
        assert kernel.batched_refs == kernel.fallback_refs == 0

    def test_counters_accumulate_across_runs(self):
        _, protocol = build(n_nodes=4)
        refs = [Reference(0, Op.WRITE, Address(0, 0), 1)] * 200
        trace = Trace(refs, 4, 2).compile()
        run_trace(protocol, trace, verify=False, check_invariants_every=0)
        kernel = protocol.batched_kernel()
        first = kernel.batched_refs + kernel.fallback_refs
        assert first == 200
        run_trace(protocol, trace, verify=False, check_invariants_every=0)
        assert kernel.batched_refs + kernel.fallback_refs == 400
        # Batched hits count as table hits, so coverage stays total.
        table = protocol.fastpath()
        assert table.hits + table.misses == 400


class TestPresentEpochInvalidation:
    def test_new_reader_at_owner_bumps_present_epoch(self):
        _, protocol = build(default_mode=Mode.GLOBAL_READ)
        protocol.write(0, Address(0, 0), 1)
        before = protocol.present_epoch
        protocol.read(1, Address(0, 0))  # joins the present vector
        after = protocol.present_epoch
        assert after > before
        protocol.read(1, Address(0, 0))  # already present: no churn
        assert protocol.present_epoch == after

    def test_unowned_replacement_bumps_present_epoch(self):
        _, protocol = build(
            default_mode=Mode.DISTRIBUTED_WRITE,
            cache_entries=4,
            associativity=1,
        )
        protocol.write(0, Address(0, 0), 1)
        protocol.read(1, Address(0, 0))  # node 1 holds an unowned copy
        before = protocol.present_epoch
        # Direct-mapped with 4 sets: block 4 lands on block 0's set and
        # evicts node 1's copy, shrinking the owner's present vector.
        protocol.write(1, Address(4, 0), 2)
        assert protocol.present_epoch > before

    def test_stale_present_vector_re_registers_the_dw_record(self):
        n_nodes = 8
        _, protocol = build(
            n_nodes=n_nodes, default_mode=Mode.DISTRIBUTED_WRITE
        )
        protocol.write(0, Address(0, 0), 1)
        protocol.read(1, Address(0, 0))
        protocol.read(2, Address(0, 0))
        table = protocol.fastpath()
        warm = Trace(
            [Reference(0, Op.WRITE, Address(0, 0), v) for v in (2, 3, 4)],
            n_nodes,
            2,
        ).compile()
        table.replay(warm)
        assert (table.hits, table.misses) == (2, 1)
        # A new reader grows the present vector without touching
        # fastpath_epoch; only the present stamp can catch it.
        epoch = protocol.fastpath_epoch
        stamp = protocol.present_epoch
        protocol.read(3, Address(0, 0))
        assert protocol.fastpath_epoch == epoch
        assert protocol.present_epoch > stamp
        table.replay(warm)  # first row re-registers, rest hit again
        assert (table.hits, table.misses) == (4, 2)
        # The refreshed record multicasts to all three copies now.
        for reader in (1, 2, 3):
            assert protocol.read(reader, Address(0, 0)) == 4
