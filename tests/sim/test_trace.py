"""Unit tests for traces and their file format."""

import io

import pytest

from repro.errors import TraceError
from repro.sim.trace import (
    Trace,
    dump_trace,
    load_trace,
    parse_trace,
    save_trace,
)
from repro.types import Address, Op, Reference


def sample_trace():
    return Trace(
        [
            Reference(0, Op.WRITE, Address(3, 1), 42),
            Reference(2, Op.READ, Address(3, 1)),
            Reference(1, Op.READ, Address(0, 0)),
        ],
        n_nodes=4,
        block_size_words=2,
    )


class TestValidation:
    def test_valid_trace_constructs(self):
        assert len(sample_trace()) == 3

    def test_node_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                [Reference(4, Op.READ, Address(0, 0))],
                n_nodes=4,
                block_size_words=2,
            )

    def test_offset_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                [Reference(0, Op.READ, Address(0, 2))],
                n_nodes=4,
                block_size_words=2,
            )

    def test_negative_block_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                [Reference(0, Op.READ, Address(-1, 0))],
                n_nodes=4,
                block_size_words=2,
            )

    def test_bad_geometry_rejected(self):
        with pytest.raises(TraceError):
            Trace([], n_nodes=0, block_size_words=2)


class TestStatistics:
    def test_write_fraction(self):
        assert sample_trace().write_fraction == pytest.approx(1 / 3)

    def test_write_fraction_of_empty_trace(self):
        assert Trace([], n_nodes=2).write_fraction == 0.0

    def test_nodes_touching(self):
        assert sample_trace().nodes_touching(3) == {0, 2}
        assert sample_trace().nodes_touching(9) == frozenset()


class TestSerialisation:
    def test_stream_roundtrip(self):
        trace = sample_trace()
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        parsed = parse_trace(io.StringIO(buffer.getvalue()))
        assert parsed.references == trace.references
        assert parsed.n_nodes == trace.n_nodes
        assert parsed.block_size_words == trace.block_size_words

    def test_file_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        assert load_trace(path).references == trace.references

    def test_comments_and_blanks_ignored(self):
        text = (
            "# repro-trace v1 n_nodes=4 block_size=2\n"
            "\n"
            "# a comment\n"
            "0 W 3:1 42\n"
        )
        parsed = parse_trace(io.StringIO(text))
        assert len(parsed) == 1

    def test_missing_header_rejected(self):
        with pytest.raises(TraceError):
            parse_trace(io.StringIO("0 W 3:1 42\n"))

    def test_empty_file_rejected(self):
        with pytest.raises(TraceError):
            parse_trace(io.StringIO(""))

    def test_malformed_line_rejected(self):
        text = "# repro-trace v1 n_nodes=4 block_size=2\n0 W 3 42\n"
        with pytest.raises(TraceError, match="line 2"):
            parse_trace(io.StringIO(text))

    def test_unknown_op_rejected(self):
        text = "# repro-trace v1 n_nodes=4 block_size=2\n0 Z 3:1 42\n"
        with pytest.raises(TraceError, match="unknown operation"):
            parse_trace(io.StringIO(text))

    def test_header_missing_fields_rejected(self):
        with pytest.raises(TraceError):
            parse_trace(io.StringIO("# repro-trace v1 n_nodes=4\n"))
