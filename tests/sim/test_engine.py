"""Unit tests for the verifying simulation engine."""

import pytest

from repro.errors import CoherenceError, TraceError
from repro.protocol.no_cache import NoCacheProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.types import Address, Op, Reference
from repro.workloads.synthetic import random_trace


def build_protocol():
    return NoCacheProtocol(System(SystemConfig(n_nodes=4)))


class BrokenProtocol(NoCacheProtocol):
    """Returns garbage on the third read: verification must catch it."""

    name = "broken"

    def __init__(self, system):
        super().__init__(system)
        self._reads = 0

    def read(self, node, address):
        self._reads += 1
        value = super().read(node, address)
        return value + 1 if self._reads == 3 else value


class TestVerification:
    def test_correct_protocol_passes(self):
        trace = random_trace(4, 200, n_blocks=4, seed=1)
        report = run_trace(build_protocol(), trace, verify=True)
        assert report.verified

    def test_stale_read_detected_with_reference_index(self):
        protocol = BrokenProtocol(System(SystemConfig(n_nodes=4)))
        trace = [
            Reference(0, Op.WRITE, Address(0, 0), 5),
            Reference(1, Op.READ, Address(0, 0)),
            Reference(2, Op.READ, Address(0, 0)),
            Reference(3, Op.READ, Address(0, 0)),  # corrupted (3rd read)
        ]
        with pytest.raises(CoherenceError, match="reference 3"):
            run_trace(protocol, trace, verify=True)

    def test_verify_false_skips_value_checks(self):
        protocol = BrokenProtocol(System(SystemConfig(n_nodes=4)))
        trace = [
            Reference(1, Op.READ, Address(0, 0)),
            Reference(1, Op.READ, Address(0, 0)),
            Reference(1, Op.READ, Address(0, 0)),
        ]
        report = run_trace(protocol, trace, verify=False)
        assert not report.verified

    def test_foreign_node_rejected(self):
        trace = [Reference(9, Op.READ, Address(0, 0))]
        with pytest.raises(TraceError):
            run_trace(build_protocol(), trace)


class TestReportContents:
    def test_counts_and_fractions(self):
        trace = [
            Reference(0, Op.WRITE, Address(0, 0), 1),
            Reference(0, Op.READ, Address(0, 0)),
            Reference(1, Op.READ, Address(0, 0)),
            Reference(1, Op.WRITE, Address(0, 1), 2),
        ]
        report = run_trace(build_protocol(), trace)
        assert report.n_references == 4
        assert report.n_reads == 2
        assert report.n_writes == 2
        assert report.write_fraction == 0.5

    def test_network_totals_match_levels(self):
        trace = random_trace(4, 100, n_blocks=4, seed=2)
        report = run_trace(build_protocol(), trace)
        assert sum(report.network_bits_by_level) == (
            report.network_total_bits
        )

    def test_cost_per_reference(self):
        trace = [Reference(0, Op.READ, Address(0, 0))]
        report = run_trace(build_protocol(), trace)
        assert report.cost_per_reference == report.network_total_bits

    def test_empty_trace(self):
        report = run_trace(build_protocol(), [])
        assert report.n_references == 0
        assert report.cost_per_reference == 0.0

    def test_summary_mentions_the_essentials(self):
        trace = random_trace(4, 50, n_blocks=4, seed=3)
        report = run_trace(build_protocol(), trace)
        text = report.summary()
        assert "no-cache" in text
        assert "bits" in text

    def test_traffic_reset_between_runs(self):
        # The second run starts from warm memory, so value verification
        # is off; the point is that the traffic counters restart at zero.
        protocol = build_protocol()
        trace = random_trace(4, 50, n_blocks=4, seed=4)
        first = run_trace(protocol, trace, verify=False)
        second = run_trace(protocol, trace, verify=False)
        assert first.network_total_bits == second.network_total_bits


class TestInvariantStride:
    def test_invariants_checked_with_stride(self):
        system = System(SystemConfig(n_nodes=4, cache_entries=2))
        protocol = StenstromProtocol(system)
        trace = random_trace(4, 300, n_blocks=8, seed=5)
        report = run_trace(
            protocol, trace, verify=True, check_invariants_every=50
        )
        assert report.verified


class CountingProtocol(NoCacheProtocol):
    """Counts structural-invariant re-checks so strides are observable."""

    name = "counting"

    def __init__(self, system):
        super().__init__(system)
        self.invariant_checks = 0

    def check_invariants(self):
        self.invariant_checks += 1
        super().check_invariants()


class TestVerifyStrideCombinations:
    """The two knobs of run_trace compose; each combination is explicit.

    ``verify`` controls *value* checks (shadow memory), while
    ``check_invariants_every`` controls *structural* checks -- setting
    the stride to 0 turns invariants off without touching value
    verification, and a non-zero stride enables invariants even with
    ``verify=False``.
    """

    def trace(self, n=20):
        return random_trace(4, n, n_blocks=4, seed=8)

    def test_verify_with_stride_zero_keeps_value_checks(self):
        # Invariants never run...
        protocol = CountingProtocol(System(SystemConfig(n_nodes=4)))
        run_trace(
            protocol, self.trace(), verify=True, check_invariants_every=0
        )
        assert protocol.invariant_checks == 0
        # ...but a stale read is still caught by the shadow memory.
        broken = BrokenProtocol(System(SystemConfig(n_nodes=4)))
        stale = [
            Reference(0, Op.WRITE, Address(0, 0), 5),
            Reference(1, Op.READ, Address(0, 0)),
            Reference(2, Op.READ, Address(0, 0)),
            Reference(3, Op.READ, Address(0, 0)),
        ]
        with pytest.raises(CoherenceError):
            run_trace(
                broken, stale, verify=True, check_invariants_every=0
            )

    def test_no_verify_with_stride_runs_only_invariants(self):
        # Structural checks at the stride; the final check is folded into
        # the last in-loop one when the stride divides the length exactly.
        protocol = CountingProtocol(System(SystemConfig(n_nodes=4)))
        run_trace(
            protocol,
            self.trace(20),
            verify=False,
            check_invariants_every=5,
        )
        assert protocol.invariant_checks == 20 // 5
        # ...while value corruption sails through unchecked.
        broken = BrokenProtocol(System(SystemConfig(n_nodes=4)))
        reads = [Reference(1, Op.READ, Address(0, 0))] * 6
        report = run_trace(
            broken, reads, verify=False, check_invariants_every=5
        )
        assert not report.verified

    def test_default_verify_checks_every_reference(self):
        protocol = CountingProtocol(System(SystemConfig(n_nodes=4)))
        run_trace(protocol, self.trace(20), verify=True)
        assert protocol.invariant_checks == 20

    def test_default_no_verify_checks_nothing(self):
        protocol = CountingProtocol(System(SystemConfig(n_nodes=4)))
        run_trace(protocol, self.trace(20), verify=False)
        assert protocol.invariant_checks == 0


class TestReportSerialisation:
    def make_report(self):
        system = System(SystemConfig(n_nodes=4, cache_entries=2))
        protocol = StenstromProtocol(system)
        trace = random_trace(4, 200, n_blocks=8, seed=6)
        return run_trace(protocol, trace, verify=True)

    def test_round_trip_preserves_every_field(self):
        report = self.make_report()
        rebuilt = type(report).from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.protocol_name == report.protocol_name
        assert rebuilt.n_references == report.n_references
        assert rebuilt.network_bits_by_level == (
            report.network_bits_by_level
        )
        assert rebuilt.stats.events == report.stats.events
        assert rebuilt.stats.traffic_bits == report.stats.traffic_bits
        assert rebuilt.cost_per_reference == report.cost_per_reference

    def test_to_dict_is_json_clean(self):
        import json

        report = self.make_report()
        encoded = json.dumps(report.to_dict(), sort_keys=True)
        decoded = type(report).from_dict(json.loads(encoded))
        assert decoded.to_dict() == report.to_dict()
