"""Unit tests for the verifying simulation engine."""

import pytest

from repro.errors import CoherenceError, TraceError
from repro.protocol.no_cache import NoCacheProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.types import Address, Op, Reference
from repro.workloads.synthetic import random_trace


def build_protocol():
    return NoCacheProtocol(System(SystemConfig(n_nodes=4)))


class BrokenProtocol(NoCacheProtocol):
    """Returns garbage on the third read: verification must catch it."""

    name = "broken"

    def __init__(self, system):
        super().__init__(system)
        self._reads = 0

    def read(self, node, address):
        self._reads += 1
        value = super().read(node, address)
        return value + 1 if self._reads == 3 else value


class TestVerification:
    def test_correct_protocol_passes(self):
        trace = random_trace(4, 200, n_blocks=4, seed=1)
        report = run_trace(build_protocol(), trace, verify=True)
        assert report.verified

    def test_stale_read_detected_with_reference_index(self):
        protocol = BrokenProtocol(System(SystemConfig(n_nodes=4)))
        trace = [
            Reference(0, Op.WRITE, Address(0, 0), 5),
            Reference(1, Op.READ, Address(0, 0)),
            Reference(2, Op.READ, Address(0, 0)),
            Reference(3, Op.READ, Address(0, 0)),  # corrupted (3rd read)
        ]
        with pytest.raises(CoherenceError, match="reference 3"):
            run_trace(protocol, trace, verify=True)

    def test_verify_false_skips_value_checks(self):
        protocol = BrokenProtocol(System(SystemConfig(n_nodes=4)))
        trace = [
            Reference(1, Op.READ, Address(0, 0)),
            Reference(1, Op.READ, Address(0, 0)),
            Reference(1, Op.READ, Address(0, 0)),
        ]
        report = run_trace(protocol, trace, verify=False)
        assert not report.verified

    def test_foreign_node_rejected(self):
        trace = [Reference(9, Op.READ, Address(0, 0))]
        with pytest.raises(TraceError):
            run_trace(build_protocol(), trace)


class TestReportContents:
    def test_counts_and_fractions(self):
        trace = [
            Reference(0, Op.WRITE, Address(0, 0), 1),
            Reference(0, Op.READ, Address(0, 0)),
            Reference(1, Op.READ, Address(0, 0)),
            Reference(1, Op.WRITE, Address(0, 1), 2),
        ]
        report = run_trace(build_protocol(), trace)
        assert report.n_references == 4
        assert report.n_reads == 2
        assert report.n_writes == 2
        assert report.write_fraction == 0.5

    def test_network_totals_match_levels(self):
        trace = random_trace(4, 100, n_blocks=4, seed=2)
        report = run_trace(build_protocol(), trace)
        assert sum(report.network_bits_by_level) == (
            report.network_total_bits
        )

    def test_cost_per_reference(self):
        trace = [Reference(0, Op.READ, Address(0, 0))]
        report = run_trace(build_protocol(), trace)
        assert report.cost_per_reference == report.network_total_bits

    def test_empty_trace(self):
        report = run_trace(build_protocol(), [])
        assert report.n_references == 0
        assert report.cost_per_reference == 0.0

    def test_summary_mentions_the_essentials(self):
        trace = random_trace(4, 50, n_blocks=4, seed=3)
        report = run_trace(build_protocol(), trace)
        text = report.summary()
        assert "no-cache" in text
        assert "bits" in text

    def test_traffic_reset_between_runs(self):
        # The second run starts from warm memory, so value verification
        # is off; the point is that the traffic counters restart at zero.
        protocol = build_protocol()
        trace = random_trace(4, 50, n_blocks=4, seed=4)
        first = run_trace(protocol, trace, verify=False)
        second = run_trace(protocol, trace, verify=False)
        assert first.network_total_bits == second.network_total_bits


class TestInvariantStride:
    def test_invariants_checked_with_stride(self):
        system = System(SystemConfig(n_nodes=4, cache_entries=2))
        protocol = StenstromProtocol(system)
        trace = random_trace(4, 300, n_blocks=8, seed=5)
        report = run_trace(
            protocol, trace, verify=True, check_invariants_every=50
        )
        assert report.verified
