"""Property-based tests for the store-and-forward scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.link import LinkLoad
from repro.sim.timing import schedule


@st.composite
def random_operations(draw):
    """A batch of chained-path operations with random geometry."""
    n_ops = draw(st.integers(1, 5))
    operations = []
    for _ in range(n_ops):
        n_hops = draw(st.integers(1, 6))
        loads = []
        for hop in range(n_hops):
            position = draw(st.integers(0, 3))
            bits = draw(st.integers(0, 40))
            parent = hop - 1 if hop > 0 else None
            loads.append(LinkLoad(hop, position, bits, parent))
        operations.append(loads)
    return operations


def duration(bits):
    return max(1, bits)


common = settings(max_examples=120, deadline=None)


class TestSchedulerProperties:
    @common
    @given(operations=random_operations())
    def test_every_load_is_scheduled_exactly_once(self, operations):
        report = schedule(operations)
        assert len(report.transfers) == sum(
            len(op) for op in operations
        )

    @common
    @given(operations=random_operations())
    def test_makespan_at_least_every_critical_path(self, operations):
        report = schedule(operations)
        for op in operations:
            chain = sum(duration(load.bits) for load in op)
            assert report.makespan >= chain

    @common
    @given(operations=random_operations())
    def test_makespan_at_least_busiest_link(self, operations):
        report = schedule(operations)
        assert report.makespan >= report.busiest_link_busy_time()

    @common
    @given(operations=random_operations())
    def test_dependencies_respected(self, operations):
        report = schedule(operations)
        # Rebuild per-operation transfer order: transfers preserve the
        # flattened ordering of the input loads.
        index = 0
        for op in operations:
            transfers = report.transfers[index : index + len(op)]
            for load, transfer in zip(op, transfers):
                assert transfer.load is load
                if load.parent is not None:
                    parent_transfer = transfers[load.parent]
                    assert transfer.start >= parent_transfer.finish
            index += len(op)

    @common
    @given(operations=random_operations())
    def test_no_link_overlap(self, operations):
        report = schedule(operations)
        by_link = {}
        for transfer in report.transfers:
            by_link.setdefault(transfer.load.key, []).append(
                (transfer.start, transfer.finish)
            )
        for intervals in by_link.values():
            intervals.sort()
            for (_, first_end), (second_start, _) in zip(
                intervals, intervals[1:]
            ):
                assert second_start >= first_end

    @common
    @given(operations=random_operations())
    def test_makespan_bounded_by_serialising_everything(self, operations):
        report = schedule(operations)
        serial = sum(
            duration(load.bits) for op in operations for load in op
        )
        assert report.makespan <= serial
