"""Tests for the store-and-forward timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.network.cost import worst_case_placement
from repro.network.link import LinkLoad
from repro.network.message import Message
from repro.network.multicast import (
    multicast_scheme1,
    multicast_scheme2,
    multicast_scheme3,
)
from repro.network.routing import unicast
from repro.network.topology import OmegaNetwork
from repro.sim.timing import makespan, schedule


def path(*hops):
    """Helper: a chained load list (hop = (level, position, bits))."""
    loads = []
    for index, (level, position, bits) in enumerate(hops):
        parent = index - 1 if index > 0 else None
        loads.append(LinkLoad(level, position, bits, parent))
    return loads


class TestSinglePath:
    def test_makespan_is_sum_of_hop_durations(self):
        loads = path((0, 0, 10), (1, 2, 8), (2, 1, 6))
        assert makespan([loads]) == 24

    def test_bandwidth_scales_durations(self):
        loads = path((0, 0, 10), (1, 2, 10))
        assert makespan([loads], bandwidth=5) == 4

    def test_zero_bit_hop_takes_one_cycle(self):
        loads = path((0, 0, 0), (1, 1, 0))
        assert makespan([loads]) == 2

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            makespan([path((0, 0, 1))], bandwidth=0)

    def test_bad_parent_rejected(self):
        with pytest.raises(ConfigurationError):
            makespan([[LinkLoad(0, 0, 1, parent=5)]])


class TestContention:
    def test_disjoint_paths_overlap(self):
        first = path((0, 0, 10), (1, 0, 10))
        second = path((0, 1, 10), (1, 1, 10))
        assert makespan([first, second]) == 20

    def test_shared_link_serialises(self):
        first = path((0, 0, 10), (1, 5, 10))
        second = path((0, 0, 10), (1, 6, 10))
        # Both need link (0, 0): the second starts after the first.
        assert makespan([first, second]) == 30

    def test_schedule_reports_per_transfer_times(self):
        report = schedule([path((0, 0, 4), (1, 1, 4))])
        starts = sorted(
            (t.load.level, t.start, t.finish) for t in report.transfers
        )
        assert starts == [(0, 0, 4), (1, 4, 8)]

    def test_makespan_bounded_below_by_busiest_link(self):
        first = path((0, 0, 7), (1, 5, 3))
        second = path((0, 0, 9), (1, 6, 2))
        report = schedule([first, second])
        assert report.makespan >= report.busiest_link_busy_time()

    def test_utilisation_in_unit_range(self):
        report = schedule([path((0, 0, 7), (1, 5, 3))])
        assert 0.0 < report.link_utilisation() <= 1.0

    def test_empty_batch(self):
        assert makespan([]) == 0


class TestMulticastLatency:
    """The latency counterpart of the eq. 2 / eq. 3 comparison."""

    def _loads(self, scheme_fn, n_dests, **kwargs):
        net = OmegaNetwork(64)
        dests = worst_case_placement(64, n_dests)
        result = scheme_fn(
            net,
            Message(source=0, payload_bits=64),
            dests,
            commit=False,
            **kwargs,
        )
        return result.loads

    def test_scheme1_serialises_on_the_source_link(self):
        one = makespan([self._loads(multicast_scheme1, 1)])
        many = makespan([self._loads(multicast_scheme1, 16)])
        # Transfers pipeline hop by hop, but all 16 unicasts must cross
        # the source's level-0 link one after the other: the makespan is
        # at least 15 extra source-link occupancies on top of one path.
        source_hop = 64 + 6  # payload + full routing tag
        assert many >= one + 15 * source_hop

    def test_scheme2_beats_scheme1_on_latency(self):
        scheme1 = makespan([self._loads(multicast_scheme1, 16)])
        scheme2 = makespan([self._loads(multicast_scheme2, 16)])
        assert scheme2 < scheme1

    def test_scheme3_beats_scheme1_on_latency_for_adjacent_sets(self):
        net = OmegaNetwork(64)
        message = Message(source=0, payload_bits=64)
        adjacent = range(16)
        s1 = multicast_scheme1(net, message, adjacent, commit=False)
        s3 = multicast_scheme3(net, message, adjacent, commit=False)
        assert makespan([s3.loads]) < makespan([s1.loads])

    def test_unicast_parents_form_a_chain(self):
        net = OmegaNetwork(16)
        result = unicast(
            net, Message(source=3, payload_bits=8), 9, commit=False
        )
        parents = [load.parent for load in result.loads]
        assert parents == [None, 0, 1, 2, 3]

    def test_scheme2_parents_form_a_tree(self):
        net = OmegaNetwork(16)
        result = multicast_scheme2(
            net,
            Message(source=0, payload_bits=8),
            [0, 5, 9, 15],
            commit=False,
        )
        roots = [
            load for load in result.loads if load.parent is None
        ]
        assert len(roots) == 1
        for load in result.loads:
            if load.parent is not None:
                parent = result.loads[load.parent]
                assert parent.level == load.level - 1
