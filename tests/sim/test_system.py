"""Unit tests for system configuration and construction."""

import pytest

from repro.errors import ConfigurationError
from repro.network.multicast import MulticastScheme
from repro.sim.system import System, SystemConfig
from repro.types import Address


class TestConfigValidation:
    def test_rejects_non_power_of_two_nodes(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n_nodes=6)

    def test_rejects_single_node(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n_nodes=1)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n_nodes=4, block_size_words=0)

    def test_rejects_bad_cache_size(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n_nodes=4, cache_entries=-1)

    def test_with_scheme_returns_modified_copy(self):
        config = SystemConfig(n_nodes=4)
        other = config.with_scheme(MulticastScheme.UNICAST)
        assert other.multicast_scheme is MulticastScheme.UNICAST
        assert config.multicast_scheme is MulticastScheme.COMBINED
        assert other.n_nodes == 4


class TestSystemConstruction:
    def test_component_counts(self):
        system = System(SystemConfig(n_nodes=8))
        assert len(system.caches) == 8
        assert len(system.memories) == 8
        assert system.network.n_ports == 8

    def test_home_interleaving(self):
        system = System(SystemConfig(n_nodes=8))
        assert system.home(0) == 0
        assert system.home(9) == 1
        assert system.memory_for(9).module_id == 1

    def test_check_address(self):
        system = System(SystemConfig(n_nodes=4, block_size_words=2))
        system.check_address(Address(5, 1))
        with pytest.raises(ConfigurationError):
            system.check_address(Address(5, 2))
        with pytest.raises(ConfigurationError):
            system.check_address(Address(-1, 0))

    def test_reset_traffic(self):
        system = System(SystemConfig(n_nodes=4))
        system.network.link(0, 0).carry(10)
        system.reset_traffic()
        assert system.network.total_bits == 0

    def test_caches_have_distinct_seeds(self):
        # Random replacement policies must not be lock-stepped.
        system = System(
            SystemConfig(n_nodes=4, cache_entries=8, replacement="random")
        )
        picks = [
            tuple(
                cache.policy.choose_victim(0) for _ in range(10)
            )
            for cache in system.caches
        ]
        assert len(set(picks)) > 1
