"""Unit tests for the statistics ledgers."""

from repro.sim import stats as ev
from repro.sim.stats import Stats


class TestEvents:
    def test_count_accumulates(self):
        stats = Stats()
        stats.count(ev.READS)
        stats.count(ev.READS, 4)
        assert stats.events[ev.READS] == 5

    def test_references_sums_reads_and_writes(self):
        stats = Stats()
        stats.count(ev.READS, 3)
        stats.count(ev.WRITES, 2)
        assert stats.references == 5


class TestTraffic:
    def test_record_traffic(self):
        stats = Stats()
        stats.record_traffic("load", 100)
        stats.record_traffic("load", 50)
        stats.record_traffic("inv", 10)
        assert stats.traffic_bits["load"] == 150
        assert stats.traffic_messages["load"] == 2
        assert stats.total_bits == 160
        assert stats.total_messages == 3

    def test_cost_per_reference(self):
        stats = Stats()
        stats.count(ev.READS, 4)
        stats.record_traffic("x", 100)
        assert stats.cost_per_reference == 25.0

    def test_cost_per_reference_with_no_references(self):
        assert Stats().cost_per_reference == 0.0


class TestMergeAndExport:
    def test_merge_folds_counters(self):
        first, second = Stats(), Stats()
        first.count(ev.READS, 2)
        first.record_traffic("x", 10)
        second.count(ev.READS, 3)
        second.record_traffic("x", 5)
        second.record_traffic("y", 1)
        first.merge(second)
        assert first.events[ev.READS] == 5
        assert first.traffic_bits == {"x": 15, "y": 1}

    def test_as_dict_snapshot(self):
        stats = Stats()
        stats.count(ev.WRITES)
        stats.record_traffic("x", 7)
        snapshot = stats.as_dict()
        assert snapshot["events"] == {ev.WRITES: 1}
        assert snapshot["traffic_bits"] == {"x": 7}
        assert snapshot["traffic_messages"] == {"x": 1}
