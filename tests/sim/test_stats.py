"""Unit tests for the statistics ledgers."""

from repro.sim import stats as ev
from repro.sim.stats import Stats


class TestEvents:
    def test_count_accumulates(self):
        stats = Stats()
        stats.count(ev.READS)
        stats.count(ev.READS, 4)
        assert stats.events[ev.READS] == 5

    def test_references_sums_reads_and_writes(self):
        stats = Stats()
        stats.count(ev.READS, 3)
        stats.count(ev.WRITES, 2)
        assert stats.references == 5


class TestTraffic:
    def test_record_traffic(self):
        stats = Stats()
        stats.record_traffic("load", 100)
        stats.record_traffic("load", 50)
        stats.record_traffic("inv", 10)
        assert stats.traffic_bits["load"] == 150
        assert stats.traffic_messages["load"] == 2
        assert stats.total_bits == 160
        assert stats.total_messages == 3

    def test_cost_per_reference(self):
        stats = Stats()
        stats.count(ev.READS, 4)
        stats.record_traffic("x", 100)
        assert stats.cost_per_reference == 25.0

    def test_cost_per_reference_with_no_references(self):
        assert Stats().cost_per_reference == 0.0


class TestMergeAndExport:
    def test_merge_folds_counters(self):
        first, second = Stats(), Stats()
        first.count(ev.READS, 2)
        first.record_traffic("x", 10)
        second.count(ev.READS, 3)
        second.record_traffic("x", 5)
        second.record_traffic("y", 1)
        first.merge(second)
        assert first.events[ev.READS] == 5
        assert first.traffic_bits == {"x": 15, "y": 1}

    def test_as_dict_snapshot(self):
        stats = Stats()
        stats.count(ev.WRITES)
        stats.record_traffic("x", 7)
        snapshot = stats.as_dict()
        assert snapshot["events"] == {ev.WRITES: 1}
        assert snapshot["traffic_bits"] == {"x": 7}
        assert snapshot["traffic_messages"] == {"x": 1}


class TestFaultLog:
    def test_record_fault_counts_and_logs(self):
        stats = Stats()
        stats.record_fault(ev.FAULT_DEAD_ROUTES, source=1, dest=5, block=3)
        assert stats.events[ev.FAULT_DEAD_ROUTES] == 1
        assert stats.fault_event_log() == [
            {
                "event": ev.FAULT_DEAD_ROUTES,
                "source": 1,
                "dest": 5,
                "block": 3,
            }
        ]

    def test_none_fields_are_omitted(self):
        stats = Stats()
        stats.record_fault(ev.FAULT_DEGRADED_BLOCKS, block=2, cause=None)
        assert stats.fault_event_log() == [
            {"event": ev.FAULT_DEGRADED_BLOCKS, "block": 2}
        ]

    def test_log_view_returns_copies(self):
        stats = Stats()
        stats.record_fault(ev.FAULT_DEAD_ROUTES, block=0)
        stats.fault_event_log()[0]["block"] = 99
        assert stats.fault_event_log()[0]["block"] == 0

    def test_merge_concatenates_incident_logs(self):
        first, second = Stats(), Stats()
        first.record_fault(ev.FAULT_DEAD_ROUTES, block=0)
        second.record_fault(ev.FAULT_DEGRADED_BLOCKS, block=1)
        first.merge(second)
        assert [e["event"] for e in first.fault_event_log()] == [
            ev.FAULT_DEAD_ROUTES,
            ev.FAULT_DEGRADED_BLOCKS,
        ]

    def test_round_trip_preserves_the_log(self):
        stats = Stats()
        stats.count(ev.READS)
        stats.record_fault(ev.FAULT_RETRY_EXHAUSTED, block=4, dests=[1, 2])
        clone = Stats.from_dict(stats.to_dict())
        assert clone.fault_event_log() == stats.fault_event_log()

    def test_fault_free_snapshot_shape_is_unchanged(self):
        stats = Stats()
        stats.count(ev.READS)
        stats.record_traffic("x", 8)
        assert "fault_log" not in stats.to_dict()
        assert Stats.from_dict(stats.to_dict()).fault_event_log() == []
