"""Unit and property tests for columnar compiled traces.

The load-bearing guarantee is at the bottom: for *every* workload
generator, the compiled and reference-list forms describe the identical
stream and replay to bit-identical ``SimulationReport`` dictionaries --
through both the verifying loop and the fast-path loop.
"""

import io
from array import array

import pytest

from repro.analysis.compare import default_factories
from repro.errors import TraceError
from repro.sim.ctrace import (
    CompiledTrace,
    dump_compiled_trace,
    load_compiled_trace,
    parse_compiled_trace,
    save_compiled_trace,
    trace_builder,
)
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.sim.trace import Trace, dump_trace, load_trace, save_trace
from repro.types import Address, Op, Reference
from repro.workloads.locks import spinlock_trace
from repro.workloads.markov import markov_block_trace, shared_structure_trace
from repro.workloads.matrix import jacobi_trace, matrix_multiply_trace
from repro.workloads.sharing import (
    migratory_trace,
    ping_pong_trace,
    producer_consumer_trace,
)
from repro.workloads.synthetic import random_trace


def sample_trace():
    return Trace(
        [
            Reference(0, Op.WRITE, Address(3, 1), 42),
            Reference(2, Op.READ, Address(3, 1)),
            Reference(1, Op.READ, Address(0, 0)),
        ],
        n_nodes=4,
        block_size_words=2,
    )


def columns(*rows):
    """``(node, op, block, offset, value)`` rows -> five ``array('q')``."""
    return tuple(array("q", column) for column in zip(*rows)) or tuple(
        array("q") for _ in range(5)
    )


class TestRoundTrip:
    def test_compile_preserves_stream(self):
        trace = sample_trace()
        compiled = trace.compile()
        assert len(compiled) == len(trace)
        assert list(compiled) == trace.references
        assert compiled.n_nodes == trace.n_nodes
        assert compiled.block_size_words == trace.block_size_words

    def test_to_trace_round_trips(self):
        trace = sample_trace()
        back = trace.compile().to_trace()
        assert back.references == trace.references
        assert back.n_nodes == trace.n_nodes
        assert back.block_size_words == trace.block_size_words

    def test_compile_of_to_trace_is_equal(self):
        compiled = sample_trace().compile()
        assert compiled.to_trace().compile() == compiled

    def test_write_fraction_matches(self):
        trace = sample_trace()
        assert trace.compile().write_fraction == trace.write_fraction

    def test_empty_write_fraction(self):
        empty = Trace([], n_nodes=2, block_size_words=2).compile()
        assert empty.write_fraction == 0.0


class TestSequenceBehaviour:
    def test_indexing_yields_references(self):
        compiled = sample_trace().compile()
        assert compiled[0] == Reference(0, Op.WRITE, Address(3, 1), 42)
        assert compiled[-1] == Reference(1, Op.READ, Address(0, 0))

    def test_slicing_yields_compiled_trace(self):
        compiled = sample_trace().compile()
        tail = compiled[1:]
        assert isinstance(tail, CompiledTrace)
        assert len(tail) == 2
        assert list(tail) == sample_trace().references[1:]
        assert tail.n_nodes == compiled.n_nodes
        assert tail.block_size_words == compiled.block_size_words

    def test_equality_distinguishes_geometry(self):
        compiled = sample_trace().compile()
        other = CompiledTrace(
            compiled.nodes,
            compiled.ops,
            compiled.blocks,
            compiled.offsets,
            compiled.values,
            compiled.n_nodes + 4,
            compiled.block_size_words,
        )
        assert compiled != other
        assert compiled == sample_trace().compile()


class TestValidation:
    def test_node_out_of_range_rejected(self):
        with pytest.raises(TraceError, match="node 4"):
            CompiledTrace(*columns((4, 0, 0, 0, 0)), 4, 2)

    def test_negative_block_rejected(self):
        with pytest.raises(TraceError, match="negative block"):
            CompiledTrace(*columns((0, 0, -1, 0, 0)), 4, 2)

    def test_offset_out_of_range_rejected(self):
        with pytest.raises(TraceError, match="offset 2"):
            CompiledTrace(*columns((0, 0, 0, 2, 0)), 4, 2)

    def test_bad_op_rejected(self):
        with pytest.raises(TraceError, match="op column"):
            CompiledTrace(*columns((0, 7, 0, 0, 0)), 4, 2)

    def test_ragged_columns_rejected(self):
        good = columns((0, 0, 0, 0, 0), (1, 1, 0, 1, 9))
        with pytest.raises(TraceError, match="ragged"):
            CompiledTrace(
                good[0][:1], good[1], good[2], good[3], good[4], 4, 2
            )

    def test_bad_geometry_rejected(self):
        with pytest.raises(TraceError):
            CompiledTrace(*columns(), 0, 2)
        with pytest.raises(TraceError):
            CompiledTrace(*columns(), 4, 0)

    def test_error_names_offending_index(self):
        with pytest.raises(TraceError, match="reference 1"):
            CompiledTrace(
                *columns((0, 0, 0, 0, 0), (9, 0, 0, 0, 0)), 4, 2
            )


class TestBuilders:
    def test_both_builders_emit_the_same_stream(self):
        reference = trace_builder(4, 2, compiled=False)
        compiled = trace_builder(4, 2, compiled=True)
        for builder in (reference, compiled):
            builder.write(0, 3, 1, 42)
            builder.read(2, 3, 1)
            builder.read(1, 0, 0)
        assert compiled.build() == reference.build().compile()

    def test_builder_output_validates(self):
        builder = trace_builder(2, 2, compiled=True)
        builder.read(5, 0, 0)
        with pytest.raises(TraceError):
            builder.build()


class TestTextFormat:
    def test_compiled_stream_round_trip(self):
        compiled = sample_trace().compile()
        buffer = io.StringIO()
        dump_compiled_trace(compiled, buffer)
        assert parse_compiled_trace(buffer.getvalue().splitlines()) == compiled

    def test_dump_trace_accepts_compiled_form(self):
        trace = sample_trace()
        plain, columnar = io.StringIO(), io.StringIO()
        dump_trace(trace, plain)
        dump_trace(trace.compile(), columnar)
        assert plain.getvalue() == columnar.getvalue()

    def test_file_round_trip_across_forms(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "stream.trace"
        save_trace(trace.compile(), path)
        assert load_trace(path).references == trace.references
        assert load_compiled_trace(path) == trace.compile()
        save_compiled_trace(trace.compile(), path)
        assert load_trace(path).references == trace.references

    def test_comments_and_blanks_ignored(self):
        text = [
            "# repro-trace v1 n_nodes=4 block_size=2",
            "",
            "# a comment",
            "0 W 3:1 42",
        ]
        compiled = parse_compiled_trace(text)
        assert list(compiled) == [Reference(0, Op.WRITE, Address(3, 1), 42)]

    def test_empty_file_rejected(self):
        with pytest.raises(TraceError, match="empty"):
            parse_compiled_trace([])

    def test_malformed_line_rejected(self):
        header = "# repro-trace v1 n_nodes=4 block_size=2"
        with pytest.raises(TraceError, match="line 2"):
            parse_compiled_trace([header, "0 W 3:1"])
        with pytest.raises(TraceError, match="unknown operation"):
            parse_compiled_trace([header, "0 X 3:1 0"])
        with pytest.raises(TraceError, match="malformed"):
            parse_compiled_trace([header, "0 W three:1 0"])


# ----------------------------------------------------------------------
# Property tests: every generator, both forms, identical replays
# ----------------------------------------------------------------------

# name -> builder(n_nodes, compiled) covering every workload generator.
GENERATORS = {
    "markov": lambda n, c: markov_block_trace(
        n, tasks=list(range(min(n, 6))), write_fraction=0.3,
        n_references=300, seed=11, compiled=c,
    ),
    "shared-structure": lambda n, c: shared_structure_trace(
        n, tasks=list(range(min(n, 6))), write_fraction=0.4,
        n_references=300, n_blocks=5, seed=13, compiled=c,
    ),
    "random": lambda n, c: random_trace(
        n, 300, n_blocks=6, write_fraction=0.25, seed=17, compiled=c,
    ),
    "spinlock": lambda n, c: spinlock_trace(
        n, tasks=list(range(min(n, 4))), n_acquisitions=20, compiled=c,
    ),
    "producer-consumer": lambda n, c: producer_consumer_trace(
        n, producer=0, consumers=list(range(1, min(n, 5))), n_rounds=15,
        compiled=c,
    ),
    "migratory": lambda n, c: migratory_trace(
        n, tasks=list(range(min(n, 5))), n_rounds=15, compiled=c,
    ),
    "ping-pong": lambda n, c: ping_pong_trace(
        n, first=0, second=1, n_rounds=25, compiled=c,
    ),
    "jacobi": lambda n, c: jacobi_trace(
        n, tasks=list(range(min(n, 4))), rows=8, sweeps=1, compiled=c,
    ),
    "matrix-multiply": lambda n, c: matrix_multiply_trace(
        n, tasks=list(range(min(n, 4))), size=4, compiled=c,
    ),
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
@pytest.mark.parametrize("n_nodes", [8, 16])
def test_generator_forms_describe_identical_streams(name, n_nodes):
    build = GENERATORS[name]
    trace = build(n_nodes, False)
    compiled = build(n_nodes, True)
    assert isinstance(compiled, CompiledTrace)
    assert compiled == trace.compile()
    assert compiled.to_trace().references == trace.references
    # ... and survive the text format in either form.
    buffer = io.StringIO()
    dump_trace(compiled, buffer)
    assert parse_compiled_trace(buffer.getvalue().splitlines()) == compiled


def _replay(trace, n_nodes, *, verify):
    system = System(SystemConfig(n_nodes=n_nodes))
    protocol = default_factories()["two-mode"](system)
    return run_trace(
        protocol,
        trace,
        verify=verify,
        check_invariants_every=100 if verify else 0,
    )


@pytest.mark.parametrize("name", sorted(GENERATORS))
@pytest.mark.parametrize("n_nodes", [8, 16])
def test_generator_forms_replay_identically(name, n_nodes):
    build = GENERATORS[name]
    reference_report = _replay(
        build(n_nodes, False).references, n_nodes, verify=False
    )
    # The fast-path column loop (all per-reference checks off) ...
    fast_report = _replay(build(n_nodes, True), n_nodes, verify=False)
    assert fast_report.to_dict() == reference_report.to_dict()
    # ... and the verifying column loop must agree with the classic loop.
    verified_columns = _replay(build(n_nodes, True), n_nodes, verify=True)
    verified_reference = _replay(
        build(n_nodes, False).references, n_nodes, verify=True
    )
    assert verified_columns.to_dict() == verified_reference.to_dict()
