"""Tests for coherence-state snapshots and trace combinators."""

import pytest

from repro.cache.state import Mode
from repro.errors import TraceError
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.snapshot import (
    block_snapshot,
    blocks_in_play,
    system_snapshot,
)
from repro.sim.system import System, SystemConfig
from repro.sim.trace import Trace
from repro.types import Address, Op, Reference
from repro.workloads.markov import markov_block_trace


def shared_block_setup():
    system = System(SystemConfig(n_nodes=8))
    protocol = StenstromProtocol(
        system, default_mode=Mode.DISTRIBUTED_WRITE
    )
    protocol.write(0, Address(0, 0), 10)
    protocol.read(1, Address(0, 0))
    return system, protocol


class TestBlockSnapshot:
    def test_figure2_style_picture(self):
        system, _ = shared_block_setup()
        snapshot = block_snapshot(system, 0)
        assert snapshot.recorded_owner == 0
        caches = {row[0] for row in snapshot.rows}
        assert caches == {0, 1}
        text = snapshot.render()
        assert "block 0" in text
        assert "Owned NonExclusively" in text
        assert "UnOwned" in text

    def test_uncached_block(self):
        system = System(SystemConfig(n_nodes=8))
        snapshot = block_snapshot(system, 5)
        assert snapshot.recorded_owner is None
        assert snapshot.rows == ()
        assert "uncached" in snapshot.render()


class TestSystemSnapshot:
    def test_lists_every_block_in_play(self):
        system, protocol = shared_block_setup()
        protocol.write(2, Address(7, 0), 3)
        assert blocks_in_play(system) == [0, 7]
        text = system_snapshot(system)
        assert "block 0" in text and "block 7" in text

    def test_empty_system(self):
        system = System(SystemConfig(n_nodes=8))
        assert system_snapshot(system) == "(no blocks cached)"


class TestTraceCombinators:
    def _traces(self):
        first = markov_block_trace(
            8, [0, 1], 0.5, 10, block=0, seed=1
        )
        second = markov_block_trace(
            8, [2, 3], 0.5, 6, block=1, seed=2
        )
        return first, second

    def test_concatenate_orders_phases(self):
        first, second = self._traces()
        combined = Trace.concatenate([first, second])
        assert len(combined) == 16
        assert combined.references[:10] == first.references
        assert combined.references[10:] == second.references

    def test_interleave_round_robins(self):
        first, second = self._traces()
        combined = Trace.interleave([first, second])
        assert len(combined) == 16
        assert combined.references[0] == first.references[0]
        assert combined.references[1] == second.references[0]
        # After the shorter runs out, the longer continues.
        assert combined.references[-1] == first.references[-1]

    def test_combined_traces_still_validate(self):
        first, second = self._traces()
        Trace.interleave([first, second]).validate()
        Trace.concatenate([first, second]).validate()

    def test_mismatched_block_sizes_rejected(self):
        a = Trace([], n_nodes=4, block_size_words=2)
        b = Trace([], n_nodes=4, block_size_words=4)
        with pytest.raises(TraceError):
            Trace.concatenate([a, b])
        with pytest.raises(TraceError):
            Trace.interleave([a, b])

    def test_empty_input_rejected(self):
        with pytest.raises(TraceError):
            Trace.concatenate([])
        with pytest.raises(TraceError):
            Trace.interleave([])

    def test_node_count_is_the_maximum(self):
        a = Trace(
            [Reference(0, Op.READ, Address(0, 0))],
            n_nodes=2,
            block_size_words=2,
        )
        b = Trace(
            [Reference(7, Op.READ, Address(0, 0))],
            n_nodes=8,
            block_size_words=2,
        )
        assert Trace.concatenate([a, b]).n_nodes == 8
