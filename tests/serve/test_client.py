"""ServeClient unit behaviour: backoff schedule, retries, memoisation.

Everything here is deterministic and socket-free: the connect retry
schedule is a pure function of the attempt number, retries are
exercised by stubbing the one dial primitive, and the submit memo is
observed through the frames it produces.
"""

import pytest

from repro.errors import ConfigurationError
from repro.serve import ServeClient


class TestBackoffSchedule:
    def test_schedule_is_a_pure_doubling_function(self):
        client = ServeClient(
            "nowhere.sock", connect_backoff=0.05, connect_retries=4
        )
        assert [client._backoff_for(a) for a in (1, 2, 3, 4)] == [
            0.05,
            0.1,
            0.2,
            0.4,
        ]
        # Deterministic: the same attempt always gets the same delay.
        assert client._backoff_for(3) == client._backoff_for(3)

    def test_zero_backoff_never_sleeps(self):
        client = ServeClient("nowhere.sock", connect_backoff=0.0)
        assert client._backoff_for(7) == 0.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="connect_retries"):
            ServeClient("nowhere.sock", connect_retries=-1)
        with pytest.raises(ConfigurationError, match="connect_backoff"):
            ServeClient("nowhere.sock", connect_backoff=-0.1)


class TestConnectRetry:
    def _flaky_client(self, monkeypatch, *, failures, retries):
        client = ServeClient(
            "nowhere.sock",
            connect_retries=retries,
            connect_backoff=0.01,
        )
        attempts = []

        def connect_once():
            attempts.append(len(attempts) + 1)
            if len(attempts) <= failures:
                raise ConnectionRefusedError("not yet bound")
            return "a-socket"

        slept = []
        monkeypatch.setattr(client, "_connect_once", connect_once)
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", slept.append
        )
        return client, attempts, slept

    def test_retries_bridge_a_late_binding_daemon(self, monkeypatch):
        client, attempts, slept = self._flaky_client(
            monkeypatch, failures=3, retries=5
        )
        assert client._connect() == "a-socket"
        assert attempts == [1, 2, 3, 4]
        # The slept delays are exactly the deterministic schedule.
        assert slept == [0.01, 0.02, 0.04]

    def test_retries_exhausted_reraises_the_refusal(self, monkeypatch):
        client, attempts, slept = self._flaky_client(
            monkeypatch, failures=99, retries=2
        )
        with pytest.raises(ConnectionRefusedError):
            client._connect()
        assert attempts == [1, 2, 3]
        assert slept == [0.01, 0.02]
