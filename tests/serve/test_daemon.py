"""The serve daemon in-process: coalescing, tiers, backpressure, drain.

Every test runs a real daemon (real unix socket, real wire protocol)
via :class:`~repro.serve.daemon.DaemonThread`; determinism comes from
the executor's ``task_fn`` hook, which lets a test hold execution at a
:class:`threading.Event` gate while it piles up concurrent submissions.
"""

import json
import os
import shutil
import socket as socket_module
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError, OverloadedError
from repro.runner import execute_spec
from repro.runner.spec import ExperimentSpec, WorkloadSpec
from repro.serve import DaemonThread, ServeClient, ServeConfig
from repro.serve.protocol import read_frame_sync, write_frame_sync
from repro.sim.system import SystemConfig


def make_spec(seed=0, refs=60) -> ExperimentSpec:
    return ExperimentSpec(
        protocol="no-cache",
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=4,
            n_references=refs,
            write_fraction=0.3,
            seed=seed,
            tasks=(0, 1),
        ),
        config=SystemConfig(n_nodes=4),
    )


@pytest.fixture
def socket_path():
    # Unix socket paths are length-limited (~108 bytes); pytest tmp_path
    # can exceed that, so sockets live under a short mkdtemp dir.
    tmp = tempfile.mkdtemp(prefix="repro-serve-")
    yield os.path.join(tmp, "d.sock")
    shutil.rmtree(tmp, ignore_errors=True)


def canonical(report_dict: dict) -> str:
    return json.dumps(report_dict, sort_keys=True)


def wait_until(predicate, timeout=30.0, label="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"{label} not reached within {timeout:g}s")


class TestLifecycle:
    def test_ping_status_and_clean_stop(self, socket_path):
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            assert client.ping() == {"type": "pong", "draining": False}
            status = client.status()
            assert status["executed"] == {}
            assert status["queue_depth"] == 0
            assert status["cache"]["hot_entries"] == 0
        assert not os.path.exists(socket_path)

    def test_config_validation(self, socket_path):
        with pytest.raises(ConfigurationError):
            ServeConfig(socket_path=socket_path, workers=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(socket_path=socket_path, max_queue=0)

    def test_stale_socket_file_is_replaced(self, socket_path):
        leftover = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        leftover.bind(socket_path)
        leftover.close()  # dead daemon's socket file stays behind
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            assert ServeClient(socket_path).ping()["type"] == "pong"


class TestCoalescing:
    def test_duplicate_specs_execute_exactly_once(self, socket_path):
        """N concurrent submissions of one spec hash -> one execution."""
        gate = threading.Event()
        executions = []

        def gated(spec):
            executions.append(spec.spec_hash)
            assert gate.wait(30)
            return execute_spec(spec)

        spec = make_spec()
        config = ServeConfig(
            socket_path=socket_path, workers=2, task_fn=gated
        )
        n_clients = 8
        with DaemonThread(config):
            client = ServeClient(socket_path)
            with ThreadPoolExecutor(max_workers=n_clients) as pool:
                futures = [
                    pool.submit(
                        client.submit, [spec], name=f"dup-{i}"
                    )
                    for i in range(n_clients)
                ]
                # Every submission must be admitted (queued, coalesced,
                # or cached) before execution is released.
                def admitted() -> int:
                    status = client.status()
                    return (
                        status["coalesced"]
                        + status["cache"]["hot_hits"]
                        + len(executions)
                    )

                wait_until(
                    lambda: admitted() >= n_clients,
                    label="all submissions admitted",
                )
                gate.set()
                outcomes = [future.result(timeout=60) for future in futures]
            status = client.status()

        assert executions == [spec.spec_hash]
        assert status["executed"] == {spec.spec_hash: 1}
        payloads = {
            canonical(outcome.results[0]["report"])
            for outcome in outcomes
        }
        assert len(payloads) == 1  # byte-identical across all waiters
        assert payloads == {canonical(execute_spec(spec).to_dict())}
        sources = {outcome.results[0]["source"] for outcome in outcomes}
        assert "queued" in sources and sources <= {
            "queued", "coalesced", "hot"
        }

    def test_duplicates_within_one_submission_collapse(self, socket_path):
        spec = make_spec()
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            outcome = client.submit([spec, spec, spec], name="triple")
            status = client.status()
        assert outcome.accepted["tasks"] == 3
        assert outcome.accepted["unique"] == 1
        assert len(outcome.results) == 3
        assert status["executed"] == {spec.spec_hash: 1}
        assert len({canonical(f["report"]) for f in outcome.results}) == 1


class TestTiers:
    def test_second_submission_is_served_hot(self, socket_path):
        spec = make_spec()
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            first = client.submit([spec])
            again = client.submit([spec])
            status = client.status()
        assert first.results[0]["source"] == "queued"
        assert again.results[0]["source"] == "hot"
        assert status["executed"] == {spec.spec_hash: 1}
        assert canonical(first.results[0]["report"]) == canonical(
            again.results[0]["report"]
        )

    def test_disk_tier_survives_a_daemon_restart(self, socket_path):
        spec = make_spec()
        cache_dir = os.path.join(os.path.dirname(socket_path), "cache")
        config = ServeConfig(socket_path=socket_path, cache_dir=cache_dir)
        with DaemonThread(config):
            ServeClient(socket_path).submit([spec])
        with DaemonThread(config):
            client = ServeClient(socket_path)
            outcome = client.submit([spec])
            status = client.status()
        assert outcome.results[0]["source"] == "disk"
        assert status["executed"] == {}  # nothing re-executed
        assert canonical(outcome.results[0]["report"]) == canonical(
            execute_spec(spec).to_dict()
        )

    def test_admission_events_name_the_serving_tier(self, socket_path):
        spec = make_spec()
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            first = client.submit([spec])
            again = client.submit([spec])
        first_kinds = [frame["event"] for frame in first.events]
        assert first_kinds[0] == "task_queued"
        assert "task_start" in first_kinds
        assert "task_finish" in first_kinds
        finish = next(
            frame for frame in first.events
            if frame["event"] == "task_finish"
        )
        assert finish["refs_per_sec"] is None or finish["refs_per_sec"] > 0
        assert [frame["event"] for frame in again.events] == ["task_hot"]


class TestBackpressure:
    def test_submission_beyond_max_queue_is_rejected_whole(
        self, socket_path
    ):
        gate = threading.Event()

        def gated(spec):
            assert gate.wait(30)
            return execute_spec(spec)

        config = ServeConfig(
            socket_path=socket_path,
            workers=1,
            max_queue=2,
            task_fn=gated,
        )
        try:
            with DaemonThread(config):
                client = ServeClient(socket_path)
                with ThreadPoolExecutor(max_workers=2) as pool:
                    # The lone worker picks up seed=0 and blocks at the
                    # gate; only then can two filler cells fully occupy
                    # the admission queue (max_queue=2).
                    held = pool.submit(
                        client.submit, [make_spec(seed=0)], name="hold"
                    )
                    wait_until(
                        lambda: client.status()["in_flight"] >= 1
                        and client.status()["queue_depth"] == 0,
                        label="worker holding the gated cell",
                    )
                    filler = pool.submit(
                        client.submit,
                        [make_spec(seed=s) for s in (1, 2)],
                        name="filler",
                    )
                    wait_until(
                        lambda: client.status()["queue_depth"] == 2,
                        label="queue filled to max_queue",
                    )
                    with pytest.raises(OverloadedError) as excinfo:
                        client.submit([make_spec(seed=9)], name="overflow")
                    assert "queue full" in str(excinfo.value)
                    status = client.status()
                    gate.set()
                    held.result(timeout=60)
                    filler.result(timeout=60)
        finally:
            gate.set()
        assert status["rejected"] == 1
        assert make_spec(seed=9).spec_hash not in status["executed"]

    def test_rejection_is_all_or_nothing(self, socket_path):
        gate = threading.Event()

        def gated(spec):
            assert gate.wait(30)
            return execute_spec(spec)

        config = ServeConfig(
            socket_path=socket_path,
            workers=1,
            max_queue=2,
            task_fn=gated,
        )
        try:
            with DaemonThread(config):
                client = ServeClient(socket_path)
                with ThreadPoolExecutor(max_workers=1) as pool:
                    blocked = pool.submit(
                        client.submit, [make_spec(seed=0)], name="hold"
                    )
                    wait_until(
                        lambda: client.status()["in_flight"] >= 1,
                        label="gated cell in flight",
                    )
                    # 3 new cells against max_queue=2: nothing admitted.
                    with pytest.raises(OverloadedError):
                        client.submit(
                            [make_spec(seed=s) for s in (5, 6, 7)]
                        )
                    assert client.status()["queue_depth"] == 0
                    gate.set()
                    blocked.result(timeout=60)
        finally:
            gate.set()


class TestDrain:
    def test_drain_finishes_admitted_work_then_removes_socket(
        self, socket_path
    ):
        spec = make_spec()
        daemon = DaemonThread(ServeConfig(socket_path=socket_path))
        with daemon:
            client = ServeClient(socket_path)
            outcome = client.submit([spec])
        assert outcome.results[0]["source"] == "queued"
        assert not os.path.exists(socket_path)
        assert not daemon._thread.is_alive()

    def test_draining_daemon_rejects_new_submissions(self, socket_path):
        spec = make_spec()
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            # One long-lived raw connection: ask for drain, then submit
            # on the same connection while the daemon is draining.
            sock = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            sock.settimeout(30)
            sock.connect(socket_path)
            with sock, sock.makefile("rwb") as stream:
                write_frame_sync(stream, {"op": "drain"})
                assert read_frame_sync(stream) == {"type": "draining"}
                write_frame_sync(
                    stream,
                    {"op": "submit", "cells": [spec.to_dict()]},
                )
                answer = read_frame_sync(stream)
            assert answer["type"] == "rejected"
            assert "draining" in answer["reason"]
        assert not os.path.exists(socket_path)


class TestValidation:
    def test_malformed_cell_is_refused_with_its_index(self, socket_path):
        broken = make_spec().to_dict()
        broken["workload"]["kind"] = "no-such-generator"
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            sock = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            sock.settimeout(30)
            sock.connect(socket_path)
            with sock, sock.makefile("rwb") as stream:
                write_frame_sync(
                    stream, {"op": "submit", "cells": [broken]}
                )
                answer = read_frame_sync(stream)
        assert answer["type"] == "error"
        assert "cell 0" in answer["error"]

    def test_unknown_op_answers_an_error_frame(self, socket_path):
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            sock = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            sock.settimeout(30)
            sock.connect(socket_path)
            with sock, sock.makefile("rwb") as stream:
                write_frame_sync(stream, {"op": "florp"})
                answer = read_frame_sync(stream)
        assert answer["type"] == "error"
        assert "florp" in answer["error"]
