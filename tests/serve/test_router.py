"""The spec-hash router end-to-end: sharding, transports, recovery.

The acceptance scenario for the sharded serving layer: ``shard_for``
sends every submission of a hash to the same shard; overlapping clients
on *both* transports (unix socket and TCP) execute each unique spec
exactly once fleet-wide and read back reports byte-identical to a
direct executor run; a shard killed mid-fleet is restarted by the
supervisor and a resubmission returns byte-identical results; draining
the router unlinks every socket it bound.
"""

import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.runner import execute_spec
from repro.runner.spec import ExperimentSpec, WorkloadSpec
from repro.serve import RouterConfig, RouterThread, ServeClient, shard_for
from repro.sim.system import SystemConfig


def make_spec(protocol="no-cache", seed=0) -> ExperimentSpec:
    return ExperimentSpec(
        protocol=protocol,
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=4,
            n_references=120,
            write_fraction=0.3,
            seed=seed,
            tasks=(0, 1),
        ),
        config=SystemConfig(n_nodes=4),
    )


def canonical(report_dict: dict) -> str:
    return json.dumps(report_dict, sort_keys=True)


GRID = [
    make_spec(protocol=protocol, seed=seed)
    for protocol in ("no-cache", "write-once")
    for seed in (0, 1, 2)
]


class TestShardFor:
    def test_same_hash_same_shard_always(self):
        for spec in GRID:
            owners = {shard_for(spec.spec_hash, 4) for _ in range(10)}
            assert len(owners) == 1  # stable: a pure function

    def test_prefix_stability_under_hash_length(self):
        # Only the first eight hex digits decide, so the mapping holds
        # for any future hash length >= 8.
        for spec in GRID:
            full = spec.spec_hash
            assert shard_for(full, 4) == shard_for(full[:8], 4)

    def test_every_shard_is_reachable(self):
        owners = {
            shard_for(make_spec(seed=seed).spec_hash, 4)
            for seed in range(64)
        }
        assert owners == {0, 1, 2, 3}

    def test_single_shard_owns_everything(self):
        for spec in GRID:
            assert shard_for(spec.spec_hash, 1) == 0


class TestRouterConfig:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError, match="shards"):
            RouterConfig(socket_path="r.sock", shards=0)
        with pytest.raises(ConfigurationError, match="listen"):
            RouterConfig(socket_path="r.sock", listen="/not/a/port")
        with pytest.raises(ConfigurationError, match="restart_backoff"):
            RouterConfig(socket_path="r.sock", restart_backoff=0)


class TestRouterEndToEnd:
    def test_overlapping_unix_and_tcp_clients_execute_once(self, tmp_path):
        """Unix and TCP clients overlap on the same grid: one execution
        per unique hash fleet-wide, byte-identical reports on both
        transports."""
        socket_path = tmp_path / "router.sock"
        direct = {
            spec.spec_hash: canonical(execute_spec(spec).to_dict())
            for spec in GRID
        }
        config = RouterConfig(
            socket_path=socket_path,
            shards=2,
            listen="127.0.0.1:0",
            workers=2,
        )
        with RouterThread(config) as router:
            tcp_address = f"127.0.0.1:{router.router.tcp_port}"

            def run_client(index):
                address = socket_path if index % 2 == 0 else tcp_address
                # Each client rotates the grid differently, then
                # repeats its own order (overlap across clients,
                # byte-identical resubmission within one).
                shift = index % len(GRID)
                cells = GRID[shift:] + GRID[:shift]
                with ServeClient(address, timeout=120) as client:
                    return [
                        client.submit(cells, name=f"c{index}")
                        for _ in range(3)
                    ]

            with ThreadPoolExecutor(max_workers=6) as pool:
                futures = [
                    pool.submit(run_client, index) for index in range(6)
                ]
                all_outcomes = [
                    outcome
                    for future in futures
                    for outcome in future.result(timeout=300)
                ]
            status = ServeClient(socket_path).status()

        assert status["router"] is True
        assert status["executed"] == {
            spec.spec_hash: 1 for spec in GRID
        }
        assert len(all_outcomes) == 18
        for outcome in all_outcomes:
            assert outcome.done["failed"] == 0
            assert len(outcome.results) == len(GRID)
            for frame in outcome.results:
                assert canonical(frame["report"]) == direct[
                    frame["spec_hash"]
                ]

    def test_shard_crash_restart_resubmit_byte_identical(self, tmp_path):
        """SIGKILL one shard: the supervisor restarts it, and a
        resubmission of the full grid returns byte-identical reports."""
        socket_path = tmp_path / "router.sock"
        config = RouterConfig(
            socket_path=socket_path,
            shards=2,
            workers=2,
            restart_backoff=0.05,
        )
        with RouterThread(config):
            client = ServeClient(socket_path, timeout=120)
            before = {
                frame["spec_hash"]: canonical(frame["report"])
                for frame in client.submit(GRID, name="before").results
            }
            assert len(before) == len(GRID)

            victim = client.status()["shards"][0]
            os.kill(victim["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                shard = client.status()["shards"][0]
                if (
                    shard["alive"]
                    and shard["restarts"] >= 1
                    and shard["pid"] != victim["pid"]
                ):
                    break
                time.sleep(0.1)
            else:
                raise AssertionError(
                    "shard was not restarted within 60s"
                )

            outcome = client.submit(GRID, name="after")
            assert outcome.done["failed"] == 0
            after = {
                frame["spec_hash"]: canonical(frame["report"])
                for frame in outcome.results
            }
        assert after == before

    def test_drain_unlinks_every_socket(self, tmp_path):
        socket_path = tmp_path / "router.sock"
        config = RouterConfig(socket_path=socket_path, shards=2)
        with RouterThread(config):
            shard_dir = config.resolved_shard_dir()
            shard_socks = sorted(shard_dir.glob("*.sock"))
            assert socket_path.exists()
            assert len(shard_socks) == 2
        assert not socket_path.exists()
        for sock in shard_socks:
            assert not sock.exists()
