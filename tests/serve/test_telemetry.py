"""Daemon-side telemetry: the ``metrics`` op, status mirrors, and the
flight recorder's automatic dumps.

Same harness as ``test_daemon.py``: every test runs a real
:class:`DaemonThread` over a real unix socket, with the executor's
``task_fn`` hook supplying determinism (gates, scripted failures).
"""

import json
import os
import shutil
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import CoherenceError, OverloadedError
from repro.obs.telemetry import parse_exposition
from repro.runner import execute_spec
from repro.runner.spec import ExperimentSpec, WorkloadSpec
from repro.serve import DaemonThread, ServeClient, ServeConfig
from repro.sim.system import SystemConfig

from tests.serve.test_daemon import (
    make_spec,
    socket_path,  # noqa: F401  (fixture re-export)
    wait_until,
)


@pytest.fixture
def flight_dir():
    tmp = tempfile.mkdtemp(prefix="repro-flight-")
    yield tmp
    shutil.rmtree(tmp, ignore_errors=True)


def dumps_in(flight_dir):
    return sorted(os.listdir(flight_dir))


class TestMetricsOp:
    def test_frame_shape_and_counter_monotonicity(self, socket_path):
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            client.submit([make_spec(seed=3)])
            first = client.metrics()
            assert first["type"] == "metrics"
            assert first["draining"] is False
            assert set(first) >= {"text", "metrics", "series", "flight"}

            client.submit([make_spec(seed=3)])  # cache hit
            client.submit([make_spec(seed=4)])
            second = client.metrics()

            for name, value in first["metrics"]["counters"].items():
                assert second["metrics"]["counters"][name] >= value
            counters = second["metrics"]["counters"]
            assert counters["serve.requests"] >= 3
            assert counters["serve.accepted"] >= 2
            assert counters["serve.executed"] >= 2
            assert counters["executor.tasks"] >= 2
            assert counters["result_cache.hot_hits"] >= 1
            assert counters["serve.references"] >= 120

    def test_latency_histograms_cover_all_three_legs(self, socket_path):
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            client.submit([make_spec()])
            histograms = client.metrics()["metrics"]["histograms"]
            for leg in (
                "latency.submit_to_admit_ms",
                "latency.admit_to_start_ms",
                "latency.start_to_finish_ms",
            ):
                assert histograms[leg]["total"] >= 1, leg

    def test_exposition_text_parses_and_matches_counters(
        self, socket_path
    ):
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            client.submit([make_spec()])
            frame = client.metrics()
            assert frame["text"].startswith("# TYPE")
            parsed = parse_exposition(frame["text"])
            for name, value in frame["metrics"]["counters"].items():
                key = "repro_" + name.replace(".", "_")
                assert parsed[key] == value

    def test_gauges_and_series_fill_in(self, socket_path):
        config = ServeConfig(
            socket_path=socket_path, sample_interval=0.05
        )
        with DaemonThread(config):
            client = ServeClient(socket_path)
            client.submit([make_spec()])
            wait_until(
                lambda: len(
                    client.metrics()["series"]
                    .get("gauge.serve.queue_depth", {})
                    .get("values", [])
                )
                >= 2,
                label="sampler loop took two samples",
            )
            frame = client.metrics()
            gauges = frame["metrics"]["gauges"]
            for name in (
                "serve.queue_depth",
                "serve.in_flight",
                "serve.workers_busy",
                "serve.subscribers",
                "result_cache.hot_entries",
            ):
                assert name in gauges, name
            assert gauges["result_cache.hot_entries"] == 1
            ring = frame["series"]["counter.serve.requests"]
            # Wall-clock mode: ticks are timestamps, strictly increasing.
            assert ring["ticks"] == sorted(ring["ticks"])


class TestStatusMirrors:
    def test_admission_and_result_cache_counters(self, socket_path):
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            client.submit([make_spec(seed=1)])
            client.submit([make_spec(seed=1)])
            status = client.status()
            admission = status["admission"]
            assert admission["requests"] == 2
            # Both requests are admitted; the second resolves from the
            # hot cache rather than executing again.
            assert admission["accepted"] == 2
            assert admission["rejected"] == 0
            assert admission["coalesced"] == 0
            assert admission["max_queue"] == 64
            cache = status["result_cache"]
            assert cache["result_cache.hot_hits"] == 1
            assert cache["result_cache.hot_misses"] == 1
            assert status["workers_busy"] == 0


class TestFlightDumps:
    def test_drain_dumps_lifecycle_ring(self, socket_path, flight_dir):
        config = ServeConfig(
            socket_path=socket_path, flight_dir=flight_dir
        )
        with DaemonThread(config):
            client = ServeClient(socket_path)
            client.submit([make_spec()])
        (name,) = dumps_in(flight_dir)
        assert "drain" in name
        lines = [
            json.loads(line)
            for line in open(os.path.join(flight_dir, name))
        ]
        assert lines[0]["flight_dump"] == "drain"
        kinds = {line["kind"] for line in lines[1:]}
        assert "lifecycle" in kinds

    def test_coherence_error_triggers_a_dump(
        self, socket_path, flight_dir
    ):
        def broken(spec):
            raise CoherenceError("scripted incident")

        config = ServeConfig(
            socket_path=socket_path,
            flight_dir=flight_dir,
            task_fn=broken,
        )
        with DaemonThread(config):
            client = ServeClient(socket_path)
            outcome = client.submit([make_spec()])
            assert outcome.errors  # the task failed, not the submission
            wait_until(
                lambda: any(
                    "coherence-error" in name
                    for name in dumps_in(flight_dir)
                ),
                label="coherence-error flight dump",
            )
            name = next(
                n for n in dumps_in(flight_dir) if "coherence-error" in n
            )
            lines = [
                json.loads(line)
                for line in open(os.path.join(flight_dir, name))
            ]
            failures = [
                line
                for line in lines[1:]
                if line.get("kind") == "failure"
            ]
            assert failures
            assert failures[0]["name"] == "CoherenceError"
            counters = client.metrics()["metrics"]["counters"]
            assert counters["serve.flight_dumps"] >= 1

    def test_rejection_burst_triggers_a_dump(
        self, socket_path, flight_dir
    ):
        gate = threading.Event()

        def gated(spec):
            assert gate.wait(30)
            return execute_spec(spec)

        config = ServeConfig(
            socket_path=socket_path,
            workers=1,
            max_queue=1,
            task_fn=gated,
            flight_dir=flight_dir,
            reject_burst=2,
        )
        try:
            with DaemonThread(config):
                client = ServeClient(socket_path)
                with ThreadPoolExecutor(max_workers=2) as pool:
                    held = pool.submit(
                        client.submit, [make_spec(seed=0)], name="hold"
                    )
                    wait_until(
                        lambda: client.status()["in_flight"] >= 1,
                        label="worker holding the gated cell",
                    )
                    filler = pool.submit(
                        client.submit, [make_spec(seed=1)], name="fill"
                    )
                    wait_until(
                        lambda: client.status()["queue_depth"] == 1,
                        label="queue full",
                    )
                    for seed in (7, 8):
                        with pytest.raises(OverloadedError):
                            client.submit([make_spec(seed=seed)])
                    wait_until(
                        lambda: any(
                            "reject-burst" in name
                            for name in dumps_in(flight_dir)
                        ),
                        label="reject-burst flight dump",
                    )
                    gate.set()
                    held.result(timeout=60)
                    filler.result(timeout=60)
        finally:
            gate.set()
        name = next(
            n for n in dumps_in(flight_dir) if "reject-burst" in n
        )
        lines = [
            json.loads(line)
            for line in open(os.path.join(flight_dir, name))
        ]
        rejections = [
            line for line in lines[1:] if line.get("kind") == "rejection"
        ]
        assert len(rejections) >= 2

    def test_no_flight_dir_means_no_dump_but_ring_records(
        self, socket_path
    ):
        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            client.submit([make_spec()])
            flight = client.metrics()["flight"]
            assert flight["events"] >= 1  # serve_start lifecycle event
            assert flight["dumps"] == 0


class TestCliVerbs:
    def test_submit_metrics_prints_exposition(self, socket_path, capsys):
        from repro.cli import main

        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            client.submit([make_spec()])
            rc = main(["submit", "--socket", socket_path, "--metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("# TYPE")
        assert "repro_serve_requests" in out

    def test_top_once_renders_a_frame(self, socket_path, capsys):
        from repro.cli import main

        with DaemonThread(ServeConfig(socket_path=socket_path)):
            client = ServeClient(socket_path)
            client.submit([make_spec()])
            client.submit([make_spec()])
            rc = main(["top", "--socket", socket_path, "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "p50/p90/p99" in out
        assert "hit 50.0%" in out
        assert "queue depth:" in out
