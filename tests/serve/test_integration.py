"""The serve daemon end-to-end: a real ``repro serve`` subprocess.

The acceptance scenario for the serving layer: a daemon started through
the CLI on a unix socket takes 100+ overlapping submissions from
concurrent clients, executes each unique spec hash exactly once, streams
progress events to every submission, rejects work beyond its admission
queue, returns results byte-identical to a direct executor run, and
drains cleanly on SIGTERM (exit 0, socket removed).
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.errors import OverloadedError
from repro.runner import execute_spec, read_journal
from repro.runner.spec import ExperimentSpec, WorkloadSpec
from repro.serve import ServeClient
from repro.sim.system import SystemConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_spec(protocol="no-cache", seed=0) -> ExperimentSpec:
    return ExperimentSpec(
        protocol=protocol,
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=4,
            n_references=120,
            write_fraction=0.3,
            seed=seed,
            tasks=(0, 1),
        ),
        config=SystemConfig(n_nodes=4),
    )


def canonical(report_dict: dict) -> str:
    return json.dumps(report_dict, sort_keys=True)


def start_daemon(socket_path, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            str(socket_path),
            *extra_args,
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if os.path.exists(socket_path):
            return process
        if process.poll() is not None:
            raise AssertionError(
                f"daemon exited {process.returncode} before binding:\n"
                f"{process.stdout.read()}"
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError("daemon did not bind its socket within 30s")


def stop_daemon(process):
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
    return process.returncode


@pytest.fixture
def serve_dir():
    tmp = tempfile.mkdtemp(prefix="repro-serve-")
    yield Path(tmp)
    shutil.rmtree(tmp, ignore_errors=True)


class TestServeEndToEnd:
    def test_overlapping_clients_execute_each_spec_once(self, serve_dir):
        """100+ overlapping submissions -> one execution per unique hash,
        events for every submission, byte-identical results."""
        socket_path = serve_dir / "serve.sock"
        journal_path = serve_dir / "journal.jsonl"
        grid = [
            make_spec(protocol=protocol, seed=seed)
            for protocol in ("no-cache", "write-once", "two-mode")
            for seed in (0, 1)
        ]
        direct = {
            spec.spec_hash: canonical(execute_spec(spec).to_dict())
            for spec in grid
        }
        n_clients, per_client = 12, 9  # 108 overlapping submissions
        process = start_daemon(
            socket_path, "--workers", "4", "--journal", str(journal_path)
        )
        try:
            def run_client(client_index):
                client = ServeClient(socket_path, timeout=120)
                outcomes = []
                for round_index in range(per_client):
                    # Rotate the grid so concurrent submissions overlap
                    # on the same hashes in different orders.
                    shift = (client_index + round_index) % len(grid)
                    cells = grid[shift:] + grid[:shift]
                    outcomes.append(
                        client.submit(cells, name=f"c{client_index}")
                    )
                return outcomes

            with ThreadPoolExecutor(max_workers=n_clients) as pool:
                futures = [
                    pool.submit(run_client, index)
                    for index in range(n_clients)
                ]
                all_outcomes = [
                    outcome
                    for future in futures
                    for outcome in future.result(timeout=300)
                ]
            status = ServeClient(socket_path).status()
        finally:
            returncode = stop_daemon(process)

        assert len(all_outcomes) == n_clients * per_client
        # Exactly one execution per unique spec hash, despite 108
        # overlapping submissions covering each hash 108 times.
        assert status["executed"] == {
            spec.spec_hash: 1 for spec in grid
        }
        for outcome in all_outcomes:
            assert outcome.done["failed"] == 0
            assert len(outcome.results) == len(grid)
            # Every submission saw at least one streamed event per
            # unique cell (its admission event, plus any task_start /
            # task_finish that landed while it was subscribed).
            assert len(outcome.events) >= len(grid)
            for frame in outcome.results:
                assert canonical(frame["report"]) == direct[
                    frame["spec_hash"]
                ]
        # Graceful SIGTERM drain: clean exit, socket removed, journal
        # closes with the shutdown record and one finish per unique cell.
        assert returncode == 0
        assert not socket_path.exists()
        events = [entry["event"] for entry in read_journal(journal_path)]
        assert events[0] == "serve_start"
        assert events[-1] == "serve_stop"
        assert events.count("task_finish") == len(grid)

    def test_overload_is_rejected_not_queued(self, serve_dir):
        socket_path = serve_dir / "serve.sock"
        process = start_daemon(
            socket_path, "--workers", "1", "--max-queue", "1"
        )
        try:
            client = ServeClient(socket_path, timeout=60)
            oversized = [make_spec(seed=seed) for seed in range(5)]
            with pytest.raises(OverloadedError, match="queue full"):
                client.submit(oversized, name="too-much")
            status = client.status()
            assert status["rejected"] == 1
            assert status["executed"] == {}  # all-or-nothing: none ran
            # A submission that fits is still served afterwards.
            outcome = client.submit([make_spec(seed=0)], name="fits")
            assert outcome.results[0]["source"] == "queued"
        finally:
            returncode = stop_daemon(process)
        assert returncode == 0
        assert not socket_path.exists()

    def test_submit_cli_round_trips_byte_identical(self, serve_dir):
        """Two ``repro submit`` clients write identical result files."""
        socket_path = serve_dir / "serve.sock"
        process = start_daemon(socket_path, "--workers", "2")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        outputs = [serve_dir / "a.json", serve_dir / "b.json"]
        try:
            for output in outputs:
                result = subprocess.run(
                    [
                        sys.executable, "-m", "repro", "submit",
                        "--socket", str(socket_path),
                        "--nodes", "8",
                        "--sharers", "2", "4",
                        "--references", "200",
                        "--quiet-events",
                        "--output", str(output),
                    ],
                    cwd=REPO_ROOT,
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=300,
                )
                assert result.returncode == 0, result.stdout + result.stderr
                assert "bits/reference vs sharers" in result.stdout
        finally:
            returncode = stop_daemon(process)
        assert returncode == 0
        assert outputs[0].read_bytes() == outputs[1].read_bytes()
