"""Wire protocol: framing round trips, limits, submit validation."""

import io
import struct

import pytest

from repro.errors import ConfigurationError, FrameError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_payload,
    encode_frame,
    parse_submit_cells,
    peek_frame_type,
    peek_spec_hash,
    read_frame_sync,
    route_submit_cells,
    write_frame_sync,
)


def frame_bytes(payload: dict) -> io.BytesIO:
    return io.BytesIO(encode_frame(payload))


class TestFraming:
    def test_round_trip(self):
        payload = {"op": "submit", "cells": [1, 2], "näme": "ünïcode"}
        stream = io.BytesIO()
        write_frame_sync(stream, payload)
        stream.seek(0)
        assert read_frame_sync(stream) == payload

    def test_multiple_frames_back_to_back(self):
        stream = io.BytesIO()
        write_frame_sync(stream, {"n": 1})
        write_frame_sync(stream, {"n": 2})
        stream.seek(0)
        assert read_frame_sync(stream) == {"n": 1}
        assert read_frame_sync(stream) == {"n": 2}
        assert read_frame_sync(stream) is None  # clean EOF

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(FrameError):
            encode_frame(["not", "an", "object"])
        body = b"[1, 2]"
        with pytest.raises(FrameError):
            decode_payload(body)

    def test_invalid_json_is_rejected(self):
        with pytest.raises(FrameError):
            decode_payload(b"{ not json")

    def test_announced_length_beyond_ceiling_is_rejected(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError):
            read_frame_sync(io.BytesIO(header))

    def test_truncated_header_is_an_error(self):
        with pytest.raises(FrameError):
            read_frame_sync(io.BytesIO(b"\x00\x00"))

    def test_truncated_body_is_an_error(self):
        whole = encode_frame({"op": "ping"})
        with pytest.raises(FrameError):
            read_frame_sync(io.BytesIO(whole[:-3]))

    def test_asyncio_flavour_matches_sync(self):
        import asyncio

        from repro.serve.protocol import read_frame

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "status"}))
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            return first, second

        first, second = asyncio.run(scenario())
        assert first == {"op": "status"}
        assert second is None

    def test_asyncio_mid_frame_close_is_an_error(self):
        import asyncio

        from repro.serve.protocol import read_frame

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "ping"})[:-2])
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(FrameError):
            asyncio.run(scenario())


def spec_dict(seed=0) -> dict:
    from repro.runner.spec import ExperimentSpec, WorkloadSpec
    from repro.sim.system import SystemConfig

    return ExperimentSpec(
        protocol="no-cache",
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=4,
            n_references=40,
            write_fraction=0.3,
            seed=seed,
            tasks=(0, 1),
        ),
        config=SystemConfig(n_nodes=4),
    ).to_dict()


class TestParseSubmitCells:
    def test_valid_cells_round_trip(self):
        name, specs = parse_submit_cells(
            {"name": "demo", "cells": [spec_dict(0), spec_dict(1)]}
        )
        assert name == "demo"
        assert [spec.workload.seed for spec in specs] == [0, 1]
        assert specs[0].to_dict() == spec_dict(0)

    def test_name_defaults(self):
        name, _ = parse_submit_cells({"cells": [spec_dict()]})
        assert name == "submit"

    def test_empty_name_is_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_submit_cells({"name": "", "cells": [spec_dict()]})

    def test_missing_or_empty_cells_are_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_submit_cells({"name": "demo"})
        with pytest.raises(ConfigurationError):
            parse_submit_cells({"name": "demo", "cells": []})

    def test_non_object_cell_names_its_index(self):
        with pytest.raises(ConfigurationError, match="cell 1"):
            parse_submit_cells({"cells": [spec_dict(), "nope"]})

    def test_invalid_spec_names_its_index(self):
        broken = spec_dict()
        broken["workload"]["kind"] = "no-such-generator"
        with pytest.raises(ConfigurationError, match="cell 0"):
            parse_submit_cells({"cells": [broken]})


class TestRouteSubmitCells:
    def test_hashes_match_the_spec_hash(self):
        from repro.runner.spec import ExperimentSpec

        cells = [spec_dict(0), spec_dict(1)]
        name, routed, hashes = route_submit_cells(
            {"name": "demo", "cells": cells}
        )
        assert name == "demo"
        assert routed is cells  # forwarded verbatim, never rebuilt
        assert hashes == [
            ExperimentSpec.from_dict(cell).spec_hash for cell in cells
        ]

    def test_shape_errors_match_full_validation(self):
        with pytest.raises(ConfigurationError, match="name"):
            route_submit_cells({"name": "", "cells": [spec_dict()]})
        with pytest.raises(ConfigurationError, match="cells"):
            route_submit_cells({"name": "demo", "cells": []})

    def test_malformed_cell_is_not_its_problem(self):
        # Routing hashes whatever it is given; the owning shard is the
        # validation authority and will refuse the cell itself.
        _, _, hashes = route_submit_cells(
            {"cells": [{"not": "a spec"}]}
        )
        assert len(hashes) == 1


class TestPeeks:
    def test_peek_type_matches_decode_for_streamed_frames(self):
        frames = [
            {"type": "event", "event": "task_hot", "task": "ab"},
            {
                "type": "result",
                "task": "ab",
                "spec_hash": "a" * 64,
                "source": "hot",
                "report": {"total_bits": 1, "zz": {"type": "nested"}},
            },
            {"type": "error", "task": "ab", "spec_hash": "b" * 64,
             "error": "boom"},
            {"type": "done", "id": None, "name": "x", "tasks": 2,
             "queued": 0, "coalesced": 0, "cached": 2, "failed": 0},
            {"type": "artifact", "task": "ab", "spec_hash": "c" * 64,
             "heatmaps": {}},
        ]
        for payload in frames:
            raw = encode_frame(payload)
            assert peek_frame_type(raw) == payload["type"]

    def test_peek_type_falls_back_when_type_is_not_last(self):
        # "unique" sorts after "type", so the accepted frame cannot be
        # classified from its tail -- peek must say so, not guess.
        raw = encode_frame({"type": "accepted", "unique": 4})
        assert peek_frame_type(raw) is None

    def test_peek_spec_hash_ignores_nested_occurrences(self):
        decoy = {"spec_hash": "0" * 64, "text": '"spec_hash": "fake'}
        raw = encode_frame(
            {
                "type": "result",
                "task": "ab",
                "spec_hash": "f" * 64,
                "source": "hot",
                "report": decoy,
            }
        )
        assert peek_spec_hash(raw) == "f" * 64

    def test_peek_spec_hash_absent(self):
        raw = encode_frame({"type": "done", "failed": 0})
        assert peek_spec_hash(raw) is None
