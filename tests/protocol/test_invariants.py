"""The invariant checker must actually catch corruption.

Each test builds a healthy system, breaks one invariant surgically behind
the protocol's back, and asserts the checker raises -- otherwise the
property tests' "invariants hold" results would be vacuous.
"""

import pytest

from repro.errors import CoherenceError
from repro.cache.state import StateField

from tests.protocol.conftest import addr, build, field_of


def healthy_dw():
    system, protocol = build()
    from repro.cache.state import Mode

    protocol_dw = protocol
    protocol_dw.set_mode(0, 0, Mode.DISTRIBUTED_WRITE)
    protocol_dw.write(0, addr(0), 10)
    protocol_dw.read(1, addr(0))
    protocol_dw.read(2, addr(0))
    protocol_dw.check_invariants()
    return system, protocol_dw


def healthy_gr():
    system, protocol = build()
    protocol.write(0, addr(0), 10)
    protocol.read(1, addr(0))
    protocol.check_invariants()
    return system, protocol


class TestSingleOwnerInvariant:
    def test_two_owners_detected(self):
        system, protocol = healthy_dw()
        # Forge a second owner at node 5.
        cache = system.caches[5]
        entry = cache.install(cache.slot_for(0), 0)
        entry.state_field = StateField(
            valid=True, owned=True, present={5}, owner=5
        )
        with pytest.raises(CoherenceError, match="owned by several"):
            protocol.check_invariants()


class TestBlockStoreInvariant:
    def test_wrong_recorded_owner_detected(self):
        system, protocol = healthy_dw()
        system.memory_for(0).block_store.set_owner(0, 7)
        with pytest.raises(CoherenceError, match="block store"):
            protocol.check_invariants()

    def test_dangling_block_store_entry_detected(self):
        system, protocol = healthy_dw()
        system.memory_for(5).block_store.set_owner(5, 3)
        with pytest.raises(CoherenceError, match="no cache owns"):
            protocol.check_invariants()

    def test_orphan_copies_detected(self):
        system, protocol = healthy_dw()
        # Remove the owner entirely but leave the copies.
        system.memory_for(0).block_store.clear(0)
        system.caches[0].drop(0)
        with pytest.raises(CoherenceError, match="no owner"):
            protocol.check_invariants()


class TestPresentVectorInvariant:
    def test_missing_self_flag_detected(self):
        system, protocol = healthy_dw()
        field_of(system, 0, 0).present.discard(0)
        with pytest.raises(CoherenceError, match="missing from its present"):
            protocol.check_invariants()

    def test_dw_vector_overcounting_detected(self):
        system, protocol = healthy_dw()
        field_of(system, 0, 0).present.add(6)  # node 6 has no copy
        with pytest.raises(CoherenceError, match="present vector"):
            protocol.check_invariants()

    def test_dw_vector_undercounting_detected(self):
        system, protocol = healthy_dw()
        field_of(system, 0, 0).present.discard(2)
        with pytest.raises(CoherenceError, match="present vector"):
            protocol.check_invariants()


class TestDataCoherenceInvariant:
    def test_diverged_copy_detected(self):
        system, protocol = healthy_dw()
        system.caches[1].find(0).data[0] = 999
        with pytest.raises(CoherenceError, match="holds"):
            protocol.check_invariants()


class TestGlobalReadInvariants:
    def test_second_valid_copy_detected(self):
        system, protocol = healthy_gr()
        # Forge a valid copy at the placeholder node.
        entry = system.caches[1].find(0)
        entry.state_field.valid = True
        with pytest.raises(CoherenceError, match="valid cop"):
            protocol.check_invariants()

    def test_misdirected_placeholder_detected(self):
        system, protocol = healthy_gr()
        field_of(system, 1, 0).owner = 6
        with pytest.raises(CoherenceError, match="points at"):
            protocol.check_invariants()

    def test_vector_member_without_entry_detected(self):
        system, protocol = healthy_gr()
        system.caches[1].drop(0)
        with pytest.raises(CoherenceError, match="no entry"):
            protocol.check_invariants()
