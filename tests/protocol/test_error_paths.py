"""Error-injection tests: the protocol must fail loudly, not corrupt.

Each test corrupts protocol or system state in a way that cannot arise
from a well-formed reference stream, and asserts that the next operation
raises :class:`~repro.errors.ProtocolError` (a clear diagnosis) instead of
silently serving wrong data.
"""

import pytest

from repro.cache.state import Mode, StateField
from repro.errors import ConfigurationError, ProtocolError
from repro.types import Address

from tests.protocol.conftest import addr, build, field_of


class TestCorruptedOwnerBookkeeping:
    def test_block_store_pointing_at_non_owner(self):
        system, protocol = build()
        protocol.write(0, addr(0), 1)
        # Corrupt: block store names a cache with no entry at all.
        system.memory_for(0).block_store.set_owner(0, 6)
        with pytest.raises(ProtocolError):
            protocol.read(3, addr(0))

    def test_placeholder_without_owner_field(self):
        system, protocol = build()
        protocol.write(0, addr(0), 1)
        protocol.read(1, addr(0))  # placeholder at node 1
        field_of(system, 1, 0).owner = None
        with pytest.raises(ProtocolError):
            protocol.read(1, addr(0))

    def test_owner_cycle_in_placeholder_chain_recovers_via_memory(self):
        system, protocol = build()
        protocol.write(0, addr(0), 1)
        protocol.read(1, addr(0))
        protocol.read(2, addr(0))
        # Forge a two-cycle: 1 -> 2 -> 1, with neither owning.  The
        # forwarding walk detects the revisit as a dead end, NAKs, and
        # the requester retries through the authoritative block store --
        # a forged cycle degrades to extra messages, not wrong data.
        field_of(system, 1, 0).owner = 2
        field_of(system, 2, 0).owner = 1
        from repro.protocol.messages import MsgKind

        naks_before = protocol.stats.traffic_messages[MsgKind.NAK.value]
        assert protocol.read(1, addr(0)) == 1
        assert (
            protocol.stats.traffic_messages[MsgKind.NAK.value]
            == naks_before + 1
        )

    def test_ownership_request_for_owned_block(self):
        system, protocol = build()
        protocol.write(0, addr(0), 1)
        with pytest.raises(ProtocolError):
            protocol._acquire_ownership(0, 0)


class TestCorruptedPresentVector:
    def test_write_update_to_vector_member_without_copy(self):
        system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
        protocol.write(0, addr(0), 1)
        protocol.read(1, addr(0))
        # Corrupt: the vector names node 5, which holds nothing.
        field_of(system, 0, 0).present.add(5)
        with pytest.raises(ProtocolError):
            protocol.write(0, addr(0), 2)

    def test_invalidation_of_vector_member_without_entry(self):
        system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
        protocol.write(0, addr(0), 1)
        protocol.read(1, addr(0))
        field_of(system, 0, 0).present.add(5)
        with pytest.raises(ProtocolError):
            protocol.set_mode(0, 0, Mode.GLOBAL_READ)


class TestApiMisuse:
    def test_evicting_a_nonresident_block(self):
        system, protocol = build()
        with pytest.raises(ProtocolError):
            protocol.evict(0, 99)

    def test_out_of_range_offset_rejected_before_any_action(self):
        system, protocol = build(block_size_words=2)
        with pytest.raises(ConfigurationError):
            protocol.read(0, Address(0, 2))
        with pytest.raises(ConfigurationError):
            protocol.write(0, Address(0, -1), 1)
        # Nothing happened: no traffic, no state.
        assert system.network.total_bits == 0
        assert system.caches[0].find(0) is None

    def test_negative_block_rejected(self):
        system, protocol = build()
        with pytest.raises(ConfigurationError):
            protocol.read(0, Address(-1, 0))


class TestFailuresAreNotDestructive:
    def test_state_survives_a_rejected_reference(self):
        system, protocol = build()
        protocol.write(0, addr(0), 7)
        with pytest.raises(ConfigurationError):
            protocol.read(0, Address(0, 99))
        # The earlier state is intact and still serves correctly.
        assert protocol.read(0, addr(0)) == 7
        protocol.check_invariants()

    def test_install_refuses_to_clobber_owned_state(self):
        # The cache-level guard behind the protocol's replacement path.
        system, protocol = build(cache_entries=1)
        protocol.write(0, addr(0), 1)
        cache = system.caches[0]
        slot = cache.slot_for(1)
        entry = slot.entry
        entry.state_field = StateField(
            valid=True, owned=True, present={0}, owner=0
        )
        with pytest.raises(ProtocolError):
            cache.install(slot, 1)
