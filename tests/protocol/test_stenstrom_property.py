"""Property-based tests: random traces, full verification, all protocols.

Hypothesis generates interleaved reference streams (with occasional mode
switches and forced evictions for the Stenström protocol) and the verifying
engine checks, after *every* reference:

* value coherence -- each read returns the most recently written value;
* the structural invariants of :mod:`repro.protocol.invariants`.

This explores corners no hand-written scenario reaches: ownership chains
across mode switches, hand-offs triggered by capacity pressure mid-stream,
placeholders outliving their blocks, and so on.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.state import Mode
from repro.protocol.full_map import FullMapProtocol
from repro.protocol.modes import (
    AdaptiveModePolicy,
    OracleModePolicy,
)
from repro.protocol.no_cache import NoCacheProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.protocol.write_once import WriteOnceProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.types import Address, Op, Reference

N_NODES = 8
N_BLOCKS = 6
BLOCK_WORDS = 2


def reference_strategy():
    return st.builds(
        Reference,
        node=st.integers(0, N_NODES - 1),
        op=st.sampled_from([Op.READ, Op.WRITE]),
        address=st.builds(
            Address,
            block=st.integers(0, N_BLOCKS - 1),
            offset=st.integers(0, BLOCK_WORDS - 1),
        ),
        value=st.integers(0, 1000),
    )


traces = st.lists(reference_strategy(), min_size=1, max_size=120)

#: (node, block, mode) mode-switch actions interleaved into the stream.
mode_switches = st.lists(
    st.tuples(
        st.integers(0, N_NODES - 1),
        st.integers(0, N_BLOCKS - 1),
        st.sampled_from(list(Mode)),
    ),
    max_size=6,
)


def small_system(cache_entries=3):
    # Deliberately tiny caches: capacity evictions happen constantly.
    return System(
        SystemConfig(
            n_nodes=N_NODES,
            cache_entries=cache_entries,
            block_size_words=BLOCK_WORDS,
        )
    )


common_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestStenstromCoherence:
    @common_settings
    @given(trace=traces, default=st.sampled_from(list(Mode)))
    def test_random_traces_verify(self, trace, default):
        protocol = StenstromProtocol(
            small_system(), default_mode=default
        )
        run_trace(protocol, trace, verify=True)

    @common_settings
    @given(trace=traces, switches=mode_switches)
    def test_random_traces_with_mode_switches(self, trace, switches):
        protocol = StenstromProtocol(small_system())
        shadow = {}
        switch_iter = iter(switches)
        for index, ref in enumerate(trace):
            if ref.is_write:
                protocol.write(ref.node, ref.address, ref.value)
                shadow[ref.address] = ref.value
            else:
                observed = protocol.read(ref.node, ref.address)
                assert observed == shadow.get(ref.address, 0), (
                    f"stale read at reference {index}"
                )
            protocol.check_invariants()
            if index % 7 == 3:
                switch = next(switch_iter, None)
                if switch is not None:
                    node, block, mode = switch
                    protocol.set_mode(node, block, mode)
                    protocol.check_invariants()

    @common_settings
    @given(trace=traces, policy_window=st.sampled_from([2, 8, 32]))
    def test_random_traces_with_oracle_policy(self, trace, policy_window):
        protocol = StenstromProtocol(
            small_system(),
            mode_policy=OracleModePolicy(window=policy_window),
        )
        run_trace(protocol, trace, verify=True)

    @common_settings
    @given(trace=traces, policy_window=st.sampled_from([2, 8, 32]))
    def test_random_traces_with_adaptive_policy(self, trace, policy_window):
        protocol = StenstromProtocol(
            small_system(),
            mode_policy=AdaptiveModePolicy(window=policy_window),
        )
        run_trace(protocol, trace, verify=True)

    @common_settings
    @given(
        trace=traces,
        evictions=st.lists(
            st.tuples(
                st.integers(0, N_NODES - 1), st.integers(0, N_BLOCKS - 1)
            ),
            max_size=8,
        ),
    )
    def test_random_traces_with_forced_evictions(self, trace, evictions):
        protocol = StenstromProtocol(small_system())
        shadow = {}
        eviction_iter = iter(evictions)
        for index, ref in enumerate(trace):
            if ref.is_write:
                protocol.write(ref.node, ref.address, ref.value)
                shadow[ref.address] = ref.value
            else:
                observed = protocol.read(ref.node, ref.address)
                assert observed == shadow.get(ref.address, 0)
            if index % 5 == 2:
                eviction = next(eviction_iter, None)
                if eviction is not None:
                    node, block = eviction
                    if protocol.system.caches[node].find(block) is not None:
                        protocol.evict(node, block)
            protocol.check_invariants()


class TestBaselineCoherence:
    @common_settings
    @given(trace=traces)
    def test_write_once_verifies(self, trace):
        run_trace(WriteOnceProtocol(small_system()), trace, verify=True)

    @common_settings
    @given(trace=traces)
    def test_full_map_verifies(self, trace):
        run_trace(FullMapProtocol(small_system()), trace, verify=True)

    @common_settings
    @given(trace=traces)
    def test_no_cache_verifies(self, trace):
        run_trace(NoCacheProtocol(small_system()), trace, verify=True)


class TestCrossProtocolEquivalence:
    """Every protocol must make the same trace observe the same values --
    they implement the same memory, differing only in traffic."""

    @common_settings
    @given(trace=traces)
    def test_all_protocols_observe_identical_values(self, trace):
        observations = []
        for factory in (
            lambda: StenstromProtocol(small_system()),
            lambda: StenstromProtocol(
                small_system(), default_mode=Mode.DISTRIBUTED_WRITE
            ),
            lambda: WriteOnceProtocol(small_system()),
            lambda: FullMapProtocol(small_system()),
            lambda: NoCacheProtocol(small_system()),
        ):
            protocol = factory()
            values = []
            for ref in trace:
                if ref.is_write:
                    protocol.write(ref.node, ref.address, ref.value)
                else:
                    values.append(protocol.read(ref.node, ref.address))
            observations.append(values)
        first = observations[0]
        for other in observations[1:]:
            assert other == first


class TestStatsAccountingConsistency:
    @common_settings
    @given(trace=traces)
    def test_protocol_ledger_matches_network_counters(self, trace):
        """Every bit the protocol logged is on a link, and vice versa."""
        protocol = StenstromProtocol(small_system())
        report = run_trace(protocol, trace, verify=False)
        assert report.network_total_bits == protocol.stats.total_bits
