"""Scenario tests for the uncached baseline (eq. 9)."""

import pytest

from repro.network import cost as netcost
from repro.protocol.messages import MessageCosts
from repro.protocol.no_cache import NoCacheProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.types import Address
from repro.workloads.markov import markov_block_trace


def build(message_bits=None):
    costs = (
        MessageCosts.uniform(message_bits)
        if message_bits is not None
        else MessageCosts()
    )
    system = System(SystemConfig(n_nodes=16, costs=costs))
    return system, NoCacheProtocol(system)


class TestSemantics:
    def test_read_returns_last_write(self):
        system, protocol = build()
        protocol.write(0, Address(3, 1), 42)
        assert protocol.read(5, Address(3, 1)) == 42

    def test_unwritten_memory_reads_zero(self):
        system, protocol = build()
        assert protocol.read(2, Address(9, 0)) == 0


class TestEq9Correspondence:
    def test_read_costs_two_traversals_write_one(self):
        """Under the uniform message model, the simulated per-reference
        cost is exactly eq. 9's (request + reply for reads, one word
        message for writes)."""
        system, protocol = build(message_bits=20)
        unit = netcost.cc1(1, 16, 20)
        protocol.read(0, Address(0, 0))
        assert system.network.total_bits == 2 * unit
        system.reset_traffic()
        protocol.write(0, Address(0, 0), 1)
        assert system.network.total_bits == unit

    @pytest.mark.parametrize("w", [0.0, 0.25, 0.5, 1.0])
    def test_mean_cost_matches_eq9_over_a_trace(self, w):
        system, protocol = build(message_bits=20)
        trace = markov_block_trace(
            16, tasks=list(range(4)), write_fraction=w,
            n_references=2000, seed=9,
        )
        report = run_trace(protocol, trace, verify=True)
        unit = netcost.cc1(1, 16, 20)
        expected = (2 - report.write_fraction) * unit
        assert report.cost_per_reference == pytest.approx(expected)

    def test_every_reference_crosses_the_network(self):
        system, protocol = build()
        for _ in range(5):
            protocol.read(1, Address(0, 0))
        assert protocol.stats.events["reads"] == 5
        assert protocol.stats.total_messages == 10  # request + reply each
