"""Every CoherenceError names the block, the cache, and the mode.

A violation raised deep inside a long chaos trace is only actionable if
the message itself says *where* -- so for each of the six structural
invariants this file corrupts a healthy system and asserts the error
carries the uniform ``block B (node N, mode M)`` context prefix with the
right values, not just any message.
"""

import pytest

from repro.cache.state import Mode, StateField
from repro.errors import CoherenceError

from tests.protocol.conftest import addr, build, field_of


def healthy_dw():
    system, protocol = build()
    protocol.set_mode(0, 0, Mode.DISTRIBUTED_WRITE)
    protocol.write(0, addr(0), 10)
    protocol.read(1, addr(0))
    protocol.read(2, addr(0))
    protocol.check_invariants()
    return system, protocol


def healthy_gr():
    system, protocol = build()
    protocol.write(0, addr(0), 10)
    protocol.read(1, addr(0))
    protocol.check_invariants()
    return system, protocol


def violation(protocol) -> str:
    with pytest.raises(CoherenceError) as info:
        protocol.check_invariants()
    return str(info.value)


class TestInvariant1SingleOwner:
    def test_message_names_block_node_and_mode(self):
        system, protocol = healthy_dw()
        cache = system.caches[5]
        entry = cache.install(cache.slot_for(0), 0)
        entry.state_field = StateField(
            valid=True, owned=True, present={5}, owner=5
        )
        message = violation(protocol)
        assert "block 0" in message
        assert "node 0" in message
        assert "mode DISTRIBUTED_WRITE" in message
        assert "owned by several caches" in message


class TestInvariant2BlockStoreAccuracy:
    def test_wrong_owner_message(self):
        system, protocol = healthy_dw()
        system.memory_for(0).block_store.set_owner(0, 7)
        message = violation(protocol)
        assert "block 0" in message
        assert "node 0" in message
        assert "mode DISTRIBUTED_WRITE" in message
        assert "block store says owner 7" in message

    def test_dangling_entry_names_the_recorded_node_and_no_mode(self):
        system, protocol = healthy_dw()
        system.memory_for(5).block_store.set_owner(5, 3)
        message = violation(protocol)
        # No cache holds block 5, so no owner defines a mode: the
        # message must say so rather than invent one.
        assert "block 5" in message
        assert "node 3" in message
        assert "mode none" in message
        assert "no cache owns it" in message


class TestInvariant3OwnerInOwnVector:
    def test_message_names_the_owner(self):
        system, protocol = healthy_dw()
        field_of(system, 0, 0).present.discard(0)
        message = violation(protocol)
        assert "block 0" in message
        assert "node 0" in message
        assert "mode DISTRIBUTED_WRITE" in message
        assert "missing from its present vector" in message


class TestInvariant4DwVectorAccuracy:
    def test_vector_mismatch_names_the_owner(self):
        system, protocol = healthy_dw()
        field_of(system, 0, 0).present.add(6)
        message = violation(protocol)
        assert "block 0" in message
        assert "node 0" in message
        assert "mode DISTRIBUTED_WRITE" in message
        assert "present vector" in message

    def test_divergent_copy_names_the_diverged_holder(self):
        system, protocol = healthy_dw()
        entry = system.caches[2].find(0)
        entry.data = list(entry.data)
        entry.data[0] = 999
        message = violation(protocol)
        assert "block 0" in message
        assert "node 2" in message  # the holder, not the owner
        assert "mode DISTRIBUTED_WRITE" in message
        assert "cache 2 holds" in message


class TestInvariant5GrSingleCopy:
    def test_extra_valid_copy_names_the_owner(self):
        system, protocol = healthy_gr()
        # Forge a second valid (unowned) copy next to the owner's.
        owner = system.memory_for(0).block_store.owner_of(0)
        forger = (owner + 3) % len(system.caches)
        cache = system.caches[forger]
        entry = cache.find(0) or cache.install(cache.slot_for(0), 0)
        entry.state_field = StateField(
            valid=True, owned=False, present=set(), owner=owner
        )
        message = violation(protocol)
        assert "block 0" in message
        assert "mode GLOBAL_READ" in message
        assert "expected only owner" in message

    def test_placeholder_pointing_elsewhere_names_the_member(self):
        system, protocol = healthy_gr()
        owner = system.memory_for(0).block_store.owner_of(0)
        member = next(
            m for m in field_of(system, owner, 0).present if m != owner
        )
        system.caches[member].find(0).state_field.owner = 7
        message = violation(protocol)
        assert "block 0" in message
        assert f"node {member}" in message
        assert "mode GLOBAL_READ" in message
        assert "points at 7" in message


class TestInvariant6NoOrphanCopies:
    def test_orphans_name_the_first_holder_and_no_mode(self):
        system, protocol = healthy_dw()
        system.memory_for(0).block_store.clear(0)
        system.caches[0].drop(0)
        message = violation(protocol)
        assert "block 0" in message
        assert "node 1" in message  # first surviving holder
        assert "mode none" in message
        assert "with no owner" in message


class TestStructuredFields:
    """CoherenceError carries machine-readable context alongside the
    (byte-identical) human message: block, node, mode name, and the
    detail string without the context prefix."""

    def capture(self, protocol):
        with pytest.raises(CoherenceError) as info:
            protocol.check_invariants()
        return info.value

    def test_fields_match_the_message(self):
        system, protocol = healthy_dw()
        field_of(system, 0, 0).present.discard(0)
        exc = self.capture(protocol)
        assert exc.block == 0
        assert exc.node == 0
        assert exc.mode == "DISTRIBUTED_WRITE"
        assert "missing from its present vector" in exc.detail
        # The message is exactly the old prefix + detail: structured
        # fields added nothing and removed nothing.
        assert str(exc) == (
            f"block {exc.block} (node {exc.node}, mode {exc.mode}): "
            f"{exc.detail}"
        )

    def test_mode_is_none_when_no_owner_defines_one(self):
        system, protocol = healthy_dw()
        system.memory_for(5).block_store.set_owner(5, 3)
        exc = self.capture(protocol)
        assert exc.block == 5
        assert exc.node == 3
        assert exc.mode is None
        assert "mode none" in str(exc)

    def test_value_verification_errors_are_structured_too(self):
        from repro.sim.engine import run_trace
        from repro.sim.trace import Trace
        from repro.types import Op, Reference

        _, protocol = build()
        # A write the verifier's shadow never saw: the trace's read then
        # observes 7 where the shadow expects the initial 0.
        protocol.write(0, addr(0), 7)
        trace = Trace(
            references=(Reference(node=1, op=Op.READ, address=addr(0)),),
            n_nodes=8,
        )
        with pytest.raises(CoherenceError) as info:
            run_trace(protocol, trace, verify=True)
        assert info.value.block == 0
        assert info.value.node == 1
        assert "expected 0" in info.value.detail
