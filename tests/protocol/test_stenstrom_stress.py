"""Stress and determinism tests for the core protocol."""

import pytest

from repro.cache.state import Mode
from repro.protocol.modes import OracleModePolicy
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.synthetic import random_trace


class TestDeterminism:
    def test_identical_runs_produce_identical_statistics(self):
        def run():
            system = System(
                SystemConfig(
                    n_nodes=16, cache_entries=4, block_size_words=2
                )
            )
            protocol = StenstromProtocol(
                system, mode_policy=OracleModePolicy(window=16)
            )
            trace = random_trace(
                16, 1500, n_blocks=20, block_size_words=2,
                write_fraction=0.4, seed=99,
            )
            report = run_trace(
                protocol, trace, verify=True, check_invariants_every=250
            )
            return (
                report.network_total_bits,
                dict(report.stats.events),
                tuple(report.network_bits_by_level),
            )

        assert run() == run()

    def test_random_replacement_is_seeded_deterministic(self):
        def run():
            system = System(
                SystemConfig(
                    n_nodes=8,
                    cache_entries=2,
                    block_size_words=2,
                    replacement="random",
                    seed=7,
                )
            )
            protocol = StenstromProtocol(system)
            trace = random_trace(
                8, 800, n_blocks=16, block_size_words=2, seed=1
            )
            return run_trace(protocol, trace, verify=True).stats.as_dict()

        assert run() == run()


@pytest.mark.slow
class TestScaleStress:
    def test_large_machine_long_trace_verifies(self):
        """64 nodes, 10k references, verification at stride: the whole
        stack at a scale no scenario test reaches."""
        system = System(
            SystemConfig(n_nodes=64, cache_entries=8, block_size_words=4)
        )
        protocol = StenstromProtocol(
            system, mode_policy=OracleModePolicy(window=64)
        )
        trace = random_trace(
            64,
            10_000,
            n_blocks=128,
            block_size_words=4,
            write_fraction=0.3,
            locality=0.6,
            seed=5,
        )
        report = run_trace(
            protocol, trace, verify=True, check_invariants_every=1000
        )
        assert report.verified
        assert report.n_references == 10_000
        events = report.stats.events
        # The accounting stays consistent at scale: every miss is
        # classified, and locality still buys a substantial hit count
        # even on this churny any-writer mix.
        assert events["cold_misses"] + events["coherence_misses"] == (
            events["read_misses"] + events["write_misses"]
        )
        assert events["read_hits"] > 1000

    def test_every_node_participates_at_scale(self):
        system = System(
            SystemConfig(n_nodes=32, cache_entries=4, block_size_words=2)
        )
        protocol = StenstromProtocol(
            system, default_mode=Mode.DISTRIBUTED_WRITE
        )
        trace = random_trace(
            32, 6000, n_blocks=48, block_size_words=2, seed=6
        )
        run_trace(protocol, trace, verify=True, check_invariants_every=500)
        touched = sum(
            1
            for cache in system.caches
            if any(entry.occupied for entry in cache.iter_entries())
        )
        assert touched == 32
