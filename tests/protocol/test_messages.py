"""Unit tests for the protocol message size model."""

import pytest

from repro.cache.state import StateField
from repro.errors import ConfigurationError
from repro.protocol.messages import MessageCosts, MsgKind


class TestComponentModel:
    def test_request_is_control_plus_address(self):
        costs = MessageCosts(control_bits=4, address_bits=16, word_bits=32)
        assert costs.request() == 20

    def test_word_data_adds_a_word(self):
        costs = MessageCosts(control_bits=4, address_bits=16, word_bits=32)
        assert costs.word_data() == 52

    def test_block_data_scales_with_block_size(self):
        costs = MessageCosts(control_bits=4, address_bits=16, word_bits=32)
        assert costs.block_data(4) == 20 + 128
        assert costs.block_data(8) - costs.block_data(4) == 128

    def test_state_field_uses_real_field_width(self):
        costs = MessageCosts(control_bits=4, address_bits=16)
        assert costs.state_field(64) == 20 + StateField.size_bits(64)

    def test_block_and_state_is_sum_of_payloads(self):
        costs = MessageCosts()
        combined = costs.block_and_state(4, 64)
        assert combined == costs.block_data(4) + StateField.size_bits(64)

    def test_owner_id_uses_log2_n(self):
        costs = MessageCosts(control_bits=4, address_bits=16)
        assert costs.owner_id(64) == 20 + 6
        assert costs.owner_id(1024) == 20 + 10

    def test_word_and_owner(self):
        costs = MessageCosts(control_bits=4, address_bits=16, word_bits=16)
        assert costs.word_and_owner(256) == 4 + 16 + 16 + 8

    def test_bad_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageCosts().block_data(0)

    def test_negative_field_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageCosts(word_bits=-1)


class TestUniformModel:
    def test_every_message_has_the_same_size(self):
        costs = MessageCosts.uniform(20)
        assert costs.request() == 20
        assert costs.word_data() == 20
        assert costs.block_data(16) == 20
        assert costs.state_field(1024) == 20
        assert costs.block_and_state(16, 1024) == 20
        assert costs.owner_id(1024) == 20
        assert costs.word_and_owner(1024) == 20
        assert costs.ack() == 20

    def test_negative_uniform_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageCosts.uniform(-5)


class TestMsgKind:
    def test_values_are_unique(self):
        values = [kind.value for kind in MsgKind]
        assert len(values) == len(set(values))

    def test_str_is_the_ledger_key(self):
        assert str(MsgKind.WRITE_UPDATE) == "write_update"
