"""Scenario tests for §2.2 item 5 (block replacement) and items 6/7
(mode switching)."""

from repro.cache.state import CacheState, Mode
from repro.protocol.messages import MsgKind

from tests.protocol.conftest import (
    addr,
    build,
    field_of,
    messages,
    state_of,
)


class TestReplaceExclusiveOwner:
    """§2.2 item 5(a)."""

    def test_clean_exclusive_notifies_memory(self):
        system, protocol = build()
        protocol.read(0, addr(3))  # Owned Exclusively GR, clean
        protocol.evict(0, 3)
        assert messages(protocol, MsgKind.REPLACE_NOTIFY) == 1
        assert messages(protocol, MsgKind.WRITEBACK) == 0
        assert system.memory_for(3).block_store.owner_of(3) is None
        assert system.caches[0].find(3) is None

    def test_modified_exclusive_writes_back(self):
        system, protocol = build()
        protocol.write(0, addr(3, 1), 55)
        protocol.evict(0, 3)
        assert messages(protocol, MsgKind.WRITEBACK) == 1
        assert system.memory_for(3).read_block(3) == [0, 55]
        assert system.memory_for(3).block_store.owner_of(3) is None

    def test_written_back_data_survives_a_reload(self):
        system, protocol = build()
        protocol.write(0, addr(3, 0), 9)
        protocol.evict(0, 3)
        assert protocol.read(1, addr(3, 0)) == 9


class TestReplaceNonExclusiveOwner:
    """§2.2 item 5(b): ownership hand-off."""

    def test_dw_owner_hands_off_to_a_copy_holder(self, dw_setup):
        system, protocol = dw_setup
        protocol.evict(0, 0)
        new_owner = system.memory_for(0).block_store.owner_of(0)
        assert new_owner in (1, 2)
        assert state_of(system, new_owner, 0).is_owned
        assert system.caches[0].find(0) is None
        # The departing cache left the new owner's present vector.
        assert 0 not in field_of(system, new_owner, 0).present

    def test_dw_handoff_messages(self, dw_setup):
        system, protocol = dw_setup
        protocol.evict(0, 0)
        assert messages(protocol, MsgKind.XFER_OFFER) == 1
        assert messages(protocol, MsgKind.ACK) == 1
        assert messages(protocol, MsgKind.STATE_XFER) == 1

    def test_dw_handoff_preserves_data_and_modified(self, dw_setup):
        system, protocol = dw_setup
        protocol.evict(0, 0)
        new_owner = system.memory_for(0).block_store.owner_of(0)
        assert field_of(system, new_owner, 0).modified
        assert protocol.read(new_owner, addr(0)) == 10

    def test_gr_owner_hands_off_with_data(self, gr_setup):
        system, protocol = gr_setup
        protocol.evict(0, 0)
        new_owner = system.memory_for(0).block_store.owner_of(0)
        assert new_owner in (1, 2)
        assert messages(protocol, MsgKind.DATA_STATE_XFER) == 1
        assert state_of(system, new_owner, 0).is_owned
        assert protocol.read(new_owner, addr(0)) == 10

    def test_gr_handoff_keeps_readers_working(self, gr_setup):
        system, protocol = gr_setup
        protocol.evict(0, 0)
        # Every other node can still read the value remotely.
        for node in (3, 4, 5):
            assert protocol.read(node, addr(0)) == 10
        protocol.check_invariants()

    def test_handoff_with_all_candidates_gone_falls_back(self, dw_setup):
        system, protocol = dw_setup
        # Break the candidates behind the protocol's back: both copy
        # holders lose their entries (as if replaced concurrently).
        system.caches[1].drop(0)
        system.caches[2].drop(0)
        protocol.evict(0, 0)
        assert messages(protocol, MsgKind.NAK) == 2
        # Fallback: retire as exclusive (modified -> write-back).
        assert messages(protocol, MsgKind.WRITEBACK) == 1
        assert system.memory_for(0).block_store.owner_of(0) is None


class TestReplaceUnOwnedAndPlaceholder:
    """§2.2 item 5(c)."""

    def test_unowned_copy_clears_present_flag(self, dw_setup):
        system, protocol = dw_setup
        protocol.evict(1, 0)
        assert 1 not in field_of(system, 0, 0).present
        assert messages(protocol, MsgKind.REPLACE_NOTIFY) == 1
        assert messages(protocol, MsgKind.PRESENT_CLEAR) == 1
        protocol.check_invariants()

    def test_placeholder_clears_present_flag(self, gr_setup):
        system, protocol = gr_setup
        protocol.evict(1, 0)
        assert 1 not in field_of(system, 0, 0).present
        protocol.check_invariants()

    def test_owner_becomes_exclusive_when_last_copy_leaves(self, dw_setup):
        system, protocol = dw_setup
        protocol.evict(1, 0)
        protocol.evict(2, 0)
        assert state_of(system, 0, 0) is CacheState.OWNED_EXCLUSIVE_DW


class TestReplacementThroughCapacity:
    """Replacement triggered by the reference stream, not evict()."""

    def test_capacity_eviction_runs_the_protocol(self):
        system, protocol = build(cache_entries=2)
        protocol.write(0, addr(0), 1)
        protocol.write(0, addr(1), 2)
        protocol.write(0, addr(2), 3)  # evicts one of the first two
        assert protocol.stats.events["replacements"] == 1
        assert protocol.stats.events["writebacks"] == 1
        protocol.check_invariants()

    def test_data_survives_capacity_churn(self):
        system, protocol = build(cache_entries=2)
        for block in range(6):
            protocol.write(0, addr(block), block + 100)
        for block in range(6):
            assert protocol.read(0, addr(block)) == block + 100
        protocol.check_invariants()


class TestModeSwitching:
    """§2.2 items 6 and 7."""

    def test_switch_to_gr_invalidates_copies(self, dw_setup):
        system, protocol = dw_setup
        protocol.set_mode(0, 0, Mode.GLOBAL_READ)
        assert state_of(system, 0, 0) is CacheState.OWNED_NONEXCLUSIVE_GR
        for node in (1, 2):
            assert state_of(system, node, 0) is CacheState.INVALID
            assert field_of(system, node, 0).owner == 0
        assert messages(protocol, MsgKind.INVALIDATE) == 1
        assert protocol.stats.events["invalidations"] == 2
        protocol.check_invariants()

    def test_switch_to_gr_keeps_present_vector(self, dw_setup):
        system, protocol = dw_setup
        protocol.set_mode(0, 0, Mode.GLOBAL_READ)
        assert field_of(system, 0, 0).present == {0, 1, 2}

    def test_reads_still_correct_after_switch_to_gr(self, dw_setup):
        system, protocol = dw_setup
        protocol.set_mode(0, 0, Mode.GLOBAL_READ)
        for node in (1, 2, 3):
            assert protocol.read(node, addr(0)) == 10

    def test_switch_to_dw_resets_present_vector(self, gr_setup):
        system, protocol = gr_setup
        protocol.set_mode(0, 0, Mode.DISTRIBUTED_WRITE)
        assert field_of(system, 0, 0).present == {0}
        assert state_of(system, 0, 0) is CacheState.OWNED_EXCLUSIVE_DW
        protocol.check_invariants()

    def test_reads_after_switch_to_dw_create_copies(self, gr_setup):
        system, protocol = gr_setup
        protocol.set_mode(0, 0, Mode.DISTRIBUTED_WRITE)
        assert protocol.read(1, addr(0)) == 10
        assert state_of(system, 1, 0) is CacheState.UNOWNED
        protocol.check_invariants()

    def test_set_mode_is_idempotent(self, dw_setup):
        system, protocol = dw_setup
        switches = protocol.stats.events["mode_switches"]
        protocol.set_mode(0, 0, Mode.DISTRIBUTED_WRITE)
        assert protocol.stats.events["mode_switches"] == switches

    def test_set_mode_by_unowned_holder_acquires_ownership(self, dw_setup):
        system, protocol = dw_setup
        protocol.set_mode(1, 0, Mode.GLOBAL_READ)
        assert system.memory_for(0).block_store.owner_of(0) == 1
        assert state_of(system, 1, 0) is CacheState.OWNED_NONEXCLUSIVE_GR
        protocol.check_invariants()

    def test_set_mode_by_stranger_acquires_block(self):
        system, protocol = build()
        protocol.write(0, addr(0), 5)
        protocol.set_mode(6, 0, Mode.DISTRIBUTED_WRITE)
        assert system.memory_for(0).block_store.owner_of(0) == 6
        assert protocol.read(6, addr(0)) == 5
        protocol.check_invariants()

    def test_mode_of_reports_current_mode(self, dw_setup):
        system, protocol = dw_setup
        assert protocol.mode_of(0) is Mode.DISTRIBUTED_WRITE
        protocol.set_mode(0, 0, Mode.GLOBAL_READ)
        assert protocol.mode_of(0) is Mode.GLOBAL_READ
        assert protocol.mode_of(999) is None


class TestStalePlaceholderForwarding:
    """The lazy repair documented in the module docstring: placeholders
    orphaned by mode switches follow the OWNER-field chain."""

    def test_forwarding_chain_reaches_new_owner(self, gr_setup):
        system, protocol = gr_setup
        # Node 1 and 2 hold placeholders pointing at node 0.  Switch the
        # block to DW (dropping them from the vector), then move ownership
        # to node 5 via a write miss.
        protocol.set_mode(0, 0, Mode.DISTRIBUTED_WRITE)
        protocol.write(5, addr(0), 33)
        # Node 1's placeholder still points at node 0, which is now only
        # an UnOwned copy holder; the request must be forwarded.
        assert protocol.read(1, addr(0)) == 33
        assert messages(protocol, MsgKind.LOAD_FWD) >= 1
        protocol.check_invariants()

    def test_dead_end_falls_back_to_memory(self, gr_setup):
        system, protocol = gr_setup
        protocol.set_mode(0, 0, Mode.DISTRIBUTED_WRITE)
        protocol.write(5, addr(0), 33)
        # Node 0 (the stale target) loses its entry entirely.
        protocol.evict(0, 0)
        before_naks = messages(protocol, MsgKind.NAK)
        assert protocol.read(1, addr(0)) == 33
        assert messages(protocol, MsgKind.NAK) == before_naks + 1
        protocol.check_invariants()
