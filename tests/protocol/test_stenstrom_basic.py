"""Scenario tests for every numbered behaviour of §2.2.

Each test drives the protocol through one case of the specification and
checks the resulting states (Table 1), the bookkeeping (present vectors,
block store) and the messages sent.
"""

from repro.cache.state import CacheState, Mode
from repro.protocol.messages import MsgKind

from tests.protocol.conftest import (
    addr,
    build,
    field_of,
    messages,
    state_of,
    traffic,
)


class TestReadHit:
    """§2.2 item 1: read hits are free."""

    def test_read_hit_costs_nothing(self):
        system, protocol = build()
        protocol.write(0, addr(0), 5)
        before = system.network.total_bits
        assert protocol.read(0, addr(0)) == 5
        assert system.network.total_bits == before
        assert protocol.stats.events["read_hits"] == 1


class TestReadMissNoCopies:
    """§2.2 item 2, copy nonexistent, case (a)."""

    def test_first_load_becomes_owned_exclusive_global_read(self):
        system, protocol = build()
        assert protocol.read(3, addr(7)) == 0
        assert state_of(system, 3, 7) is CacheState.OWNED_EXCLUSIVE_GR
        assert system.memory_for(7).block_store.owner_of(7) == 3

    def test_first_load_in_dw_default_mode(self):
        system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
        protocol.read(3, addr(7))
        assert state_of(system, 3, 7) is CacheState.OWNED_EXCLUSIVE_DW

    def test_messages_are_request_plus_block_reply(self):
        system, protocol = build()
        protocol.read(3, addr(7))
        assert messages(protocol, MsgKind.LOAD_REQ) == 1
        assert messages(protocol, MsgKind.BLOCK_REPLY) == 1
        assert messages(protocol, MsgKind.LOAD_FWD) == 0

    def test_memory_data_is_delivered(self):
        system, protocol = build()
        system.memory_for(7).write_block(7, [11, 22])
        assert protocol.read(3, addr(7, 1)) == 22


class TestReadMissWithOwner:
    """§2.2 item 2, copy nonexistent, case (b)."""

    def test_dw_owner_ships_a_copy(self, dw_setup):
        system, protocol = dw_setup
        protocol.read(4, addr(0))
        assert state_of(system, 4, 0) is CacheState.UNOWNED
        assert state_of(system, 0, 0) is CacheState.OWNED_NONEXCLUSIVE_DW
        assert 4 in field_of(system, 0, 0).present

    def test_dw_requester_learns_owner(self, dw_setup):
        system, protocol = dw_setup
        protocol.read(4, addr(0))
        assert field_of(system, 4, 0).owner == 0

    def test_gr_owner_ships_only_the_datum(self, gr_setup):
        system, protocol = gr_setup
        before = messages(protocol, MsgKind.BLOCK_REPLY)
        assert protocol.read(4, addr(0)) == 10
        assert messages(protocol, MsgKind.BLOCK_REPLY) == before
        assert messages(protocol, MsgKind.WORD_REPLY) >= 1

    def test_gr_requester_keeps_invalid_placeholder(self, gr_setup):
        system, protocol = gr_setup
        protocol.read(4, addr(0))
        assert state_of(system, 4, 0) is CacheState.INVALID
        assert field_of(system, 4, 0).owner == 0
        assert 4 in field_of(system, 0, 0).present

    def test_gr_owner_becomes_nonexclusive(self):
        system, protocol = build()
        protocol.write(0, addr(0), 10)
        assert state_of(system, 0, 0) is CacheState.OWNED_EXCLUSIVE_GR
        protocol.read(1, addr(0))
        assert state_of(system, 0, 0) is CacheState.OWNED_NONEXCLUSIVE_GR

    def test_request_is_forwarded_through_memory(self, gr_setup):
        system, protocol = gr_setup
        before = messages(protocol, MsgKind.LOAD_FWD)
        protocol.read(4, addr(0))
        assert messages(protocol, MsgKind.LOAD_FWD) == before + 1


class TestReadMissInvalidPlaceholder:
    """§2.2 item 2, state = Invalid: bypass directly to the owner."""

    def test_second_gr_read_bypasses_memory(self, gr_setup):
        system, protocol = gr_setup
        load_reqs = messages(protocol, MsgKind.LOAD_REQ)
        assert protocol.read(1, addr(0)) == 10  # placeholder exists
        assert messages(protocol, MsgKind.LOAD_REQ) == load_reqs
        assert messages(protocol, MsgKind.LOAD_DIRECT) == 1

    def test_gr_read_returns_fresh_value_after_owner_write(self, gr_setup):
        system, protocol = gr_setup
        protocol.write(0, addr(0), 77)
        assert protocol.read(1, addr(0)) == 77


class TestWriteHit:
    """§2.2 item 3."""

    def test_exclusive_write_is_local(self):
        system, protocol = build()
        protocol.write(0, addr(0), 1)
        before = system.network.total_bits
        protocol.write(0, addr(0), 2)
        assert system.network.total_bits == before
        assert field_of(system, 0, 0).modified

    def test_nonexclusive_dw_distributes_the_write(self, dw_setup):
        system, protocol = dw_setup
        protocol.write(0, addr(0, 1), 99)
        assert messages(protocol, MsgKind.WRITE_UPDATE) == 1
        for node in (1, 2):
            assert system.caches[node].find(0).read_word(1) == 99

    def test_nonexclusive_gr_write_is_local(self, gr_setup):
        system, protocol = gr_setup
        before = system.network.total_bits
        protocol.write(0, addr(0), 42)
        assert system.network.total_bits == before

    def test_unowned_write_acquires_ownership(self, dw_setup):
        system, protocol = dw_setup
        protocol.write(1, addr(0), 50)  # node 1 holds an UnOwned copy
        assert state_of(system, 1, 0) is CacheState.OWNED_NONEXCLUSIVE_DW
        assert state_of(system, 0, 0) is CacheState.UNOWNED
        assert system.memory_for(0).block_store.owner_of(0) == 1
        assert protocol.stats.events["ownership_transfers"] == 1

    def test_unowned_write_transfers_only_state_in_dw(self, dw_setup):
        system, protocol = dw_setup
        protocol.write(1, addr(0), 50)
        assert messages(protocol, MsgKind.STATE_XFER) == 1
        assert messages(protocol, MsgKind.DATA_STATE_XFER) == 0

    def test_unowned_write_updates_remaining_copies(self, dw_setup):
        system, protocol = dw_setup
        protocol.write(1, addr(0, 0), 50)
        # Old owner 0 and sharer 2 both keep updated copies.
        assert system.caches[0].find(0).read_word(0) == 50
        assert system.caches[2].find(0).read_word(0) == 50
        assert protocol.read(0, addr(0)) == 50

    def test_old_owner_learns_new_owner(self, dw_setup):
        system, protocol = dw_setup
        protocol.write(1, addr(0), 50)
        assert field_of(system, 0, 0).owner == 1


class TestWriteMiss:
    """§2.2 item 4."""

    def test_no_copies_loads_owned_exclusive_gr_and_writes(self):
        system, protocol = build()
        protocol.write(5, addr(9), 123)
        field = field_of(system, 5, 9)
        assert field.owned and field.modified
        assert state_of(system, 5, 9) is CacheState.OWNED_EXCLUSIVE_GR
        assert protocol.read(5, addr(9)) == 123

    def test_write_miss_with_dw_copies_transfers_data_and_state(
        self, dw_setup
    ):
        system, protocol = dw_setup
        protocol.write(5, addr(0), 60)  # node 5 has no copy at all
        assert messages(protocol, MsgKind.DATA_STATE_XFER) == 1
        assert state_of(system, 5, 0) is CacheState.OWNED_NONEXCLUSIVE_DW
        assert state_of(system, 0, 0) is CacheState.UNOWNED
        # The write is then distributed to the surviving copies.
        assert system.caches[1].find(0).read_word(0) == 60

    def test_write_miss_with_gr_copies_repoints_placeholders(
        self, gr_setup
    ):
        system, protocol = gr_setup
        protocol.write(5, addr(0), 60)
        # Old owner invalidated, placeholders repointed at node 5.
        assert state_of(system, 0, 0) is CacheState.INVALID
        assert field_of(system, 0, 0).owner == 5
        assert field_of(system, 1, 0).owner == 5
        assert field_of(system, 2, 0).owner == 5
        assert messages(protocol, MsgKind.OWNER_UPDATE) == 1
        assert protocol.read(1, addr(0)) == 60

    def test_write_miss_on_invalid_placeholder(self, gr_setup):
        system, protocol = gr_setup
        # Node 1 holds a placeholder; its write miss still acquires the
        # block with ownership through the home module.
        protocol.write(1, addr(0), 80)
        assert system.memory_for(0).block_store.owner_of(0) == 1
        assert state_of(system, 1, 0) is CacheState.OWNED_NONEXCLUSIVE_GR
        assert protocol.read(2, addr(0)) == 80


class TestModifiedBitTravelsWithOwnership:
    def test_transfer_preserves_modified(self, dw_setup):
        system, protocol = dw_setup
        assert field_of(system, 0, 0).modified  # node 0 wrote at setup
        protocol.read(1, addr(0))
        protocol.write(1, addr(0), 70)  # ownership moves 0 -> 1
        assert field_of(system, 1, 0).modified
