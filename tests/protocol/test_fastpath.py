"""Tests for the stable-state fast-path table.

Three concerns: the table must only be handed out when the shortcut is
sound (gating), every event that could change a memoised answer must
bump ``fastpath_epoch`` (invalidation), and replaying through the table
must be bit-identical to the slow path (equivalence) -- including under
ownership churn and for the message-bearing global-read records.
"""

import pytest

from repro.cache.state import Mode
from repro.errors import TraceError
from repro.faults.plan import FaultPlan
from repro.obs.hooks import attach_recorder
from repro.obs.recorder import TraceRecorder
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim import stats as ev
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.sim.trace import Trace
from repro.types import Address, Op, Reference
from repro.workloads.markov import markov_block_trace
from repro.workloads.sharing import migratory_trace, ping_pong_trace

from tests.protocol.conftest import build


def compiled(references, n_nodes, block_size_words=2):
    return Trace(references, n_nodes, block_size_words).compile()


class TestGating:
    def test_clean_protocol_offers_a_table(self):
        _, protocol = build()
        table = protocol.fastpath()
        assert table is not None
        assert protocol.fastpath() is table  # memoised, counters persist

    def test_fault_injection_disables_the_table(self):
        system = System(
            SystemConfig(n_nodes=4),
            fault_plan=FaultPlan(drop_probability=0.1, seed=3),
        )
        protocol = StenstromProtocol(system)
        assert system.fault_injector is not None
        assert protocol.fastpath() is None

    def test_recorder_disables_the_table(self):
        _, protocol = build()
        attach_recorder(protocol, TraceRecorder())
        assert protocol.fastpath() is None

    def test_message_log_disables_the_table(self):
        _, protocol = build()
        protocol.enable_message_log()
        assert protocol.fastpath() is None

    def test_engine_skips_table_when_verifying(self):
        _, protocol = build(n_nodes=4)
        trace = compiled([Reference(0, Op.WRITE, Address(0, 0), 1)] * 50, 4)
        run_trace(protocol, trace, verify=True)
        table = protocol.fastpath()
        assert table.hits == table.misses == 0

    def test_engine_skips_table_under_invariant_stride(self):
        _, protocol = build(n_nodes=4)
        trace = compiled([Reference(0, Op.WRITE, Address(0, 0), 1)] * 50, 4)
        run_trace(protocol, trace, verify=False, check_invariants_every=10)
        table = protocol.fastpath()
        assert table.hits == table.misses == 0


class TestEpochInvalidation:
    def test_ownership_transfer_bumps_epoch(self):
        _, protocol = build()
        protocol.write(0, Address(0, 0), 1)
        before = protocol.fastpath_epoch
        protocol.write(1, Address(0, 0), 2)  # node 1 takes ownership
        assert protocol.fastpath_epoch > before

    def test_mode_switch_bumps_epoch_both_ways(self):
        _, protocol = build()
        protocol.write(0, Address(0, 0), 1)
        before = protocol.fastpath_epoch
        protocol.set_mode(0, 0, Mode.DISTRIBUTED_WRITE)
        after_dw = protocol.fastpath_epoch
        assert after_dw > before
        protocol.set_mode(0, 0, Mode.GLOBAL_READ)
        assert protocol.fastpath_epoch > after_dw

    def test_replacement_bumps_epoch(self):
        system, protocol = build(cache_entries=4, associativity=1)
        protocol.write(0, Address(0, 0), 1)
        before = protocol.fastpath_epoch
        # A direct-mapped cache with 4 sets: block 4 maps onto block 0's
        # set and evicts it.
        protocol.write(0, Address(4, 0), 2)
        assert protocol.stats.events[ev.REPLACEMENTS] >= 1
        assert protocol.fastpath_epoch > before

    def test_fault_degradation_bumps_epoch(self):
        _, protocol = build()
        protocol.write(0, Address(0, 0), 1)
        before = protocol.fastpath_epoch
        protocol._degrade_block(0)
        assert protocol.stats.events[ev.FAULT_DEGRADED_BLOCKS] == 1
        assert protocol.fastpath_epoch > before

    def test_stale_record_falls_back_and_re_registers(self):
        n = 4
        _, protocol = build(n_nodes=n)
        table = protocol.fastpath()
        # Warm a write record for node 0, then steal ownership via the
        # slow path: the record's epoch stamp is now stale.
        warm = compiled([Reference(0, Op.WRITE, Address(0, 0), 1)] * 3, n)
        table.replay(warm)
        assert table.hits == 2 and table.misses == 1
        protocol.write(1, Address(0, 0), 9)
        table.replay(warm)  # first row misses (stale), rest hit again
        assert table.misses == 2
        assert table.hits == 4


class TestCounters:
    def test_hits_and_misses_cover_every_reference(self):
        n = 8
        trace = markov_block_trace(
            n,
            tasks=list(range(4)),
            write_fraction=0.3,
            n_references=500,
            seed=5,
            compiled=True,
        )
        _, protocol = build(n_nodes=n, block_size_words=4)
        run_trace(protocol, trace, verify=False, check_invariants_every=0)
        table = protocol.fastpath()
        assert table.hits + table.misses == len(trace)
        assert table.hits > table.misses  # steady state dominates

    def test_counters_accumulate_across_replays(self):
        n = 4
        _, protocol = build(n_nodes=n)
        trace = compiled([Reference(0, Op.WRITE, Address(0, 0), 1)] * 10, n)
        run_trace(protocol, trace, verify=False, check_invariants_every=0)
        table = protocol.fastpath()
        first = (table.hits, table.misses)
        run_trace(protocol, trace, verify=False, check_invariants_every=0)
        assert table.hits > first[0]
        assert table.hits + table.misses == 2 * len(trace)

    def test_malformed_node_raises_through_fast_loop(self):
        _, protocol = build(n_nodes=4)
        # Valid for an 8-node trace, out of range for the 4-node system.
        bad = compiled([Reference(7, Op.READ, Address(0, 0))], 8)
        with pytest.raises(TraceError, match="node"):
            run_trace(protocol, bad, verify=False, check_invariants_every=0)


def _fresh_reports(references, n_nodes, *, default_mode=Mode.GLOBAL_READ):
    """(fast-path report, slow-path report) from identical fresh systems."""
    reports = []
    for form in (
        compiled(references, n_nodes),
        list(references),
    ):
        _, protocol = build(n_nodes=n_nodes, default_mode=default_mode)
        reports.append(
            run_trace(protocol, form, verify=False, check_invariants_every=0)
        )
    return reports


class TestEquivalence:
    def test_ownership_churn_matches_slow_path(self):
        # Ping-pong plus migratory sharing: records go stale constantly.
        n = 8
        references = list(
            ping_pong_trace(n, first=0, second=1, n_rounds=30)
        ) + list(migratory_trace(n, tasks=[2, 3, 4], n_rounds=20))
        fast, slow = _fresh_reports(references, n)
        assert fast.to_dict() == slow.to_dict()

    def test_global_read_records_match_slow_path(self):
        # One writer, many repeat readers: the steady state is the
        # message-bearing global-read record (two unicasts per read).
        n = 8
        references = [Reference(0, Op.WRITE, Address(0, 0), 7)]
        for _ in range(40):
            for reader in (1, 2, 3):
                references.append(Reference(reader, Op.READ, Address(0, 0)))
        fast, slow = _fresh_reports(references, n)
        assert fast.to_dict() == slow.to_dict()
        assert fast.stats.events[ev.GLOBAL_READS] > 100

    def test_distributed_write_mode_matches_slow_path(self):
        n = 8
        references = []
        for round_no in range(25):
            references.append(
                Reference(0, Op.WRITE, Address(0, 0), round_no)
            )
            references.append(Reference(1, Op.READ, Address(0, 0)))
            references.append(Reference(2, Op.READ, Address(0, 0)))
        fast, slow = _fresh_reports(
            references, n, default_mode=Mode.DISTRIBUTED_WRITE
        )
        assert fast.to_dict() == slow.to_dict()

    def test_partial_replay_flushes_exactly_on_error(self):
        # A malformed row mid-trace aborts the replay; the finally-flush
        # must still account for every reference replayed before it, so
        # the two loops agree on everything up to the bad row.
        n = 4
        good = [Reference(0, Op.WRITE, Address(0, 0), 1)] * 10
        bad_tail = compiled(good, 8)[0:11]
        bad_tail.nodes.append(7)  # out of range for the 4-node system
        bad_tail.ops.append(0)
        bad_tail.blocks.append(0)
        bad_tail.offsets.append(0)
        bad_tail.values.append(0)
        _, fast_protocol = build(n_nodes=n)
        with pytest.raises(TraceError):
            run_trace(
                fast_protocol,
                bad_tail,
                verify=False,
                check_invariants_every=0,
            )
        _, slow_protocol = build(n_nodes=n)
        for ref in good:
            slow_protocol.write(ref.node, ref.address, ref.value)
        assert dict(fast_protocol.stats.events) == dict(
            slow_protocol.stats.events
        )
