"""Tests for cold- vs coherence-miss accounting."""

from repro.cache.state import Mode

from tests.protocol.conftest import addr, build


class TestMissClassification:
    def test_first_touch_is_cold(self):
        system, protocol = build()
        protocol.read(0, addr(0))
        assert protocol.stats.events["cold_misses"] == 1
        assert protocol.stats.events.get("coherence_misses", 0) == 0

    def test_second_cache_miss_is_coherence(self):
        system, protocol = build()
        protocol.read(0, addr(0))
        protocol.read(1, addr(0))
        assert protocol.stats.events["cold_misses"] == 1
        assert protocol.stats.events["coherence_misses"] == 1

    def test_gr_placeholder_remisses_are_coherence(self, gr_setup):
        system, protocol = gr_setup
        before = protocol.stats.events["coherence_misses"]
        protocol.read(1, addr(0))  # placeholder -> direct to owner
        assert protocol.stats.events["coherence_misses"] == before + 1

    def test_write_miss_classified_too(self):
        system, protocol = build()
        protocol.write(0, addr(0), 1)  # cold
        protocol.write(5, addr(0), 2)  # coherence (ownership transfer)
        assert protocol.stats.events["cold_misses"] == 1
        assert protocol.stats.events["coherence_misses"] == 1

    def test_classes_partition_the_misses(self):
        from repro.sim.engine import run_trace
        from repro.workloads.synthetic import random_trace

        system, protocol = build(
            default_mode=Mode.DISTRIBUTED_WRITE, cache_entries=2
        )
        trace = random_trace(
            8, 600, n_blocks=12, block_size_words=2, seed=9
        )
        report = run_trace(protocol, trace, verify=True)
        events = report.stats.events
        assert events["cold_misses"] + events["coherence_misses"] == (
            events["read_misses"] + events["write_misses"]
        )

    def test_reload_after_total_eviction_is_cold_again(self):
        system, protocol = build()
        protocol.read(0, addr(0))
        protocol.evict(0, 0)  # block store cleared: block uncached
        protocol.read(0, addr(0))
        assert protocol.stats.events["cold_misses"] == 2
