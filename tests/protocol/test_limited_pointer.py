"""Scenario and property tests for the limited-pointer directory."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.protocol.full_map import FullMapProtocol
from repro.protocol.limited_pointer import LimitedPointerProtocol
from repro.protocol.messages import MsgKind
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.types import Address
from repro.workloads.synthetic import random_trace


def build(n_pointers=2, n_nodes=8, cache_entries=4):
    system = System(
        SystemConfig(
            n_nodes=n_nodes,
            cache_entries=cache_entries,
            block_size_words=2,
        )
    )
    return system, LimitedPointerProtocol(system, n_pointers=n_pointers)


def addr(block, offset=0):
    return Address(block, offset)


class TestPointerTracking:
    def test_few_sharers_tracked_exactly(self):
        system, protocol = build(n_pointers=2)
        protocol.read(0, addr(0))
        protocol.read(1, addr(0))
        pointers, broadcast = protocol.directory_state(0)
        assert pointers == {0, 1}
        assert not broadcast

    def test_overflow_flips_to_broadcast(self):
        system, protocol = build(n_pointers=2)
        for node in (0, 1, 2):
            protocol.read(node, addr(0))
        pointers, broadcast = protocol.directory_state(0)
        assert broadcast
        assert pointers == frozenset()
        assert protocol.stats.events["directory_overflows"] == 1

    def test_write_resets_to_one_pointer(self):
        system, protocol = build(n_pointers=2)
        for node in (0, 1, 2):
            protocol.read(node, addr(0))
        protocol.write(0, addr(0), 5)
        pointers, broadcast = protocol.directory_state(0)
        assert pointers == {0}
        assert not broadcast
        protocol.check_invariants()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build(n_pointers=0)


class TestBroadcastPenalty:
    def test_overflowed_write_invalidates_everyone(self):
        system, protocol = build(n_pointers=1, n_nodes=8)
        for node in (0, 1):
            protocol.read(node, addr(0))  # overflow at the second
        protocol.write(0, addr(0), 7)
        # The broadcast invalidation addressed all 7 other caches even
        # though only cache 1 held a copy.
        result_messages = protocol.stats.traffic_messages[
            MsgKind.DIR_INVALIDATE.value
        ]
        assert result_messages == 1  # one multicast...
        assert protocol.stats.events["invalidations"] == 1  # ...one victim

    def test_broadcast_costs_more_than_full_map(self):
        trace_sharers = list(range(6))

        def cost(protocol_factory):
            system = System(
                SystemConfig(n_nodes=16, block_size_words=2)
            )
            protocol = protocol_factory(system)
            for node in trace_sharers:
                protocol.read(node, addr(0))
            protocol.write(0, addr(0), 1)
            return system.network.total_bits

        limited = cost(
            lambda system: LimitedPointerProtocol(system, n_pointers=2)
        )
        full = cost(FullMapProtocol)
        assert limited > full


class TestCoherence:
    def test_values_flow_correctly(self):
        system, protocol = build(n_pointers=1)
        protocol.write(0, addr(0), 42)
        assert protocol.read(5, addr(0)) == 42
        protocol.write(5, addr(0), 43)
        assert protocol.read(2, addr(0)) == 43
        protocol.check_invariants()

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 1000),
        n_pointers=st.sampled_from([1, 2, 4]),
    )
    def test_random_traces_verify(self, seed, n_pointers):
        system, protocol = build(n_pointers=n_pointers)
        trace = random_trace(
            8, 150, n_blocks=6, block_size_words=2,
            write_fraction=0.35, seed=seed,
        )
        report = run_trace(protocol, trace, verify=True)
        assert report.verified

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_observes_same_values_as_full_map(self, seed):
        trace = random_trace(
            8, 120, n_blocks=5, block_size_words=2,
            write_fraction=0.4, seed=seed,
        )
        observations = []
        for factory in (
            lambda s: LimitedPointerProtocol(s, n_pointers=1),
            FullMapProtocol,
        ):
            system = System(
                SystemConfig(
                    n_nodes=8, cache_entries=4, block_size_words=2
                )
            )
            protocol = factory(system)
            values = []
            for ref in trace:
                if ref.is_write:
                    protocol.write(ref.node, ref.address, ref.value)
                else:
                    values.append(protocol.read(ref.node, ref.address))
            observations.append(values)
        assert observations[0] == observations[1]
