"""Unit tests for the §4 analytic cost model (eqs. 9-12, Figure 7/8)."""

import pytest

from repro.errors import ConfigurationError
from repro.network import cost as netcost
from repro.protocol import costs


class TestAbsoluteCosts:
    def test_eq9_no_cache(self):
        unit = costs.one_traversal(1024, 20)
        assert costs.cc_no_cache(0.0, 1024, 20) == 2 * unit
        assert costs.cc_no_cache(1.0, 1024, 20) == unit
        assert costs.cc_no_cache(0.5, 1024, 20) == pytest.approx(1.5 * unit)

    def test_eq10_write_once_uses_combined_multicast(self):
        w, n, n1 = 0.3, 16, 128
        expected = w * (1 - w) * (
            netcost.cc_combined(n, n1, 1024, 20)
            + 2 * costs.one_traversal(1024, 20)
        )
        assert costs.cc_write_once(w, n, n1, 1024, 20) == pytest.approx(
            expected
        )

    def test_eq10_bound_dominates(self):
        """The paper's bound w(1-w)(n+2)CC1 upper-bounds the exact eq. 10."""
        for w in (0.1, 0.3, 0.7):
            for n in (2, 8, 64):
                exact = costs.cc_write_once(w, n, 128, 1024, 20)
                bound = costs.cc_write_once_bound(w, n, 1024, 20)
                assert exact <= bound + 1e-9

    def test_eq11_distributed_write(self):
        assert costs.cc_distributed_write(0.0, 8, 128, 1024, 20) == 0
        assert costs.cc_distributed_write(
            0.5, 8, 128, 1024, 20
        ) == pytest.approx(0.5 * netcost.cc_combined(8, 128, 1024, 20))

    def test_eq12_global_read(self):
        unit = costs.one_traversal(1024, 20)
        assert costs.cc_global_read(0.0, 1024, 20) == 2 * unit
        assert costs.cc_global_read(1.0, 1024, 20) == 0

    def test_two_mode_is_min_of_modes(self):
        for w in (0.05, 0.2, 0.9):
            assert costs.cc_two_mode(w, 8, 128, 1024, 20) == min(
                costs.cc_distributed_write(w, 8, 128, 1024, 20),
                costs.cc_global_read(w, 1024, 20),
            )

    def test_write_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            costs.cc_no_cache(1.5, 64, 20)
        with pytest.raises(ConfigurationError):
            costs.cc_global_read(-0.1, 64, 20)


class TestNormalizedCurves:
    def test_figure8_endpoints(self):
        assert costs.normalized_no_cache(0.0) == 2.0
        assert costs.normalized_no_cache(1.0) == 1.0
        assert costs.normalized_write_once(0.0, 16) == 0.0
        assert costs.normalized_write_once(1.0, 16) == 0.0
        assert costs.normalized_two_mode(0.0, 16) == 0.0
        assert costs.normalized_two_mode(1.0, 16) == 0.0

    def test_write_once_peaks_at_half(self):
        n = 16
        peak = costs.normalized_write_once(0.5, n)
        assert peak == (n + 2) / 4
        for w in (0.2, 0.4, 0.6, 0.8):
            assert costs.normalized_write_once(w, n) <= peak

    def test_two_mode_peak_value_and_location(self):
        from repro.protocol.modes import write_fraction_threshold

        for n in (2, 4, 16, 64):
            w1 = write_fraction_threshold(n)
            peak = costs.two_mode_peak(n)
            assert costs.normalized_two_mode(w1, n) == pytest.approx(peak)
            for w in (0.01, 0.3, 0.77, 0.99):
                assert costs.normalized_two_mode(w, n) <= peak + 1e-9


class TestPaperSection4Claims:
    """The two claims proved at the end of §4: with the w1 threshold the
    two-mode cost never exceeds (a) the uncached cost, nor (b) the
    write-once cost."""

    W_GRID = [i / 50 for i in range(51)]
    N_VALUES = [1, 2, 4, 8, 16, 64, 256]

    def test_two_mode_never_exceeds_no_cache(self):
        for n in self.N_VALUES:
            for w in self.W_GRID:
                assert costs.normalized_two_mode(
                    w, n
                ) <= costs.normalized_no_cache(w)

    def test_two_mode_never_exceeds_write_once(self):
        # The curves touch exactly at w1 = 2/(n+2) (both equal 2n/(n+2))
        # and the two-mode curve is below everywhere else.
        for n in self.N_VALUES:
            for w in self.W_GRID:
                assert (
                    costs.normalized_two_mode(w, n)
                    <= costs.normalized_write_once(w, n) + 1e-12
                )

    def test_two_mode_upper_bound_is_below_two(self):
        """The §5 point: the two-mode upper bound 2n/(n+2) < 2 = the
        uncached worst case, for every n."""
        for n in self.N_VALUES:
            assert costs.two_mode_peak(n) < 2.0

    def test_write_once_can_be_much_worse_than_no_cache(self):
        """§5: 'write-once and distributed write can result in huge
        network traffic' -- at w = 0.5 with many sharers."""
        assert costs.normalized_write_once(0.5, 64) > 10 * (
            costs.normalized_no_cache(0.5)
        )


class TestWriteOnceChain:
    def test_stationary_distribution(self):
        chain = costs.WriteOnceChain(0.3)
        exclusive, shared = chain.stationary()
        assert exclusive == pytest.approx(0.3)
        assert shared == pytest.approx(0.7)

    def test_transition_rate(self):
        assert costs.WriteOnceChain(0.25).transition_rate() == (
            pytest.approx(0.1875)
        )

    def test_monte_carlo_matches_analytic_rate(self):
        chain = costs.WriteOnceChain(0.3)
        steps = 200_000
        to_exclusive, to_shared = chain.simulate(steps, seed=11)
        rate = chain.transition_rate()
        assert to_exclusive / steps == pytest.approx(rate, rel=0.05)
        assert to_shared / steps == pytest.approx(rate, rel=0.05)

    def test_transitions_balance(self):
        to_exclusive, to_shared = costs.WriteOnceChain(0.5).simulate(
            10_000, seed=3
        )
        assert abs(to_exclusive - to_shared) <= 1

    def test_degenerate_chains_never_transition(self):
        assert costs.WriteOnceChain(0.0).simulate(1000)[0] == 0
        assert costs.WriteOnceChain(1.0).simulate(1000)[1] <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            costs.WriteOnceChain(1.2)
        with pytest.raises(ConfigurationError):
            costs.WriteOnceChain(0.5).simulate(0)
