"""Unit tests for the §4 threshold and the mode-selection policies."""

import pytest

from repro.cache.state import Mode
from repro.errors import ConfigurationError
from repro.protocol.modes import (
    AdaptiveModePolicy,
    OracleModePolicy,
    StaticModePolicy,
    write_fraction_threshold,
)
from repro.types import Op


class TestThreshold:
    def test_formula(self):
        assert write_fraction_threshold(2) == 0.5
        assert write_fraction_threshold(6) == 0.25
        assert write_fraction_threshold(0) == 1.0

    def test_decreases_with_sharers(self):
        values = [write_fraction_threshold(n) for n in (2, 4, 8, 64)]
        assert values == sorted(values, reverse=True)

    def test_negative_sharers_rejected(self):
        with pytest.raises(ConfigurationError):
            write_fraction_threshold(-1)

    def test_threshold_is_the_crossover_of_the_normalized_curves(self):
        from repro.protocol.costs import (
            normalized_distributed_write,
            normalized_global_read,
        )

        for n in (2, 4, 16, 64):
            w1 = write_fraction_threshold(n)
            assert normalized_distributed_write(
                w1, n
            ) == pytest.approx(normalized_global_read(w1))


class TestStaticPolicy:
    def test_pins_to_requested_mode(self):
        policy = StaticModePolicy(Mode.DISTRIBUTED_WRITE)
        assert (
            policy.decide(0, Mode.GLOBAL_READ, 4)
            is Mode.DISTRIBUTED_WRITE
        )
        assert policy.decide(0, Mode.DISTRIBUTED_WRITE, 4) is None


def feed(policy, block, n_writes, n_reads, *, mode, n_sharers):
    for _ in range(n_writes):
        policy.observe(
            block, Op.WRITE, owner_visible=True, mode=mode,
            n_sharers=n_sharers,
        )
    for _ in range(n_reads):
        policy.observe(
            block, Op.READ, owner_visible=True, mode=mode,
            n_sharers=n_sharers,
        )


class TestOraclePolicy:
    def test_no_decision_before_window_fills(self):
        policy = OracleModePolicy(window=16)
        feed(policy, 0, 2, 2, mode=Mode.GLOBAL_READ, n_sharers=4)
        assert policy.decide(0, Mode.GLOBAL_READ, 4) is None

    def test_read_heavy_block_goes_distributed_write(self):
        policy = OracleModePolicy(window=8)
        feed(policy, 0, 0, 8, mode=Mode.GLOBAL_READ, n_sharers=4)
        assert (
            policy.decide(0, Mode.GLOBAL_READ, 4)
            is Mode.DISTRIBUTED_WRITE
        )

    def test_write_heavy_block_goes_global_read(self):
        policy = OracleModePolicy(window=8)
        feed(policy, 0, 8, 0, mode=Mode.DISTRIBUTED_WRITE, n_sharers=4)
        assert (
            policy.decide(0, Mode.DISTRIBUTED_WRITE, 4)
            is Mode.GLOBAL_READ
        )

    def test_threshold_boundary_uses_w1(self):
        # n = 6 -> w1 = 0.25.  w exactly at the threshold stays DW.
        policy = OracleModePolicy(window=8)
        feed(policy, 0, 2, 6, mode=Mode.DISTRIBUTED_WRITE, n_sharers=6)
        assert policy.decide(0, Mode.DISTRIBUTED_WRITE, 6) is None

    def test_counters_reset_after_decision(self):
        policy = OracleModePolicy(window=4)
        feed(policy, 0, 4, 0, mode=Mode.DISTRIBUTED_WRITE, n_sharers=4)
        assert policy.decide(0, Mode.DISTRIBUTED_WRITE, 4) is not None
        # Fresh window: no decision until it fills again.
        assert policy.decide(0, Mode.GLOBAL_READ, 4) is None

    def test_blocks_are_independent(self):
        policy = OracleModePolicy(window=4)
        feed(policy, 0, 4, 0, mode=Mode.DISTRIBUTED_WRITE, n_sharers=4)
        assert policy.decide(1, Mode.DISTRIBUTED_WRITE, 4) is None

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            OracleModePolicy(window=1)


class TestAdaptivePolicy:
    def test_ignores_invisible_references(self):
        policy = AdaptiveModePolicy(window=4)
        for _ in range(10):
            policy.observe(
                0, Op.READ, owner_visible=False,
                mode=Mode.DISTRIBUTED_WRITE, n_sharers=4,
            )
        assert policy.decide(0, Mode.DISTRIBUTED_WRITE, 4) is None

    def test_gr_mode_measures_w_exactly(self):
        policy = AdaptiveModePolicy(window=8)
        feed(policy, 0, 1, 7, mode=Mode.GLOBAL_READ, n_sharers=4)
        # w = 1/8 < w1 = 1/3: switch to DW.
        assert (
            policy.decide(0, Mode.GLOBAL_READ, 4)
            is Mode.DISTRIBUTED_WRITE
        )

    def test_dw_mode_overestimates_w(self):
        # Owner sees 4 writes and 4 of its own reads: estimate w = 0.5,
        # above w1 = 1/3 for n=4 -> switches to GR even though the true
        # w (with invisible remote reads) might be lower.  This is the
        # documented bias of the §5 counter scheme.
        policy = AdaptiveModePolicy(window=8)
        feed(policy, 0, 4, 4, mode=Mode.DISTRIBUTED_WRITE, n_sharers=4)
        assert (
            policy.decide(0, Mode.DISTRIBUTED_WRITE, 4)
            is Mode.GLOBAL_READ
        )
