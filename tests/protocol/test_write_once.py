"""Scenario tests for the directory-adapted write-once protocol."""

import pytest

from repro.protocol.messages import MsgKind
from repro.protocol.write_once import (
    WriteOnceProtocol,
    WriteOnceState,
    decode_state,
)
from repro.sim.system import System, SystemConfig
from repro.types import Address


def build(n_nodes=8, cache_entries=4, block_size_words=2):
    system = System(
        SystemConfig(
            n_nodes=n_nodes,
            cache_entries=cache_entries,
            block_size_words=block_size_words,
        )
    )
    return system, WriteOnceProtocol(system)


def addr(block, offset=0):
    return Address(block, offset)


def state(system, node, block):
    return decode_state(system.caches[node].find(block))


class TestGoodmanStates:
    def test_read_miss_loads_valid(self):
        system, protocol = build()
        assert protocol.read(0, addr(0)) == 0
        assert state(system, 0, 0) is WriteOnceState.VALID

    def test_first_write_goes_reserved_and_writes_through(self):
        system, protocol = build()
        protocol.read(0, addr(0))
        protocol.write(0, addr(0), 7)
        assert state(system, 0, 0) is WriteOnceState.RESERVED
        # Memory got the word (the defining write-through).
        assert system.memory_for(0).read_word(0, 0) == 7
        assert (
            protocol.stats.traffic_messages[
                MsgKind.DIR_WRITE_THROUGH.value
            ]
            == 1
        )

    def test_second_write_goes_dirty_locally(self):
        system, protocol = build()
        protocol.read(0, addr(0))
        protocol.write(0, addr(0), 7)
        bits = system.network.total_bits
        protocol.write(0, addr(0), 8)
        assert state(system, 0, 0) is WriteOnceState.DIRTY
        assert system.network.total_bits == bits  # local
        # Memory is now stale until write-back.
        assert system.memory_for(0).read_word(0, 0) == 7

    def test_write_miss_goes_straight_to_dirty(self):
        system, protocol = build()
        protocol.write(0, addr(0), 9)
        assert state(system, 0, 0) is WriteOnceState.DIRTY


class TestInvalidation:
    def test_first_write_invalidates_other_copies(self):
        system, protocol = build()
        for node in (0, 1, 2):
            protocol.read(node, addr(0))
        protocol.write(0, addr(0), 5)
        assert state(system, 1, 0) is WriteOnceState.INVALID
        assert state(system, 2, 0) is WriteOnceState.INVALID
        assert protocol.stats.events["invalidations"] == 2
        assert protocol.directory_sharers(0) == {0}

    def test_invalidated_reader_refetches_current_value(self):
        system, protocol = build()
        protocol.read(1, addr(0))
        protocol.write(0, addr(0), 5)
        assert protocol.read(1, addr(0)) == 5


class TestDirtyRecall:
    def test_read_miss_recalls_dirty_block(self):
        system, protocol = build()
        protocol.write(0, addr(0), 5)
        protocol.write(0, addr(0), 6)  # dirty at node 0
        assert protocol.read(1, addr(0)) == 6
        assert (
            protocol.stats.traffic_messages[MsgKind.DIR_RECALL.value] == 1
        )
        # The recalled holder is downgraded and memory refreshed.
        assert state(system, 0, 0) is WriteOnceState.VALID
        assert system.memory_for(0).read_word(0, 0) == 6

    def test_reserved_holder_recalled_conservatively(self):
        system, protocol = build()
        protocol.read(0, addr(0))
        protocol.write(0, addr(0), 5)  # reserved (memory current)
        protocol.read(1, addr(0))
        # The directory cannot see Reserved vs Dirty: it recalls anyway.
        assert (
            protocol.stats.traffic_messages[MsgKind.DIR_RECALL.value] == 1
        )


class TestReplacement:
    def test_dirty_replacement_writes_back(self):
        system, protocol = build(cache_entries=1)
        protocol.write(0, addr(0), 5)
        protocol.write(0, addr(0), 6)
        protocol.read(0, addr(1))  # evicts dirty block 0
        assert protocol.stats.events["writebacks"] == 1
        assert system.memory_for(0).read_word(0, 0) == 6
        assert protocol.directory_sharers(0) == frozenset()

    def test_clean_replacement_notifies_directory(self):
        system, protocol = build(cache_entries=1)
        protocol.read(0, addr(0))
        protocol.read(0, addr(1))
        assert protocol.directory_sharers(0) == frozenset()
        assert (
            protocol.stats.traffic_messages[MsgKind.REPLACE_NOTIFY.value]
            == 1
        )


class TestFigure7RatesOnTheMachine:
    """The Figure 7 chain predicts each consistency-event direction fires
    at rate w(1-w) per reference; the simulated protocol on a §4 Markov
    trace must reproduce that rate."""

    @pytest.mark.parametrize("w", [0.2, 0.5, 0.8])
    def test_transition_rates_match_w_times_one_minus_w(self, w):
        from repro.sim.engine import run_trace
        from repro.workloads.markov import markov_block_trace

        references = 8000
        trace = markov_block_trace(
            16, list(range(8)), w, references, seed=3
        )
        system = System(SystemConfig(n_nodes=16))
        protocol = WriteOnceProtocol(system)
        run_trace(
            protocol, trace, verify=False, check_invariants_every=0
        )
        predicted = w * (1 - w)
        recall_rate = (
            protocol.stats.traffic_messages[MsgKind.DIR_RECALL.value]
            / references
        )
        invalidate_rate = (
            protocol.stats.traffic_messages[
                MsgKind.DIR_INVALIDATE.value
            ]
            / references
        )
        assert recall_rate == pytest.approx(predicted, rel=0.15)
        assert invalidate_rate == pytest.approx(predicted, rel=0.15)


class TestMarkovCorrespondence:
    """The Figure 7 model says consistency events happen at rate
    2 w (1 - w): invalidation bursts on shared->exclusive, reloads on
    exclusive->shared.  The simulated protocol should show both event
    kinds on an alternating read/write pattern."""

    def test_alternating_pattern_oscillates_states(self):
        system, protocol = build()
        for round_no in range(1, 6):
            protocol.write(0, addr(0), round_no)  # exclusive
            protocol.read(1, addr(0))  # shared again
        # 5 invalidation events (one reader each) after the first round.
        assert protocol.stats.events["invalidations"] >= 4
        assert (
            protocol.stats.traffic_messages[MsgKind.DIR_RECALL.value] >= 4
        )
