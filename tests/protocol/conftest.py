"""Shared fixtures and helpers for the protocol test suite."""

import pytest

from repro.cache.state import Mode
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.system import System, SystemConfig
from repro.types import Address


def build(
    n_nodes=8,
    *,
    default_mode=Mode.GLOBAL_READ,
    cache_entries=4,
    block_size_words=2,
    mode_policy=None,
    **config_kwargs,
):
    """A fresh system + Stenström protocol with small, test-friendly sizes."""
    system = System(
        SystemConfig(
            n_nodes=n_nodes,
            cache_entries=cache_entries,
            block_size_words=block_size_words,
            **config_kwargs,
        )
    )
    protocol = StenstromProtocol(
        system, default_mode=default_mode, mode_policy=mode_policy
    )
    return system, protocol


def addr(block, offset=0):
    return Address(block, offset)


def state_of(system, node, block):
    """The Table 1 state of ``block`` at ``node`` (INVALID if absent)."""
    from repro.cache.state import CacheState

    entry = system.caches[node].find(block)
    if entry is None:
        return CacheState.INVALID
    return entry.state(node)


def field_of(system, node, block):
    entry = system.caches[node].find(block)
    assert entry is not None, f"no entry for block {block} at node {node}"
    return entry.state_field


def traffic(protocol, kind):
    """Total bits the protocol recorded for one message kind."""
    return protocol.stats.traffic_bits[kind.value]


def messages(protocol, kind):
    """Message count the protocol recorded for one message kind."""
    return protocol.stats.traffic_messages[kind.value]


@pytest.fixture
def gr_setup():
    """System with block 0 owned (global read) by node 0 and read by 1, 2."""
    system, protocol = build()
    protocol.write(0, addr(0), 10)  # node 0 loads + owns exclusively
    protocol.read(1, addr(0))
    protocol.read(2, addr(0))
    protocol.check_invariants()
    return system, protocol


@pytest.fixture
def dw_setup():
    """System with block 0 owned (distributed write) by node 0, copies at
    nodes 1 and 2."""
    system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
    protocol.write(0, addr(0), 10)
    protocol.read(1, addr(0))
    protocol.read(2, addr(0))
    protocol.check_invariants()
    return system, protocol
