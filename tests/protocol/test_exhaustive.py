"""Exhaustive exploration of small protocol configurations.

Model-checking-lite: enumerate *every* sequence of operations up to a
fixed depth on a tiny machine (3 caches, 2 blocks, 1-entry caches so
replacement fires constantly) and verify, after every step,

* value coherence against a shadow memory, and
* all structural invariants.

Hypothesis samples this space; these tests *cover* it, so any reachable
protocol state within the horizon is certified, not just probably fine.
"""

import itertools

import pytest

from repro.cache.state import Mode
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.system import System, SystemConfig
from repro.types import Address

# Operation alphabet: (kind, node, block).  Writes use a counter value
# injected at execution time so every write is distinguishable.
NODES = (0, 1, 2)
BLOCKS = (0, 1)
OPS = (
    [("R", node, block) for node in NODES for block in BLOCKS]
    + [("W", node, block) for node in NODES for block in BLOCKS]
)
MODE_OPS = [
    ("M", node, block, mode)
    for node in (0, 1)
    for block in BLOCKS
    for mode in Mode
]


def execute(protocol, sequence):
    """Run an operation sequence with verification at every step."""
    shadow = {}
    counter = itertools.count(1)
    for op in sequence:
        kind, node, block = op[0], op[1], op[2]
        address = Address(block, 0)
        if kind == "R":
            observed = protocol.read(node, address)
            expected = shadow.get(address, 0)
            assert observed == expected, (
                f"sequence {sequence}: node {node} read {observed}, "
                f"expected {expected}"
            )
        elif kind == "W":
            value = next(counter)
            protocol.write(node, address, value)
            shadow[address] = value
        else:
            protocol.set_mode(node, block, op[3])
        protocol.check_invariants()


def tiny_system():
    # One-entry caches: every second reference replaces something.
    return System(
        SystemConfig(n_nodes=4, cache_entries=1, block_size_words=1)
    )


class TestExhaustiveReadWrite:
    @pytest.mark.parametrize("default_mode", list(Mode))
    def test_all_depth3_sequences(self, default_mode):
        for sequence in itertools.product(OPS, repeat=3):
            protocol = StenstromProtocol(
                tiny_system(), default_mode=default_mode
            )
            execute(protocol, sequence)

    @pytest.mark.slow
    @pytest.mark.parametrize("default_mode", list(Mode))
    def test_all_depth4_sequences_single_block(self, default_mode):
        ops = [op for op in OPS if op[2] == 0]
        for sequence in itertools.product(ops, repeat=4):
            protocol = StenstromProtocol(
                tiny_system(), default_mode=default_mode
            )
            execute(protocol, sequence)


class TestExhaustiveWithModeSwitches:
    def test_all_depth3_sequences_with_a_mode_switch(self):
        """Every (op, mode-switch, op) sandwich on one block."""
        ops = [op for op in OPS if op[2] == 0]
        switches = [op for op in MODE_OPS if op[2] == 0]
        for first in ops:
            for switch in switches:
                for last in ops:
                    protocol = StenstromProtocol(tiny_system())
                    execute(protocol, (first, switch, last))

    @pytest.mark.slow
    def test_double_mode_switches(self):
        """op, switch, op, switch, op -- mode thrash under traffic."""
        ops = [op for op in OPS if op[2] == 0 and op[1] in (0, 1)]
        switches = [
            op for op in MODE_OPS if op[2] == 0 and op[1] == 0
        ]
        for sequence in itertools.product(
            ops, switches, ops, switches, ops
        ):
            protocol = StenstromProtocol(tiny_system())
            execute(protocol, sequence)


class TestExhaustiveBothBlocks:
    def test_cross_block_interference_depth3(self):
        """Sequences mixing both blocks: with 1-entry caches, block 0 and
        block 1 evict each other on every touch."""
        ops_a = [op for op in OPS if op[2] == 0 and op[1] in (0, 1)]
        ops_b = [op for op in OPS if op[2] == 1 and op[1] in (0, 1)]
        for first in ops_a:
            for second in ops_b:
                for third in ops_a:
                    protocol = StenstromProtocol(tiny_system())
                    execute(protocol, (first, second, third))
