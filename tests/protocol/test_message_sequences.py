"""Exact §2.2 message sequences, asserted against the message log.

The scenario tests elsewhere check resulting *states*; these check the
*conversations* -- every message of each §2.2 case, in order, with its
endpoints.  This is the closest the test suite gets to the paper's prose.
"""

from repro.cache.state import Mode
from repro.protocol.messages import MsgKind

from tests.protocol.conftest import addr, build


def transcript(protocol):
    """The log as comparable tuples (kind, source, dests)."""
    return [
        (entry.kind, entry.source, set(entry.dests))
        for entry in protocol.message_log
    ]


class TestReadMissSequences:
    def test_cold_load_is_request_then_block_from_home(self):
        system, protocol = build()
        protocol.enable_message_log()
        home = protocol.home(5)
        protocol.read(2, addr(5))
        assert transcript(protocol) == [
            (MsgKind.LOAD_REQ, 2, {home}),
            (MsgKind.BLOCK_REPLY, home, {2}),
        ]

    def test_gr_remote_read_via_memory(self):
        system, protocol = build()
        protocol.write(0, addr(5), 9)  # node 0 owns (GR)
        protocol.enable_message_log()
        home = protocol.home(5)
        protocol.read(2, addr(5))
        assert transcript(protocol) == [
            (MsgKind.LOAD_REQ, 2, {home}),
            (MsgKind.LOAD_FWD, home, {0}),
            (MsgKind.WORD_REPLY, 0, {2}),
        ]

    def test_gr_repeat_read_bypasses_memory(self):
        system, protocol = build()
        protocol.write(0, addr(5), 9)
        protocol.read(2, addr(5))  # creates the placeholder
        protocol.enable_message_log()
        protocol.read(2, addr(5))
        assert transcript(protocol) == [
            (MsgKind.LOAD_DIRECT, 2, {0}),
            (MsgKind.WORD_REPLY, 0, {2}),
        ]

    def test_dw_remote_read_ships_a_block(self):
        system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
        protocol.write(0, addr(5), 9)
        protocol.enable_message_log()
        home = protocol.home(5)
        protocol.read(2, addr(5))
        assert transcript(protocol) == [
            (MsgKind.LOAD_REQ, 2, {home}),
            (MsgKind.LOAD_FWD, home, {0}),
            (MsgKind.BLOCK_REPLY, 0, {2}),
        ]


class TestWriteSequences:
    def test_dw_distributed_write_is_one_multicast(self):
        system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
        protocol.write(0, addr(5), 1)
        protocol.read(1, addr(5))
        protocol.read(2, addr(5))
        protocol.enable_message_log()
        protocol.write(0, addr(5), 2)
        assert transcript(protocol) == [
            (MsgKind.WRITE_UPDATE, 0, {1, 2}),
        ]

    def test_unowned_write_hit_sequence_dw(self):
        system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
        protocol.write(0, addr(5), 1)
        protocol.read(1, addr(5))
        protocol.enable_message_log()
        home = protocol.home(5)
        protocol.write(1, addr(5), 2)
        assert transcript(protocol) == [
            (MsgKind.OWN_REQ, 1, {home}),
            (MsgKind.OWN_FWD, home, {0}),
            (MsgKind.STATE_XFER, 0, {1}),
            (MsgKind.WRITE_UPDATE, 1, {0}),
        ]

    def test_write_miss_with_gr_owner_sequence(self):
        system, protocol = build()
        protocol.write(0, addr(5), 1)
        protocol.read(1, addr(5))  # placeholder at 1
        protocol.enable_message_log()
        home = protocol.home(5)
        protocol.write(3, addr(5), 2)
        assert transcript(protocol) == [
            (MsgKind.OWN_REQ, 3, {home}),
            (MsgKind.OWN_FWD, home, {0}),
            (MsgKind.DATA_STATE_XFER, 0, {3}),
            (MsgKind.OWNER_UPDATE, 0, {1}),
        ]

    def test_exclusive_write_hit_is_silent(self):
        system, protocol = build()
        protocol.write(0, addr(5), 1)
        protocol.enable_message_log()
        protocol.write(0, addr(5), 2)
        assert transcript(protocol) == []


class TestReplacementSequences:
    def test_clean_exclusive_replacement(self):
        system, protocol = build()
        protocol.read(0, addr(5))
        protocol.enable_message_log()
        home = protocol.home(5)
        protocol.evict(0, 5)
        assert transcript(protocol) == [
            (MsgKind.REPLACE_NOTIFY, 0, {home}),
        ]

    def test_modified_exclusive_replacement_is_one_writeback(self):
        system, protocol = build()
        protocol.write(0, addr(5), 1)
        protocol.enable_message_log()
        home = protocol.home(5)
        protocol.evict(0, 5)
        assert transcript(protocol) == [
            (MsgKind.WRITEBACK, 0, {home}),
        ]

    def test_unowned_replacement_clears_flag_via_home(self):
        system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
        protocol.write(0, addr(5), 1)
        protocol.read(1, addr(5))
        protocol.enable_message_log()
        home = protocol.home(5)
        protocol.evict(1, 5)
        assert transcript(protocol) == [
            (MsgKind.REPLACE_NOTIFY, 1, {home}),
            (MsgKind.PRESENT_CLEAR, home, {0}),
        ]

    def test_nonexclusive_owner_handoff_sequence(self):
        system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
        protocol.write(0, addr(5), 1)
        protocol.read(1, addr(5))
        protocol.enable_message_log()
        home = protocol.home(5)
        protocol.evict(0, 5)
        assert transcript(protocol) == [
            (MsgKind.XFER_OFFER, 0, {1}),
            (MsgKind.ACK, 1, {0}),
            # Candidate acquires ownership "according to the protocol":
            (MsgKind.OWN_REQ, 1, {home}),
            (MsgKind.OWN_FWD, home, {0}),
            (MsgKind.STATE_XFER, 0, {1}),
            # The departing copy retires through the 5(c) path:
            (MsgKind.REPLACE_NOTIFY, 0, {home}),
            (MsgKind.PRESENT_CLEAR, home, {1}),
        ]


class TestModeSwitchSequences:
    def test_switch_to_gr_is_one_invalidation_multicast(self):
        system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
        protocol.write(0, addr(5), 1)
        protocol.read(1, addr(5))
        protocol.read(2, addr(5))
        protocol.enable_message_log()
        protocol.set_mode(0, 5, Mode.GLOBAL_READ)
        assert transcript(protocol) == [
            (MsgKind.INVALIDATE, 0, {1, 2}),
        ]

    def test_switch_to_dw_by_owner_is_silent(self):
        system, protocol = build()
        protocol.write(0, addr(5), 1)
        protocol.read(1, addr(5))
        protocol.enable_message_log()
        protocol.set_mode(0, 5, Mode.DISTRIBUTED_WRITE)
        assert transcript(protocol) == []


class TestLogCostsMatchLedger:
    def test_log_totals_equal_stats_totals(self):
        system, protocol = build(default_mode=Mode.DISTRIBUTED_WRITE)
        protocol.enable_message_log()
        for node in range(4):
            protocol.read(node, addr(0))
        protocol.write(0, addr(0), 9)
        protocol.write(2, addr(0), 10)
        assert sum(
            entry.cost for entry in protocol.message_log
        ) == protocol.stats.total_bits
