"""Scenario tests for the full-map directory baseline."""

from repro.protocol.full_map import (
    FullMapProtocol,
    FullMapState,
    decode_state,
)
from repro.protocol.messages import MsgKind
from repro.sim.system import System, SystemConfig
from repro.types import Address


def build(n_nodes=8, cache_entries=4, block_size_words=2):
    system = System(
        SystemConfig(
            n_nodes=n_nodes,
            cache_entries=cache_entries,
            block_size_words=block_size_words,
        )
    )
    return system, FullMapProtocol(system)


def addr(block, offset=0):
    return Address(block, offset)


def state(system, node, block):
    return decode_state(system.caches[node].find(block))


class TestReads:
    def test_read_miss_populates_directory(self):
        system, protocol = build()
        protocol.read(3, addr(0))
        assert protocol.directory_present(0) == {3}
        assert state(system, 3, 0) is FullMapState.SHARED

    def test_many_readers_share(self):
        system, protocol = build()
        for node in range(4):
            protocol.read(node, addr(0))
        assert protocol.directory_present(0) == {0, 1, 2, 3}
        protocol.check_invariants()

    def test_read_hit_is_free(self):
        system, protocol = build()
        protocol.read(3, addr(0))
        bits = system.network.total_bits
        protocol.read(3, addr(0))
        assert system.network.total_bits == bits


class TestWrites:
    def test_write_invalidates_sharers(self):
        system, protocol = build()
        for node in range(3):
            protocol.read(node, addr(0))
        protocol.write(0, addr(0), 9)
        assert protocol.directory_present(0) == {0}
        assert state(system, 0, 0) is FullMapState.DIRTY
        assert state(system, 1, 0) is FullMapState.INVALID
        assert protocol.stats.events["invalidations"] == 2

    def test_dirty_write_hit_is_free(self):
        system, protocol = build()
        protocol.write(0, addr(0), 9)
        bits = system.network.total_bits
        protocol.write(0, addr(0), 10)
        assert system.network.total_bits == bits

    def test_write_to_dirty_elsewhere_recalls(self):
        system, protocol = build()
        protocol.write(0, addr(0), 9)
        protocol.write(1, addr(0), 10)
        assert (
            protocol.stats.traffic_messages[MsgKind.DIR_RECALL.value] == 1
        )
        assert protocol.directory_present(0) == {1}
        assert protocol.read(2, addr(0)) == 10
        protocol.check_invariants()


class TestReplacement:
    def test_dirty_eviction_writes_back(self):
        system, protocol = build(cache_entries=1)
        protocol.write(0, addr(0), 5)
        protocol.read(0, addr(1))
        assert protocol.stats.events["writebacks"] == 1
        assert system.memory_for(0).read_word(0, 0) == 5
        assert protocol.directory_present(0) == frozenset()

    def test_shared_eviction_clears_presence(self):
        system, protocol = build(cache_entries=1)
        protocol.read(0, addr(0))
        protocol.read(0, addr(1))
        assert protocol.directory_present(0) == frozenset()
        protocol.check_invariants()


class TestStorageContrast:
    """The reason the paper rejects this design: directory bits scale with
    N for every memory block."""

    def test_directory_state_grows_with_sharers(self):
        system, protocol = build()
        for node in range(8):
            protocol.read(node, addr(0))
        assert len(protocol.directory_present(0)) == 8
