"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main
from repro.sim.trace import Trace, save_trace
from repro.types import Address, Op, Reference


class TestTables:
    def test_prints_all_three_tables(self, capsys):
        assert main(["tables"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "Table 3" in output
        assert "Table 4" in output


class TestFigures:
    def test_prints_all_three_figures(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "Figure 5" in output
        assert "Figure 6" in output
        assert "Figure 8" in output

    def test_width_option(self, capsys):
        assert main(["figures", "--width", "40"]) == 0
        assert capsys.readouterr().out


class TestSimulate:
    def test_default_markov_run(self, capsys):
        assert main(
            [
                "simulate",
                "--nodes", "8",
                "--references", "300",
                "--seed", "3",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "stenstrom-two-mode" in output
        assert "verified          : True" in output

    def test_protocol_choice(self, capsys):
        assert main(
            [
                "simulate",
                "--protocol", "no-cache",
                "--references", "100",
            ]
        ) == 0
        assert "no-cache" in capsys.readouterr().out

    def test_random_workload(self, capsys):
        assert main(
            [
                "simulate",
                "--workload", "random",
                "--references", "200",
            ]
        ) == 0
        assert "references        : 200" in capsys.readouterr().out

    def test_no_verify_flag(self, capsys):
        assert main(
            ["simulate", "--references", "100", "--no-verify"]
        ) == 0
        assert "verified          : False" in capsys.readouterr().out

    def test_trace_file_replay(self, tmp_path, capsys):
        trace = Trace(
            [
                Reference(0, Op.WRITE, Address(0, 0), 5),
                Reference(1, Op.READ, Address(0, 0)),
            ],
            n_nodes=4,
            block_size_words=2,
        )
        path = tmp_path / "small.trace"
        save_trace(trace, path)
        assert main(["simulate", "--trace", str(path)]) == 0
        assert "references        : 2" in capsys.readouterr().out


class TestCompare:
    def test_ranks_all_protocols(self, capsys):
        assert main(
            ["compare", "--nodes", "8", "--references", "300"]
        ) == 0
        output = capsys.readouterr().out
        for name in (
            "no-cache",
            "write-once",
            "full-map",
            "two-mode",
        ):
            assert name in output
        assert "cheapest:" in output


class TestLatency:
    def test_ranks_by_cycles(self, capsys):
        assert main(
            ["latency", "--nodes", "8", "--references", "200"]
        ) == 0
        output = capsys.readouterr().out
        assert "cycles/ref" in output
        assert "no-cache" in output


class TestSweep:
    def test_prints_sharers_table(self, capsys):
        assert main(
            [
                "sweep",
                "--nodes", "16",
                "--sharers", "2", "4",
                "--references", "300",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "n=2" in output and "n=4" in output

    def test_json_export(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert main(
            [
                "sweep",
                "--nodes", "16",
                "--sharers", "2",
                "--references", "200",
                "--output", str(out),
            ]
        ) == 0
        from repro.analysis.records import load_records

        records, metadata = load_records(out)
        assert records
        assert metadata["n_nodes"] == 16
        assert metadata["sweep_hash"]

    def _sweep_table(self, capsys, extra=()):
        argv = [
            "sweep",
            "--nodes", "16",
            "--sharers", "2", "4",
            "--references", "200",
            *extra,
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        table = output.split("runner:")[0]
        return table, output

    def test_parallel_workers_match_sequential_table(self, capsys):
        sequential, _ = self._sweep_table(capsys)
        parallel, output = self._sweep_table(
            capsys, ("--workers", "2")
        )
        assert parallel == sequential
        assert "workers=2" in output

    def test_cache_dir_makes_second_run_all_cached(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        _, cold = self._sweep_table(capsys, ("--cache-dir", cache))
        assert "12 executed, 0 cached" in cold
        warm_table, warm = self._sweep_table(
            capsys, ("--cache-dir", cache)
        )
        assert "0 executed, 12 cached" in warm
        cold_table = cold.split("runner:")[0]
        assert warm_table == cold_table

    def test_journal_records_task_events(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        self._sweep_table(capsys, ("--journal", str(journal)))
        from repro.runner import read_journal

        events = read_journal(journal)
        kinds = {event["event"] for event in events}
        assert "sweep_start" in kinds
        assert "task_finish" in kinds
        assert "sweep_finish" in kinds


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestMc:
    def test_exhaustive_small_config_passes(self, capsys):
        assert main(["mc", "--nodes", "2", "--blocks", "1", "--exhaustive"]) == 0
        output = capsys.readouterr().out
        assert "states explored" in output
        assert "exhaustive        : True" in output
        assert "violations        : 0" in output
        assert "MC: pass" in output

    def test_two_runs_print_identical_summaries(self, tmp_path, capsys):
        first = tmp_path / "one.txt"
        second = tmp_path / "two.txt"
        base = ["mc", "--nodes", "2", "--blocks", "1", "--exhaustive"]
        assert main(base + ["--output", str(first)]) == 0
        assert main(base + ["--output", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_state_cap_reports_incomplete(self, capsys):
        assert main(
            ["mc", "--nodes", "4", "--blocks", "1", "--max-states", "100"]
        ) == 0
        assert "exhaustive        : False" in capsys.readouterr().out

    def test_fuzz_runs_and_reports(self, capsys):
        assert main(
            [
                "mc", "--nodes", "4", "--blocks", "2", "--exhaustive",
                "--nodes", "2", "--blocks", "1",
                "--fuzz", "30", "--fuzz-nodes", "4", "--fuzz-blocks", "2",
                "--seed", "3",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "differential fuzz:" in output
        assert "divergences       : 0" in output

    def test_default_dw_flag_changes_the_summary(self, capsys):
        assert main(
            ["mc", "--nodes", "2", "--blocks", "1", "--exhaustive",
             "--default-dw"]
        ) == 0
        assert "distributed-write" in capsys.readouterr().out
