"""Smoke tests: every example script runs to completion.

The examples are documentation that executes; these tests keep them from
rotting.  Output is captured and lightly sanity-checked.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples"
)

EXPECTED_SNIPPETS = {
    "quickstart.py": "distributed-write mode",
    "multicast_explorer.py": "combined scheme (eq. 8) picks",
    "mode_selection.py": "threshold w1",
    "adaptive_modes.py": "Phase-changing block",
    "network_contention.py": "Permutation passability",
}


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(
        os.path.join(EXAMPLES_DIR, script), run_name="__main__"
    )
    output = capsys.readouterr().out
    assert EXPECTED_SNIPPETS[script] in output


@pytest.mark.slow
def test_matrix_workload_example_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["matrix_workload.py"])
    runpy.run_path(
        os.path.join(EXAMPLES_DIR, "matrix_workload.py"),
        run_name="__main__",
    )
    output = capsys.readouterr().out
    assert "ownership transfers" in output
