"""The public API surface: ``__all__`` accuracy and import hygiene."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.cache",
    "repro.faults",
    "repro.mc",
    "repro.memory",
    "repro.network",
    "repro.obs",
    "repro.protocol",
    "repro.runner",
    "repro.serve",
    "repro.sim",
    "repro.workloads",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted(package):
    module = importlib.import_module(package)
    assert list(module.__all__) == sorted(module.__all__)


def test_version_is_exposed():
    import repro

    assert repro.__version__


def test_star_import_is_clean():
    namespace = {}
    exec("from repro import *", namespace)  # noqa: S102
    assert "StenstromProtocol" in namespace
    assert "System" in namespace


def test_no_circular_import_from_any_leaf():
    """Each module imports cleanly on its own (fresh interpreter order
    is approximated by importing leaves before the package roots)."""
    leaves = [
        "repro.network.cost",
        "repro.network.selector",
        "repro.network.contention",
        "repro.network.radix",
        "repro.protocol.stenstrom",
        "repro.protocol.limited_pointer",
        "repro.analysis.latency",
        "repro.analysis.replication",
        "repro.sim.timing",
        "repro.workloads.locks",
        "repro.cli",
    ]
    for leaf in leaves:
        importlib.import_module(leaf)


def test_every_public_callable_has_a_docstring():
    for package in PACKAGES:
        module = importlib.import_module(package)
        for name in module.__all__:
            value = getattr(module, name)
            if callable(value):
                assert value.__doc__, f"{package}.{name} lacks a docstring"
