"""Documentation rot protection.

DESIGN.md's inventory and experiment index point at modules and benchmark
files; EXPERIMENTS.md embeds exhibit files.  These tests keep those
references real, so the documentation cannot silently drift from the code.
"""

import importlib
import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def read(name):
    with open(os.path.join(ROOT, name), encoding="utf-8") as stream:
        return stream.read()


class TestDesignDocument:
    def test_every_referenced_benchmark_file_exists(self):
        text = read("DESIGN.md")
        for match in set(re.findall(r"benchmarks/\w+\.py", text)):
            assert os.path.exists(
                os.path.join(ROOT, match)
            ), f"DESIGN.md references missing {match}"

    def test_every_referenced_test_file_exists(self):
        text = read("DESIGN.md")
        for match in set(re.findall(r"tests/[\w/]+\.py", text)):
            assert os.path.exists(
                os.path.join(ROOT, match)
            ), f"DESIGN.md references missing {match}"

    def test_every_referenced_module_imports(self):
        text = read("DESIGN.md")
        for match in set(re.findall(r"`(repro\.[\w.]+)`", text)):
            importlib.import_module(match)

    def test_paper_check_is_recorded(self):
        assert "Paper check" in read("DESIGN.md")


class TestExperimentsDocument:
    def test_covers_every_paper_exhibit(self):
        text = read("EXPERIMENTS.md")
        for exhibit in (
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Table 2",
            "Table 3",
            "Table 4",
        ):
            assert exhibit in text, f"EXPERIMENTS.md missing {exhibit}"

    def test_no_pending_exhibits(self):
        """Every simulation-backed exhibit was actually generated."""
        assert "to produce" not in read("EXPERIMENTS.md")

    def test_discrepancy_discussion_present(self):
        # The honest part: Table 2's mismatch is documented, not hidden.
        text = read("EXPERIMENTS.md")
        assert "Discussion" in text
        assert "mismatch" in text


class TestReadme:
    def test_quickstart_code_runs(self):
        """The README's quickstart snippet must execute as printed."""
        text = read("README.md")
        match = re.search(r"```python\n(.*?)```", text, re.S)
        assert match, "README lost its quickstart snippet"
        namespace: dict = {}
        exec(match.group(1), namespace)  # noqa: S102

    @pytest.mark.parametrize(
        "path",
        ["DESIGN.md", "EXPERIMENTS.md", "docs/PROTOCOL.md",
         "docs/NETWORK.md", "docs/WORKLOADS.md", "LICENSE",
         "CITATION.cff"],
    )
    def test_documents_exist(self, path):
        assert os.path.exists(os.path.join(ROOT, path))

    def test_examples_listed_in_readme_exist(self):
        text = read("README.md")
        for match in set(re.findall(r"examples/\w+\.py", text)):
            assert os.path.exists(os.path.join(ROOT, match))
