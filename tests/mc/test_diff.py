"""Differential fuzzing: lockstep agreement of model and simulator."""

import pytest

from repro.mc.diff import DifferentialFuzzer
from repro.mc.model import ModelConfig, initial_state
from repro.mc.state import MCState


class TestCleanRuns:
    def test_fault_free_runs_agree(self):
        report = DifferentialFuzzer(
            n_nodes=4, n_blocks=2, fault_mode="none", seed=11
        ).run(60)
        assert report.ok
        assert report.n_runs == 60
        assert report.n_degradations == 0

    def test_same_seed_is_deterministic(self):
        make = lambda: DifferentialFuzzer(  # noqa: E731
            n_nodes=4, n_blocks=2, fault_mode="mixed", seed=5
        ).run(40)
        assert make().summary() == make().summary()

    def test_different_seeds_pick_different_interleavings(self):
        first = DifferentialFuzzer(
            n_nodes=4, n_blocks=2, fault_mode="mixed", seed=1
        ).run(40)
        second = DifferentialFuzzer(
            n_nodes=4, n_blocks=2, fault_mode="mixed", seed=2
        ).run(40)
        # Both clean, but the mode mix almost surely differs.
        assert first.ok and second.ok


class TestFaultInjectedRuns:
    def test_scripted_drops_stay_in_lockstep(self):
        report = DifferentialFuzzer(
            n_nodes=4, n_blocks=2, fault_mode="scripted", seed=3
        ).run(80)
        assert report.ok
        # The targeted exhaustion rules must actually fire.
        assert report.n_degradations > 0

    def test_dead_elements_stay_in_lockstep(self):
        report = DifferentialFuzzer(
            n_nodes=4, n_blocks=2, fault_mode="dead", seed=3
        ).run(80)
        assert report.ok
        assert report.n_degradations > 0

    def test_larger_system_also_agrees(self):
        report = DifferentialFuzzer(
            n_nodes=8, n_blocks=3, fault_mode="mixed", seed=9
        ).run(40)
        assert report.ok

    def test_unknown_fault_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            DifferentialFuzzer(fault_mode="cosmic-rays")


class TestComparator:
    """The lockstep comparator must actually detect disagreement."""

    def test_tampered_model_state_reports_the_block(self):
        fuzzer = DifferentialFuzzer(n_nodes=4, n_blocks=1, seed=0)
        from repro.cache.state import Mode
        from repro.protocol.stenstrom import StenstromProtocol
        from repro.sim.system import System, SystemConfig
        from repro.types import Address

        system = System(
            SystemConfig(n_nodes=4, block_size_words=1, cache_entries=8)
        )
        protocol = StenstromProtocol(system, default_mode=Mode.GLOBAL_READ)
        protocol.write(0, Address(0, 0), 1)
        cfg = ModelConfig(n_nodes=4, n_blocks=1)
        # An (empty) model state that cannot match the written block.
        mstate: MCState = initial_state(cfg)
        detail = fuzzer._compare(protocol, cfg, mstate, shadow=[1])
        assert detail is not None
        assert "block 0" in detail
        assert "model" in detail and "simulator" in detail

    def test_matching_state_reports_nothing(self):
        report = DifferentialFuzzer(
            n_nodes=2, n_blocks=1, fault_mode="none", seed=4
        ).run(5)
        assert report.ok and not report.divergences

    def test_divergence_render_names_run_and_step(self):
        from repro.mc.diff import Divergence

        divergence = Divergence(
            run_seed=42,
            fault_mode="scripted",
            step=7,
            op="('read', 0, 0)",
            detail="block 0: mismatch",
        )
        text = divergence.render()
        assert "run seed 42" in text
        assert "step 7" in text
        assert "block 0: mismatch" in text
