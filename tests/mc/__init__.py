"""Tests for the model-checking package (:mod:`repro.mc`)."""
