"""Unit tests for the abstract guarded-action model of the protocol."""

import pytest

from repro.mc.model import ModelConfig, apply, enabled_actions, initial_state
from repro.mc.state import (
    COPY,
    OWNER,
    PLACEHOLDER,
    render_action,
    render_state,
)


def cfg(**overrides):
    base = dict(n_nodes=4, n_blocks=1, default_dw=False, max_retries=1)
    base.update(overrides)
    return ModelConfig(**base)


def run(config, *actions):
    state = initial_state(config)
    obs = {}
    for action in actions:
        state, obs = apply(config, state, action)
    return state, obs


class TestReferenceActions:
    def test_first_read_loads_exclusively_with_ownership(self):
        c = cfg()
        state, obs = run(c, ("read", 2, 0))
        bs = state.blocks[0]
        assert bs.owner == 2
        assert bs.present == (2,)
        assert bs.copies[2].kind == OWNER
        assert bs.copies[2].fresh  # memory was fresh
        assert obs["read_fresh"] is True

    def test_default_mode_follows_config(self):
        state, _ = run(cfg(default_dw=True), ("read", 0, 0))
        assert state.blocks[0].dw is True
        state, _ = run(cfg(default_dw=False), ("read", 0, 0))
        assert state.blocks[0].dw is False

    def test_gr_read_miss_leaves_placeholder_naming_owner(self):
        state, obs = run(cfg(), ("write", 0, 0), ("read", 3, 0))
        bs = state.blocks[0]
        assert bs.copies[3].kind == PLACEHOLDER
        assert bs.copies[3].ptr == 0
        assert bs.present == (0, 3)
        assert obs["read_fresh"] is True

    def test_dw_read_miss_ships_a_whole_copy(self):
        state, _ = run(
            cfg(default_dw=True), ("write", 0, 0), ("read", 3, 0)
        )
        assert state.blocks[0].copies[3].kind == COPY
        assert state.blocks[0].copies[3].fresh

    def test_dw_write_updates_every_copy_and_stales_memory(self):
        state, _ = run(
            cfg(default_dw=True),
            ("read", 0, 0),
            ("read", 1, 0),
            ("read", 2, 0),
            ("write", 0, 0),
        )
        bs = state.blocks[0]
        assert all(bs.copies[n].fresh for n in bs.present)
        assert not bs.mem_fresh
        assert bs.copies[0].modified

    def test_write_at_nonowner_transfers_ownership(self):
        state, _ = run(
            cfg(default_dw=True),
            ("write", 0, 0),
            ("read", 1, 0),
            ("write", 1, 0),
        )
        bs = state.blocks[0]
        assert bs.owner == 1
        assert bs.copies[1].kind == OWNER
        assert bs.copies[0].kind == COPY
        assert bs.copies[0].fresh  # the update reached the old owner

    def test_gr_transfer_repoints_placeholders(self):
        state, _ = run(
            cfg(),
            ("write", 0, 0),
            ("read", 1, 0),
            ("read", 2, 0),
            ("write", 2, 0),
        )
        bs = state.blocks[0]
        assert bs.owner == 2
        assert bs.copies[0].kind == PLACEHOLDER and bs.copies[0].ptr == 2
        assert bs.copies[1].kind == PLACEHOLDER and bs.copies[1].ptr == 2


class TestEvict:
    def test_exclusive_modified_owner_writes_back(self):
        state, _ = run(cfg(), ("write", 0, 0), ("evict", 0, 0))
        bs = state.blocks[0]
        assert bs.owner is None
        assert bs.present == ()
        assert bs.mem_fresh

    def test_shared_owner_hands_off_to_lowest_candidate(self):
        state, _ = run(
            cfg(default_dw=True),
            ("write", 1, 0),
            ("read", 2, 0),
            ("read", 3, 0),
            ("evict", 1, 0),
        )
        bs = state.blocks[0]
        assert bs.owner == 2
        assert 1 not in bs.present
        assert bs.copies[1] is None
        # The hand-off preserved the dirty data: memory is still stale.
        assert bs.copies[2].modified and not bs.mem_fresh

    def test_placeholder_evict_just_clears_the_flag(self):
        state, _ = run(
            cfg(), ("write", 0, 0), ("read", 3, 0), ("evict", 3, 0)
        )
        bs = state.blocks[0]
        assert bs.owner == 0
        assert bs.present == (0,)
        assert bs.copies[3] is None


class TestSetMode:
    def test_to_dw_resets_vector_to_owner(self):
        state, _ = run(
            cfg(),
            ("write", 0, 0),
            ("read", 1, 0),
            ("set_mode", 0, 0, True),
        )
        bs = state.blocks[0]
        assert bs.dw and bs.present == (0,)

    def test_to_gr_invalidates_copies_into_placeholders(self):
        state, _ = run(
            cfg(default_dw=True),
            ("write", 0, 0),
            ("read", 1, 0),
            ("read", 2, 0),
            ("set_mode", 0, 0, False),
        )
        bs = state.blocks[0]
        assert not bs.dw
        assert bs.copies[1].kind == PLACEHOLDER
        assert bs.copies[1].ptr == 0
        assert bs.present == (0, 1, 2)

    def test_nonowner_acquires_ownership_first(self):
        state, _ = run(
            cfg(),
            ("write", 0, 0),
            ("set_mode", 3, 0, True),
        )
        assert state.blocks[0].owner == 3


class TestFaultActions:
    def test_degrade_writes_back_and_purges(self):
        state, obs = run(
            cfg(default_dw=True),
            ("write", 0, 0),
            ("read", 1, 0),
            ("degrade", 0),
        )
        bs = state.blocks[0]
        assert bs.degraded
        assert bs.owner is None and bs.present == ()
        assert all(c is None for c in bs.copies)
        assert bs.mem_fresh  # the modified owner copy reached memory
        assert obs["degraded"] == 0

    def test_degraded_block_serves_memory_direct(self):
        state, obs = run(
            cfg(), ("write", 0, 0), ("degrade", 0), ("read", 2, 0)
        )
        assert obs["read_fresh"] is True
        assert all(c is None for c in state.blocks[0].copies)
        state, _ = apply(cfg(), state, ("write", 2, 0))[0], None
        assert state.blocks[0].degraded

    def test_degraded_block_never_reappears_in_actions(self):
        state, _ = run(cfg(), ("degrade", 0))
        names = {a[0] for a in enabled_actions(cfg(), state)}
        assert "degrade" not in names
        assert "set_mode" not in names

    def test_write_partial_creates_inflight_then_redelivery_completes(self):
        c = cfg(default_dw=True, max_retries=3)
        state, _ = run(
            c,
            ("write", 0, 0),
            ("read", 1, 0),
            ("read", 2, 0),
            ("write_partial", 0, 0, (1, 2)),
        )
        inflight = state.inflight
        assert inflight is not None
        assert inflight.missed == (1, 2) and inflight.rounds == 1
        assert not state.blocks[0].copies[1].fresh
        # Only recovery actions are enabled mid-update.
        names = {a[0] for a in enabled_actions(c, state)}
        assert names == {"redeliver", "drop_round"}
        state, _ = apply(c, state, ("redeliver", 0, 1))
        state, _ = apply(c, state, ("redeliver", 0, 2))
        assert state.inflight is None
        assert all(
            state.blocks[0].copies[n].fresh
            for n in state.blocks[0].present
        )

    def test_drop_rounds_past_budget_degrade(self):
        c = cfg(default_dw=True, max_retries=2)
        state, _ = run(
            c,
            ("write", 0, 0),
            ("read", 1, 0),
            ("write_partial", 0, 0, (1,)),
        )
        state, obs = apply(c, state, ("drop_round", 0))
        assert state.inflight.rounds == 2 and not obs
        state, obs = apply(c, state, ("drop_round", 0))
        assert state.inflight is None
        assert state.blocks[0].degraded
        assert obs["degraded"] == 0 and obs["retry_exhausted"] == (1,)
        # The writer's (freshest) value reached memory on the way down.
        assert state.blocks[0].mem_fresh

    def test_zero_budget_write_partial_degrades_immediately(self):
        c = cfg(default_dw=True, max_retries=0)
        state, obs = run(
            c,
            ("write", 0, 0),
            ("read", 1, 0),
            ("write_partial", 0, 0, (1,)),
        )
        assert state.blocks[0].degraded and state.inflight is None
        assert obs["degraded"] == 0


class TestEnumerationDeterminism:
    def test_enabled_actions_are_reproducible(self):
        c = cfg(default_dw=True)
        state, _ = run(c, ("write", 0, 0), ("read", 1, 0), ("read", 2, 0))
        assert enabled_actions(c, state) == enabled_actions(c, state)

    def test_every_action_renders(self):
        c = cfg(default_dw=True)
        state, _ = run(c, ("write", 0, 0), ("read", 1, 0))
        for action in enabled_actions(c, state):
            assert render_action(action)
        assert "block 0" in render_state(state)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown model action"):
            apply(cfg(), initial_state(cfg()), ("warp", 0, 0))
