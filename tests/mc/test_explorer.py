"""Exhaustive exploration: coverage, determinism, and violation traces."""

from repro.mc.explorer import Violation, explore
from repro.mc.invariants import check_state
from repro.mc.model import ModelConfig, initial_state
from repro.mc.state import BlockState, Copy, Inflight, MCState, OWNER, COPY


def corrupt(state: MCState, block: int, **overrides) -> MCState:
    bs = state.blocks[block]._replace(**overrides)
    return MCState(
        blocks=state.blocks[:block] + (bs,) + state.blocks[block + 1:],
        inflight=state.inflight,
    )


class TestExhaustiveExploration:
    def test_n2_one_block_is_clean_and_exhaustive(self):
        result = explore(ModelConfig(n_nodes=2, n_blocks=1))
        assert result.ok
        assert result.complete
        assert result.n_states > 0 and result.n_transitions > 0

    def test_two_runs_report_identical_counts(self):
        first = explore(ModelConfig(n_nodes=2, n_blocks=1))
        second = explore(ModelConfig(n_nodes=2, n_blocks=1))
        assert first.summary() == second.summary()

    def test_n4_one_block_is_clean(self):
        result = explore(ModelConfig(n_nodes=4, n_blocks=1))
        assert result.ok and result.complete

    def test_n2_two_blocks_is_clean(self):
        result = explore(ModelConfig(n_nodes=2, n_blocks=2))
        assert result.ok and result.complete

    def test_dw_default_mode_also_clean(self):
        result = explore(ModelConfig(n_nodes=2, n_blocks=1, default_dw=True))
        assert result.ok and result.complete

    def test_state_cap_reports_incomplete(self):
        result = explore(
            ModelConfig(n_nodes=4, n_blocks=1), max_states=50
        )
        assert result.ok
        assert not result.complete
        assert result.n_states <= 50

    def test_summary_mentions_the_configuration(self):
        result = explore(ModelConfig(n_nodes=2, n_blocks=1))
        summary = result.summary()
        assert "states explored" in summary
        assert "exhaustive        : True" in summary


class TestInvariantChecker:
    """check_state must flag each violation class the explorer guards."""

    def cfg(self):
        return ModelConfig(n_nodes=2, n_blocks=1)

    def owned(self):
        blocks = (
            BlockState(
                owner=0,
                dw=True,
                present=(0, 1),
                copies=(
                    Copy(OWNER, 0, True, True),
                    Copy(COPY, 0, True, False),
                ),
                mem_fresh=False,
                degraded=False,
            ),
        )
        return MCState(blocks=blocks, inflight=None)

    def test_healthy_state_passes(self):
        assert check_state(self.cfg(), self.owned()) == []

    def test_double_owner_detected(self):
        state = self.owned()
        state = MCState(
            blocks=(
                state.blocks[0]._replace(
                    copies=(
                        Copy(OWNER, 0, True, True),
                        Copy(OWNER, 1, True, False),
                    )
                ),
            ),
            inflight=None,
        )
        assert any("several caches" in v for v in check_state(self.cfg(), state))

    def test_owner_missing_from_vector_detected(self):
        state = corrupt(self.owned(), 0, present=(1,))
        assert any(
            "missing from its present vector" in v
            for v in check_state(self.cfg(), state)
        )

    def test_stale_owner_at_quiescence_detected(self):
        state = corrupt(
            self.owned(),
            0,
            copies=(Copy(OWNER, 0, False, True), Copy(COPY, 0, True, False)),
        )
        assert any("stale copy" in v for v in check_state(self.cfg(), state))

    def test_degraded_block_with_entries_detected(self):
        state = corrupt(self.owned(), 0, degraded=True)
        assert any(
            "degraded block" in v for v in check_state(self.cfg(), state)
        )

    def test_unowned_stale_memory_detected(self):
        state = corrupt(
            self.owned(),
            0,
            owner=None,
            dw=False,
            present=(),
            copies=(None, None),
            mem_fresh=False,
        )
        assert any("stale memory" in v for v in check_state(self.cfg(), state))

    def test_inflight_rounds_past_budget_detected(self):
        state = MCState(
            blocks=self.owned().blocks,
            inflight=Inflight(block=0, writer=0, missed=(1,), rounds=5),
        )
        assert any(
            "outside the retry budget" in v
            for v in check_state(self.cfg(), state)
        )

    def test_initial_state_is_healthy(self):
        assert check_state(self.cfg(), initial_state(self.cfg())) == []


class TestViolationRendering:
    def test_render_includes_trace_and_state(self):
        violation = Violation(
            kind="invariant",
            detail="block 0: example",
            trace=("write(node=0, block=0)",),
            state="  block 0: ...",
        )
        text = violation.render()
        assert "invariant: block 0: example" in text
        assert "1. write(node=0, block=0)" in text
        assert "state reached:" in text

    def test_empty_trace_marks_initial_state(self):
        violation = Violation("invariant", "d", (), "s")
        assert "(initial state)" in violation.render()
