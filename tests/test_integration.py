"""Integration tests: whole-library flows across module boundaries.

These run realistic multi-module scenarios -- generated workloads through
protocols over the simulated network with full verification -- and check
aggregate properties that no single unit owns.
"""

import pytest

from repro import (
    Mode,
    OracleModePolicy,
    StenstromProtocol,
    System,
    SystemConfig,
    run_trace,
)
from repro.analysis.compare import compare_protocols
from repro.network.multicast import MulticastScheme
from repro.protocol.no_cache import NoCacheProtocol
from repro.workloads import (
    jacobi_trace,
    markov_block_trace,
    matrix_multiply_trace,
    migratory_trace,
    ping_pong_trace,
    producer_consumer_trace,
    random_trace,
    shared_structure_trace,
)


class TestStructuredWorkloadsVerify:
    """Every structured workload survives full verification end to end,
    under both default modes and small (thrashing) caches."""

    WORKLOADS = {
        "jacobi": lambda: jacobi_trace(
            8, [0, 1, 2, 3], rows=8, row_words=4, sweeps=2,
            block_size_words=2,
        ),
        "matmul": lambda: matrix_multiply_trace(
            8, [0, 1], size=4, block_size_words=2
        ),
        "migratory": lambda: migratory_trace(
            8, [0, 1, 2], 30, block_size_words=2
        ),
        "producer-consumer": lambda: producer_consumer_trace(
            8, 0, [1, 2, 3], 20, block_size_words=2
        ),
        "ping-pong": lambda: ping_pong_trace(
            8, 2, 5, 50, block_size_words=2
        ),
        "shared-structure": lambda: shared_structure_trace(
            8, [0, 1, 2, 3], 0.3, 800, n_blocks=10,
            block_size_words=2, seed=6,
        ),
    }

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("mode", list(Mode))
    def test_workload_verifies(self, name, mode):
        trace = self.WORKLOADS[name]()
        system = System(
            SystemConfig(
                n_nodes=8, cache_entries=4, block_size_words=2
            )
        )
        protocol = StenstromProtocol(system, default_mode=mode)
        report = run_trace(protocol, trace, verify=True)
        assert report.verified
        assert report.n_references == len(trace)


class TestPaperStoryEndToEnd:
    """The paper's §4 story, measured on the machine."""

    def test_read_mostly_block_prefers_distributed_write(self):
        trace = markov_block_trace(
            16, tasks=list(range(8)), write_fraction=0.05,
            n_references=3000, seed=1,
        )
        comparison = compare_protocols(
            trace, SystemConfig(n_nodes=16)
        )
        costs = comparison.cost_per_reference()
        assert costs["distributed-write"] < costs["global-read"]
        assert costs["distributed-write"] < costs["no-cache"]

    def test_write_heavy_block_prefers_global_read(self):
        trace = markov_block_trace(
            16, tasks=list(range(8)), write_fraction=0.8,
            n_references=3000, seed=2,
        )
        comparison = compare_protocols(
            trace, SystemConfig(n_nodes=16)
        )
        costs = comparison.cost_per_reference()
        assert costs["global-read"] < costs["distributed-write"]
        assert costs["global-read"] < costs["no-cache"]

    def test_two_mode_is_never_far_from_the_better_mode(self):
        for w, seed in ((0.05, 3), (0.5, 4), (0.9, 5)):
            trace = markov_block_trace(
                16, tasks=list(range(8)), write_fraction=w,
                n_references=3000, seed=seed,
            )
            comparison = compare_protocols(
                trace, SystemConfig(n_nodes=16)
            )
            costs = comparison.cost_per_reference()
            best_mode = min(
                costs["distributed-write"], costs["global-read"]
            )
            # The oracle selector needs a learning window, so allow slack.
            assert costs["two-mode"] <= best_mode * 1.6 + 5

    def test_ownership_stays_put_for_single_writer_blocks(self):
        trace = shared_structure_trace(
            16, tasks=list(range(4)), write_fraction=0.3,
            n_references=2000, n_blocks=4, seed=7,
        )
        system = System(SystemConfig(n_nodes=16, cache_entries=16))
        protocol = StenstromProtocol(
            system, default_mode=Mode.DISTRIBUTED_WRITE
        )
        report = run_trace(protocol, trace, verify=True)
        # Each block's writer becomes its owner once; at most one initial
        # transfer per block (if a reader touched it first).
        assert report.stats.events.get("ownership_transfers", 0) <= 4

    def test_migratory_sharing_transfers_ownership_every_round(self):
        rounds = 25
        trace = migratory_trace(8, [0, 1, 2, 3], rounds)
        system = System(SystemConfig(n_nodes=8))
        protocol = StenstromProtocol(
            system, default_mode=Mode.DISTRIBUTED_WRITE
        )
        report = run_trace(protocol, trace, verify=True)
        transfers = report.stats.events["ownership_transfers"]
        assert transfers >= rounds * 4 - 4  # one per hand-off


class TestSchemesUnderProtocol:
    """The multicast scheme choice matters inside the protocol too."""

    @pytest.mark.parametrize(
        "scheme",
        [
            MulticastScheme.UNICAST,
            MulticastScheme.VECTOR,
            MulticastScheme.BROADCAST_TAG,
            MulticastScheme.COMBINED,
        ],
    )
    def test_protocol_correct_under_every_scheme(self, scheme):
        trace = random_trace(
            16, 800, n_blocks=12, write_fraction=0.4, seed=8
        )
        system = System(
            SystemConfig(
                n_nodes=16, cache_entries=4, multicast_scheme=scheme
            )
        )
        protocol = StenstromProtocol(
            system, default_mode=Mode.DISTRIBUTED_WRITE
        )
        report = run_trace(protocol, trace, verify=True)
        assert report.verified

    def test_combined_never_beaten_by_pinned_schemes(self):
        trace = markov_block_trace(
            32, tasks=list(range(16)), write_fraction=0.4,
            n_references=1500, seed=9,
        )

        def cost_with(scheme):
            system = System(
                SystemConfig(n_nodes=32, multicast_scheme=scheme)
            )
            protocol = StenstromProtocol(
                system, default_mode=Mode.DISTRIBUTED_WRITE
            )
            return run_trace(
                protocol, trace, verify=False, check_invariants_every=0
            ).network_total_bits

        combined = cost_with(MulticastScheme.COMBINED)
        for scheme in (
            MulticastScheme.UNICAST,
            MulticastScheme.VECTOR,
            MulticastScheme.BROADCAST_TAG,
        ):
            assert combined <= cost_with(scheme) + 1


class TestCacheGeometryEffects:
    def test_direct_mapped_conflicts_cost_more_than_full_associativity(
        self,
    ):
        trace = random_trace(
            8, 2000, n_blocks=32, write_fraction=0.3, locality=0.7,
            seed=10,
        )

        def cost_with(associativity):
            system = System(
                SystemConfig(
                    n_nodes=8,
                    cache_entries=8,
                    associativity=associativity,
                )
            )
            protocol = StenstromProtocol(system)
            return run_trace(
                protocol, trace, verify=False, check_invariants_every=0
            ).network_total_bits

        assert cost_with(None) <= cost_with(1)

    def test_replacement_policies_all_verify(self):
        trace = random_trace(
            8, 1000, n_blocks=24, write_fraction=0.3, seed=11
        )
        for policy in ("lru", "fifo", "random"):
            system = System(
                SystemConfig(
                    n_nodes=8, cache_entries=4, replacement=policy
                )
            )
            protocol = StenstromProtocol(system)
            assert run_trace(protocol, trace, verify=True).verified


class TestUniformCostModelEquivalences:
    def test_no_cache_is_exactly_eq9_at_any_scale(self):
        from repro.network.cost import cc1
        from repro.protocol.messages import MessageCosts

        for n_nodes in (8, 64):
            system = System(
                SystemConfig(
                    n_nodes=n_nodes, costs=MessageCosts.uniform(20)
                )
            )
            protocol = NoCacheProtocol(system)
            trace = markov_block_trace(
                n_nodes, tasks=[0, 1], write_fraction=0.5,
                n_references=500, seed=12,
            )
            report = run_trace(protocol, trace, verify=True)
            unit = cc1(1, n_nodes, 20)
            expected = (2 - report.write_fraction) * unit
            assert report.cost_per_reference == pytest.approx(expected)


class TestModePolicyIntegration:
    def test_oracle_policy_converges_to_the_cheap_mode(self):
        trace = markov_block_trace(
            16, tasks=list(range(8)), write_fraction=0.02,
            n_references=1500, seed=13,
        )
        system = System(SystemConfig(n_nodes=16))
        protocol = StenstromProtocol(
            system, mode_policy=OracleModePolicy(window=64)
        )
        run_trace(protocol, trace, verify=True)
        assert protocol.mode_of(0) is Mode.DISTRIBUTED_WRITE

    def test_oracle_policy_converges_to_global_read_when_writes_dominate(
        self,
    ):
        trace = markov_block_trace(
            16, tasks=list(range(8)), write_fraction=0.9,
            n_references=1500, seed=14,
        )
        system = System(SystemConfig(n_nodes=16))
        protocol = StenstromProtocol(
            system, mode_policy=OracleModePolicy(window=64)
        )
        run_trace(protocol, trace, verify=True)
        assert protocol.mode_of(0) is Mode.GLOBAL_READ
