"""Utilization accessors and heatmap grids over the flat counters."""

import pytest

from repro.errors import ConfigurationError
from repro.network.multicast import Multicaster, MulticastScheme
from repro.network.topology import OmegaNetwork
from repro.obs.heatmap import (
    link_heatmap,
    network_heatmaps,
    switch_heatmap,
)


def _loaded_network(n_ports=8):
    network = OmegaNetwork(n_ports)
    caster = Multicaster(network, MulticastScheme.COMBINED)
    caster.send_payload(0, 20, frozenset(range(1, n_ports)))
    caster.send_payload_one(3, 84, 6)
    return network


class TestUtilizationAccessors:
    def test_link_view_matches_link_objects(self):
        network = _loaded_network()
        view = network.link_utilization()
        assert view.n_levels == network.n_stages + 1
        assert view.n_positions == network.n_ports
        for level in range(view.n_levels):
            for position in range(view.n_positions):
                slot = level * view.n_positions + position
                link = network.link(level, position)
                assert view.bits[slot] == link.bits
                assert view.messages[slot] == link.messages

    def test_switch_view_matches_switch_objects(self):
        network = _loaded_network()
        view = network.switch_utilization()
        assert view.n_stages == network.n_stages
        assert view.n_positions == network.n_ports // 2
        for stage in range(view.n_stages):
            for index in range(view.n_positions):
                slot = stage * view.n_positions + index
                switch = network.switch(stage, index)
                assert view.messages[slot] == switch.messages
                assert view.splits[slot] == switch.splits

    def test_views_are_live_not_copies(self):
        network = OmegaNetwork(8)
        view = network.link_utilization()
        assert sum(view.bits) == 0
        caster = Multicaster(network, MulticastScheme.COMBINED)
        caster.send_payload_one(0, 20, 5)
        # The same view object sees traffic accounted after its creation.
        assert sum(view.bits) > 0


class TestHeatmaps:
    def test_link_grid_shape_and_totals(self):
        network = _loaded_network()
        grid = link_heatmap(network, "bits")
        assert grid.n_rows == network.n_stages + 1
        assert grid.n_cols == network.n_ports
        assert sum(sum(row) for row in grid.rows) == network.total_bits

    def test_switch_grid_shape(self):
        network = _loaded_network()
        grid = switch_heatmap(network, "messages")
        assert grid.n_rows == network.n_stages
        assert grid.n_cols == network.n_ports // 2

    def test_unknown_metric_rejected(self):
        network = OmegaNetwork(8)
        with pytest.raises(ConfigurationError):
            link_heatmap(network, "splits")
        with pytest.raises(ConfigurationError):
            switch_heatmap(network, "bits")

    def test_render_is_deterministic_and_shaped(self):
        network = _loaded_network()
        grid = link_heatmap(network, "bits")
        first, second = grid.render(), grid.render()
        assert first == second
        lines = first.splitlines()
        assert len(lines) == grid.n_rows + 1  # header + one line per row
        assert all("|" in line for line in lines[1:])

    def test_render_empty_network_all_blank(self):
        grid = link_heatmap(OmegaNetwork(8), "bits")
        assert grid.max_value == 0
        body = grid.render().splitlines()[1]
        cells = body.split("|")[1]
        assert set(cells) == {" "}

    def test_to_dict_is_pure_integers(self):
        network = _loaded_network()
        document = network_heatmaps(network)
        assert document["n_ports"] == 8
        for key in (
            "link_bits",
            "link_messages",
            "switch_messages",
            "switch_splits",
        ):
            payload = document[key]
            assert all(
                isinstance(value, int)
                for row in payload["rows"]
                for value in row
            )


class TestWideGridFolding:
    def _wide(self, n_cols, n_rows=2):
        from repro.obs.heatmap import Heatmap

        rows = [[0] * n_cols for _ in range(n_rows)]
        rows[0][n_cols - 1] = 9  # hot spot in the last column
        rows[1][0] = 4
        return Heatmap("link", "bits", "L", rows)

    def test_n1024_folds_to_bounded_width(self):
        from repro.obs.heatmap import MAX_RENDER_COLS

        grid = self._wide(1024)
        lines = grid.render().splitlines()
        assert "…elided" in lines[0]
        assert f"[{1024 // MAX_RENDER_COLS} cols/cell" in lines[0]
        for line in lines[1:]:
            cells = line.split("|")[1]
            assert len(cells) <= MAX_RENDER_COLS

    def test_folding_keeps_hot_spots_and_true_totals(self):
        grid = self._wide(1024)
        lines = grid.render().splitlines()
        # The group maximum preserves the lone hot cell at full
        # intensity, and row totals still sum the unfolded row.
        assert lines[1].split("|")[1][-1] == "@"
        assert lines[1].rstrip().endswith(" 9")
        assert lines[2].rstrip().endswith(" 4")

    def test_explicit_max_cols_override(self):
        grid = self._wide(16)
        lines = grid.render(max_cols=8).splitlines()
        assert "[2 cols/cell" in lines[0]
        assert len(lines[1].split("|")[1]) == 8
        with pytest.raises(ConfigurationError):
            grid.render(max_cols=0)

    def test_narrow_grids_carry_no_marker(self):
        network = _loaded_network()
        rendered = link_heatmap(network, "bits").render()
        assert "elided" not in rendered

    def test_to_dict_never_folds(self):
        grid = self._wide(1024)
        grid.render()
        data = grid.to_dict()
        assert data["n_cols"] == 1024
        assert len(data["rows"][0]) == 1024
        assert data["max"] == 9
