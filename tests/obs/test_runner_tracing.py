"""Runner integration: ``trace_dir`` artifacts and the journal schema."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    Executor,
    ResultCache,
    RunJournal,
    WorkloadSpec,
    execute_spec,
)
from repro.runner.journal import JOURNAL_SCHEMA, read_journal
from repro.runner.spec import ExperimentSpec
from repro.sim.system import SystemConfig


def make_cell(seed=3) -> ExperimentSpec:
    return ExperimentSpec(
        protocol="two-mode",
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=8,
            n_references=120,
            write_fraction=0.3,
            seed=seed,
            tasks=(0, 1, 2),
        ),
        config=SystemConfig(n_nodes=8),
    )


class TestTraceDir:
    def test_artifacts_written_per_cell(self, tmp_path):
        cell = make_cell()
        trace_dir = tmp_path / "traces"
        Executor(workers=0, trace_dir=trace_dir).run([cell])
        stem = cell.spec_hash[:12]
        jsonl = trace_dir / f"{stem}.trace.jsonl"
        chrome = trace_dir / f"{stem}.chrome.json"
        heat = trace_dir / f"{stem}.heatmap.json"
        for path in (jsonl, chrome, heat):
            assert path.exists(), path
        document = json.loads(chrome.read_text())
        timestamps = [e["ts"] for e in document["traceEvents"]]
        assert timestamps == sorted(timestamps)

    def test_traced_report_matches_untraced(self, tmp_path):
        cell = make_cell()
        untraced = Executor(workers=0).run([cell])
        traced = Executor(
            workers=0, trace_dir=tmp_path / "traces"
        ).run([cell])
        expected = untraced[0].report.to_dict()
        observed = traced[0].report.to_dict()
        observed["stats"].pop("metrics", None)
        assert observed == expected

    def test_same_seed_traces_are_byte_identical(self, tmp_path):
        cell = make_cell()
        stem = cell.spec_hash[:12]
        outputs = []
        for name in ("a", "b"):
            trace_dir = tmp_path / name
            Executor(workers=0, trace_dir=trace_dir).run([cell])
            outputs.append(
                tuple(
                    (trace_dir / f"{stem}{suffix}").read_bytes()
                    for suffix in (
                        ".trace.jsonl", ".chrome.json", ".heatmap.json"
                    )
                )
            )
        assert outputs[0] == outputs[1]

    def test_trace_dir_conflicts_with_task_fn(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Executor(trace_dir=tmp_path, task_fn=execute_spec)

    def test_tracing_bypasses_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cell = make_cell()
        Executor(workers=0, cache=cache).run([cell])
        trace_dir = tmp_path / "traces"
        journal = RunJournal()
        results = Executor(
            workers=0, cache=cache, trace_dir=trace_dir, journal=journal
        ).run([cell])
        # Executed (not served from cache), and the artifacts exist.
        assert not results[0].cached
        assert journal.counts()["cached"] == 0
        assert (trace_dir / f"{cell.spec_hash[:12]}.trace.jsonl").exists()


class TestJournalSchema:
    def test_every_record_carries_the_schema_version(self, tmp_path):
        path = tmp_path / "run.jsonl"
        Executor(
            workers=0, journal=RunJournal(path)
        ).run([make_cell()])
        events = read_journal(path)
        assert events
        assert all(e["schema"] == JOURNAL_SCHEMA for e in events)

    def test_traced_task_finish_carries_metrics(self, tmp_path):
        path = tmp_path / "run.jsonl"
        Executor(
            workers=0,
            journal=RunJournal(path),
            trace_dir=tmp_path / "traces",
        ).run([make_cell()])
        finish = [
            e for e in read_journal(path) if e["event"] == "task_finish"
        ]
        assert finish and "metrics" in finish[0]
        assert finish[0]["metrics"]["counters"]["messages"] > 0

    def test_untraced_task_finish_has_no_metrics(self, tmp_path):
        path = tmp_path / "run.jsonl"
        Executor(workers=0, journal=RunJournal(path)).run([make_cell()])
        finish = [
            e for e in read_journal(path) if e["event"] == "task_finish"
        ]
        assert finish and "metrics" not in finish[0]

    def test_reader_tolerates_unknown_keys_and_junk_lines(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps(
                        {
                            "event": "task_finish",
                            "schema": JOURNAL_SCHEMA + 5,
                            "novel_field": [1, 2, 3],
                        }
                    ),
                    '"just a string"',
                    "",
                    json.dumps({"event": "mystery_event", "schema": 1}),
                ]
            )
            + "\n"
        )
        events = read_journal(path)
        assert len(events) == 2
        assert events[0]["novel_field"] == [1, 2, 3]
        assert events[1]["event"] == "mystery_event"
