"""MetricsRegistry and Histogram: buckets, snapshots, merging."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestHistogram:
    def test_inclusive_upper_bounds(self):
        hist = Histogram((1, 2, 4))
        for value in (1, 2, 2, 4):
            hist.observe(value)
        assert hist.counts == [1, 2, 1, 0]

    def test_overflow_bucket(self):
        hist = Histogram((1, 2, 4))
        hist.observe(5)
        hist.observe(1000)
        assert hist.counts == [0, 0, 0, 2]

    def test_total_and_sum(self):
        hist = Histogram((10,))
        hist.observe(3)
        hist.observe(7, increment=2)
        assert hist.total == 3
        assert hist.sum == 3 + 7 * 2

    @pytest.mark.parametrize("bad", [(), (2, 1), (1, 1, 2)])
    def test_bad_bounds_rejected(self, bad):
        with pytest.raises(ValueError):
            Histogram(bad)


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("messages")
        registry.inc("messages", 4)
        registry.set_gauge("hit_rate", 0.25)
        registry.set_gauge("hit_rate", 0.5)
        assert registry.counters["messages"] == 5
        assert registry.gauges["hit_rate"] == 0.5

    def test_observe_creates_histogram_with_default_buckets(self):
        registry = MetricsRegistry()
        registry.observe("fanout", 3)
        assert registry.histograms["fanout"].bounds == DEFAULT_BUCKETS

    def test_empty_property(self):
        registry = MetricsRegistry()
        assert registry.empty
        registry.inc("x")
        assert not registry.empty

    def test_to_dict_sorted_and_round_trips(self):
        registry = MetricsRegistry()
        registry.inc("zeta")
        registry.inc("alpha", 2)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 9)
        snapshot = registry.to_dict()
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        rebuilt = MetricsRegistry.from_dict(snapshot)
        assert rebuilt.to_dict() == snapshot

    def test_merge_adds_counters_and_histogram_cells(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        a.observe("h", 1, (1, 2))
        b.observe("h", 2, (1, 2))
        a.merge(b)
        assert a.counters["n"] == 3
        assert a.histograms["h"].counts == [1, 1, 0]
        assert a.histograms["h"].total == 2

    def test_merge_rejects_mismatched_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1, (1, 2))
        b.observe("h", 1, (1, 4))
        with pytest.raises(ValueError):
            a.merge(b)
