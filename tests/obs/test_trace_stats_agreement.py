"""Trace <-> Stats agreement: every counted event appears in the trace.

The recorder emits exactly one ``message`` event per
``Stats.record_traffic`` call and one fault event (whose kind equals
the ``Stats`` counter name) per fault counter increment, so agreement
reduces to counting trace events.  These tests exercise seeded runs at
N in {8, 16}, fault-free and under a fault plan.
"""

import pytest

from repro.analysis.compare import default_factories
from repro.faults.plan import FaultPlan
from repro.obs.recorder import TraceRecorder
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.markov import markov_block_trace

FAULTY_PLAN = FaultPlan(
    drop_probability=0.05,
    duplicate_probability=0.02,
    delay_probability=0.02,
    seed=0,
)


def _traced_run(n_nodes, fault_plan=None, protocol_name="two-mode"):
    system = System(SystemConfig(n_nodes=n_nodes), fault_plan=fault_plan)
    protocol = default_factories()[protocol_name](system)
    trace = markov_block_trace(
        n_nodes, tasks=range(4), write_fraction=0.3,
        n_references=800, seed=2,
    )
    recorder = TraceRecorder()
    report = run_trace(protocol, trace, recorder=recorder)
    return recorder, report


@pytest.mark.parametrize("n_nodes", [8, 16])
@pytest.mark.parametrize(
    "fault_plan", [None, FAULTY_PLAN], ids=["clean", "faulty"]
)
class TestTraceStatsAgreement:
    def test_every_fault_counter_matches_trace_events(
        self, n_nodes, fault_plan
    ):
        recorder, report = _traced_run(n_nodes, fault_plan)
        by_kind = recorder.counts_by_kind()
        fault_counters = {
            name: value
            for name, value in report.stats.events.items()
            if name.startswith("fault_")
        }
        for name, value in fault_counters.items():
            assert by_kind.get(name, 0) == value, name
        # No fault event kinds beyond the counted ones.
        for kind in by_kind:
            if kind.startswith("fault_"):
                assert kind in fault_counters

    def test_mode_switches_match_trace_events(self, n_nodes, fault_plan):
        recorder, report = _traced_run(n_nodes, fault_plan)
        counted = report.stats.events.get("mode_switches", 0)
        assert recorder.counts_by_kind().get("mode_switches", 0) == counted

    def test_ownership_transfers_match_trace_events(
        self, n_nodes, fault_plan
    ):
        recorder, report = _traced_run(n_nodes, fault_plan)
        counted = report.stats.events.get("ownership_transfers", 0)
        traced = recorder.counts_by_kind().get("ownership_transfers", 0)
        assert traced == counted

    def test_message_events_match_total_messages(self, n_nodes, fault_plan):
        recorder, report = _traced_run(n_nodes, fault_plan)
        traced = recorder.counts_by_kind().get("message", 0)
        assert traced == report.stats.total_messages


class TestAgreementIsMeaningful:
    """Guard against the agreement tests passing vacuously on zeros."""

    def test_clean_run_switches_modes(self):
        _, report = _traced_run(16)
        assert report.stats.events.get("mode_switches", 0) > 0

    def test_faulty_run_exercises_fault_counters(self):
        _, report = _traced_run(16, FAULTY_PLAN)
        for name in ("fault_drops", "fault_duplicates", "fault_retries"):
            assert report.stats.events.get(name, 0) > 0, name
