"""Exporters: JSONL round trip, Chrome trace validity, determinism."""

import json

from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    trace_lines,
    write_chrome_trace,
    write_heatmaps,
    write_jsonl,
)
from repro.obs.recorder import TraceRecorder
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.synthetic import random_trace


def _traced_run(n_nodes=8, seed=5, n_references=200):
    protocol = StenstromProtocol(System(SystemConfig(n_nodes=n_nodes)))
    trace = random_trace(
        n_nodes, n_references, write_fraction=0.3, seed=seed
    )
    recorder = TraceRecorder()
    run_trace(protocol, trace, recorder=recorder)
    return recorder, protocol


class TestJsonl:
    def test_round_trip(self, tmp_path):
        recorder, _ = _traced_run()
        path = write_jsonl(recorder, tmp_path / "t.jsonl")
        events = read_jsonl(path)
        assert len(events) == len(recorder.events)
        assert events[0] == recorder.events[0].to_dict()

    def test_lines_are_compact_sorted_json(self):
        recorder, _ = _traced_run(n_references=20)
        for line in trace_lines(recorder):
            parsed = json.loads(line)
            assert json.dumps(
                parsed, sort_keys=True, separators=(",", ":")
            ) == line


class TestChromeTrace:
    def test_valid_json_with_non_decreasing_timestamps(self, tmp_path):
        recorder, _ = _traced_run()
        path = write_chrome_trace(recorder, tmp_path / "t.chrome.json")
        document = json.load(open(path))
        timestamps = [event["ts"] for event in document["traceEvents"]]
        assert timestamps == sorted(timestamps)

    def test_references_are_complete_events(self):
        recorder, _ = _traced_run()
        document = chrome_trace(recorder)
        phases = {event["ph"] for event in document["traceEvents"]}
        assert "X" in phases  # reference spans
        assert "i" in phases  # instants
        spans = [
            event
            for event in document["traceEvents"]
            if event["ph"] == "X"
        ]
        assert all("dur" in event for event in spans)

    def test_event_counts_match_recorder(self):
        recorder, _ = _traced_run()
        document = chrome_trace(recorder)
        # One metadata record (process_name) on top of the real events.
        assert len(document["traceEvents"]) == len(recorder.events) + 1


class TestDeterminism:
    def test_same_seed_runs_export_identical_bytes(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            recorder, protocol = _traced_run(seed=9)
            jsonl = write_jsonl(recorder, tmp_path / f"{name}.jsonl")
            chrome = write_chrome_trace(
                recorder, tmp_path / f"{name}.chrome.json"
            )
            heat = write_heatmaps(
                protocol.system.network, tmp_path / f"{name}.heat.json"
            )
            paths.append((jsonl, chrome, heat))
        for left, right in zip(paths[0], paths[1]):
            assert left.read_bytes() == right.read_bytes()

    def test_different_seed_differs(self, tmp_path):
        first, _ = _traced_run(seed=9)
        second, _ = _traced_run(seed=10)
        a = write_jsonl(first, tmp_path / "a.jsonl")
        b = write_jsonl(second, tmp_path / "b.jsonl")
        assert a.read_bytes() != b.read_bytes()
