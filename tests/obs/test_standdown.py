"""Stand-down coverage: observers must disable the replay shortcuts.

The fast-path table and the batched kernel are only sound when nothing
needs to see individual references.  When a :class:`TraceRecorder` is
attached, both must hand back ``None`` and the replay must fall back to
the per-reference loop -- with results bit-identical to the shortcut
runs.  A :class:`TelemetrySampler` is the opposite case: it only *reads*
a registry, so it must neither disable the shortcuts nor perturb the
replay it observes.
"""

import pytest

from repro.cache.state import Mode
from repro.obs.hooks import attach_recorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import TraceRecorder
from repro.obs.telemetry import TelemetrySampler
from repro.protocol.modes import StaticModePolicy
from repro.sim.engine import run_trace
from repro.workloads.markov import markov_block_trace

from tests.protocol.conftest import build

MODES = pytest.mark.parametrize(
    "default_mode",
    [Mode.GLOBAL_READ, Mode.DISTRIBUTED_WRITE],
    ids=["gr", "dw"],
)
SIZES = pytest.mark.parametrize("n_nodes", [16, 64])


def _trace(n_nodes, *, compiled):
    return markov_block_trace(
        n_nodes, list(range(8)), 0.3, 600, seed=5, compiled=compiled
    )


def _run_batched(n_nodes, default_mode):
    """A shortcut replay; asserts the kernel actually engaged."""
    _, protocol = build(
        n_nodes=n_nodes, block_size_words=4, default_mode=default_mode
    )
    report = run_trace(
        protocol,
        _trace(n_nodes, compiled=True),
        verify=False,
        check_invariants_every=0,
    )
    kernel = protocol.batched_kernel()
    assert kernel is not None and kernel.batched_refs > 0
    return report


@MODES
@SIZES
class TestRecorderStandDown:
    def test_shortcuts_disable_and_results_match(
        self, n_nodes, default_mode
    ):
        batched_report = _run_batched(n_nodes, default_mode)

        _, traced = build(
            n_nodes=n_nodes, block_size_words=4, default_mode=default_mode
        )
        recorder = TraceRecorder()
        attach_recorder(traced, recorder)
        assert traced.fastpath() is None
        assert traced.batched_kernel() is None

        traced_report = run_trace(
            traced,
            _trace(n_nodes, compiled=True),
            verify=False,
            check_invariants_every=0,
            recorder=recorder,
        )
        # The recorder saw every reference as a span...
        assert len(recorder.events) > 0
        # ...and the replay stayed bit-identical.  Only the recorder's
        # metrics registry (absent on the shortcut run) may differ.
        traced_dict = traced_report.to_dict()
        traced_dict["stats"].pop("metrics", None)
        assert traced_dict == batched_report.to_dict()

    def test_batchable_policy_does_not_override_stand_down(
        self, n_nodes, default_mode
    ):
        # A batchable policy normally *enables* the kernel; an attached
        # recorder must still win.
        _, protocol = build(
            n_nodes=n_nodes,
            block_size_words=4,
            mode_policy=StaticModePolicy(default_mode),
        )
        assert protocol.batched_kernel() is not None
        _, observed = build(
            n_nodes=n_nodes,
            block_size_words=4,
            mode_policy=StaticModePolicy(default_mode),
        )
        attach_recorder(observed, TraceRecorder())
        assert observed.batched_kernel() is None


@MODES
@SIZES
class TestSamplerIsPassive:
    def test_sampler_neither_gates_nor_perturbs(
        self, n_nodes, default_mode
    ):
        batched_report = _run_batched(n_nodes, default_mode)

        _, protocol = build(
            n_nodes=n_nodes, block_size_words=4, default_mode=default_mode
        )
        # A sampler over a detached registry: the shortcuts stay engaged.
        sampler = TelemetrySampler(MetricsRegistry())
        assert protocol.fastpath() is not None
        assert protocol.batched_kernel() is not None
        sampler.sample()
        report = run_trace(
            protocol,
            _trace(n_nodes, compiled=True),
            verify=False,
            check_invariants_every=0,
        )
        sampler.sample()
        assert protocol.batched_kernel().batched_refs > 0
        assert report.to_dict() == batched_report.to_dict()
        assert sampler.registry.empty

    def test_sampling_an_attached_recorder_is_read_only(
        self, n_nodes, default_mode
    ):
        # Sampling the recorder's registry mid-setup must not change
        # what the traced replay reports.
        _, traced = build(
            n_nodes=n_nodes, block_size_words=4, default_mode=default_mode
        )
        recorder = TraceRecorder()
        attach_recorder(traced, recorder)
        sampler = TelemetrySampler(recorder.metrics)
        report = run_trace(
            traced,
            _trace(n_nodes, compiled=True),
            verify=False,
            check_invariants_every=0,
            recorder=recorder,
        )
        before = recorder.metrics.to_dict()
        tick = sampler.sample()
        assert tick == 0.0
        assert recorder.metrics.to_dict() == before
        assert report.to_dict()["stats"]["metrics"] == before
