"""TraceRecorder: the virtual clock, spans, events and fed metrics."""

from repro.network.multicast import Multicaster, MulticastScheme
from repro.network.topology import OmegaNetwork
from repro.obs.recorder import TraceRecorder


def _send(network=None, source=0, dests=(3, 5, 6), bits=20):
    network = network or OmegaNetwork(8)
    caster = Multicaster(network, MulticastScheme.COMBINED)
    return caster.send_payload(source, bits, frozenset(dests))


class TestVirtualClock:
    def test_ticks_advance_per_event_never_wall_clock(self):
        recorder = TraceRecorder()
        recorder.instant("k", "a", 0)
        recorder.instant("k", "b", 1)
        assert [event.ts for event in recorder.events] == [0, 1]
        assert recorder.now == 2

    def test_reference_span_encloses_inner_events(self):
        recorder = TraceRecorder()
        recorder.begin_reference(0, node=2, op="write", block=7, offset=1)
        recorder.instant("message", "inv", 2)
        recorder.instant("message", "ack", 3)
        recorder.end_reference()
        span = recorder.events[-1]
        assert span.kind == "reference"
        assert span.name == "write"
        assert span.ts == 0
        assert span.ts + span.dur == recorder.now

    def test_end_without_begin_is_a_no_op(self):
        recorder = TraceRecorder()
        recorder.end_reference()
        assert len(recorder) == 0


class TestEvents:
    def test_message_event_carries_routing_outcome(self):
        recorder = TraceRecorder()
        result = _send()
        recorder.message("invalidate", 0, (3, 5, 6), 20, result)
        event = recorder.events[0]
        args = dict(event.args)
        assert event.kind == "message"
        assert event.name == "invalidate"
        assert args["dests"] == 3
        assert args["cost"] == result.cost
        assert args["links"] == result.links_used
        assert args["scheme"] == result.scheme.name

    def test_message_feeds_fanout_histogram_and_scheme_counters(self):
        recorder = TraceRecorder()
        result = _send()
        recorder.message("invalidate", 0, (3, 5, 6), 20, result)
        metrics = recorder.metrics
        assert metrics.counters["messages"] == 1
        scheme = result.scheme.name
        assert metrics.counters[f"scheme_{scheme}_messages"] == 1
        assert metrics.counters[f"scheme_{scheme}_bits"] == result.cost
        assert metrics.histograms["multicast_fanout"].total == 1

    def test_unicast_does_not_count_as_fanout(self):
        recorder = TraceRecorder()
        network = OmegaNetwork(8)
        caster = Multicaster(network, MulticastScheme.COMBINED)
        result = caster.send_payload_one(0, 20, 5)
        recorder.message("req", 0, (5,), 20, result)
        assert "multicast_fanout" not in recorder.metrics.histograms

    def test_fault_event_name_matches_counter_name(self):
        recorder = TraceRecorder()
        recorder.fault("fault_drops", 3, source=0)
        event = recorder.events[0]
        assert event.kind == "fault_drops"
        assert event.name == "fault_drops"
        assert recorder.metrics.counters["fault_drops"] == 1

    def test_retry_fault_feeds_depth_histogram(self):
        recorder = TraceRecorder()
        recorder.fault("fault_retries", 0, attempt=2)
        assert recorder.metrics.histograms["retry_depth"].total == 1

    def test_counts_by_name_and_kind(self):
        recorder = TraceRecorder()
        recorder.mode_switch(4, 1, "global-read")
        recorder.mode_switch(4, 1, "distributed-write")
        recorder.ownership_transfer(4, 1, 2)
        assert recorder.counts_by_kind() == {
            "mode_switches": 2,
            "ownership_transfers": 1,
        }
        assert recorder.counts_by_name()["global-read"] == 1


class TestMulticasterHook:
    def test_net_send_recorded_for_both_entry_points(self):
        recorder = TraceRecorder()
        network = OmegaNetwork(8)
        caster = Multicaster(
            network, MulticastScheme.COMBINED, recorder=recorder
        )
        caster.send_payload(0, 20, frozenset((3, 5)))
        caster.send_payload_one(1, 20, 6)
        assert recorder.counts_by_kind() == {"net_send": 2}
        assert recorder.metrics.counters["net_sends"] == 2

    def test_default_multicaster_records_nothing(self):
        network = OmegaNetwork(8)
        caster = Multicaster(network, MulticastScheme.COMBINED)
        assert caster.recorder is None
