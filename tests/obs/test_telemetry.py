"""Tests for :mod:`repro.obs.telemetry` and the flight recorder.

Covers the quantile estimator added to :class:`Histogram`, ring
bounding, sampler determinism (virtual ticks) and read-only-ness,
Prometheus exposition shape, sparklines, the ``repro top`` frame
renderer, the :class:`FlightRecorder` ring + dump format, and the
executor's opt-in latency instrumentation.
"""

import json

import pytest

from repro.obs.metrics import LATENCY_BUCKETS_MS, Histogram, MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.telemetry import (
    TelemetrySampler,
    TimeSeriesRing,
    parse_exposition,
    prometheus_text,
    render_top,
    sparkline,
)


class TestQuantile:
    def test_empty_histogram_has_no_quantiles(self):
        hist = Histogram((1, 2))
        assert hist.quantile(0.5) is None
        assert hist.percentiles() == {}

    def test_q_outside_unit_interval_rejected(self):
        hist = Histogram((1, 2))
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_interpolates_inside_the_target_bucket(self):
        # Ten observations, all in the (0, 10] bucket: the median rank
        # sits halfway through it, so interpolation gives 5.0.
        hist = Histogram((10, 20))
        for _ in range(10):
            hist.observe(7)
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_uses_previous_bound_as_lower_edge(self):
        hist = Histogram((10, 20))
        for _ in range(4):
            hist.observe(15)  # all in the (10, 20] bucket
        # Median rank is halfway through a bucket spanning 10..20.
        assert hist.quantile(0.5) == pytest.approx(15.0)

    def test_overflow_observations_clamp_to_last_bound(self):
        hist = Histogram((1, 2))
        hist.observe(1000)
        assert hist.quantile(0.5) == pytest.approx(2.0)
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_percentiles_keys_and_ordering(self):
        hist = Histogram(LATENCY_BUCKETS_MS)
        for value in (0.5, 3, 8, 40, 900):
            hist.observe(value)
        pct = hist.percentiles()
        assert set(pct) == {"p50", "p90", "p99"}
        assert pct["p50"] <= pct["p90"] <= pct["p99"]

    def test_quantile_does_not_change_serialisation(self):
        hist = Histogram((1, 2))
        hist.observe(1)
        before = hist.to_dict()
        hist.quantile(0.5)
        hist.percentiles()
        assert hist.to_dict() == before


class TestTimeSeriesRing:
    def test_bounded_with_dropped_counter(self):
        ring = TimeSeriesRing(3)
        for tick in range(5):
            ring.append(tick, tick * 10)
        assert len(ring) == 3
        assert ring.dropped == 2
        assert ring.samples() == [(2, 20), (3, 30), (4, 40)]
        assert ring.values() == [20, 30, 40]
        assert ring.last() == (4, 40)

    def test_empty_ring(self):
        ring = TimeSeriesRing(4)
        assert len(ring) == 0
        assert ring.last() is None
        assert ring.samples() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesRing(0)

    def test_to_dict_is_json_ready(self):
        ring = TimeSeriesRing(2)
        ring.append(0, 1.5)
        data = json.loads(json.dumps(ring.to_dict()))
        assert data == {
            "capacity": 2, "dropped": 0, "ticks": [0], "values": [1.5],
        }


class TestTelemetrySampler:
    def test_virtual_ticks_are_deterministic(self):
        registry = MetricsRegistry()
        registry.inc("messages", 5)
        sampler = TelemetrySampler(registry)
        assert sampler.empty
        assert sampler.sample() == 0.0
        registry.inc("messages", 2)
        assert sampler.sample() == 1.0
        assert not sampler.empty
        ring = sampler.series("counter.messages")
        assert ring.samples() == [(0.0, 5), (1.0, 7)]

    def test_wall_clock_mode_stamps_the_given_time(self):
        registry = MetricsRegistry()
        registry.inc("messages")
        sampler = TelemetrySampler(registry)
        assert sampler.sample(now=123.5) == 123.5
        assert sampler.series("counter.messages").last() == (123.5, 1)

    def test_sampling_is_read_only_without_sources(self):
        registry = MetricsRegistry()
        registry.inc("a", 3)
        registry.set_gauge("b", 1.0)
        registry.observe("h", 2)
        before = registry.to_dict()
        TelemetrySampler(registry).sample()
        assert registry.to_dict() == before

    def test_sources_set_gauges_before_the_snapshot(self):
        registry = MetricsRegistry()
        sampler = TelemetrySampler(registry)
        sampler.add_source(lambda: {"queue_depth": 7})
        sampler.sample()
        assert registry.gauges["queue_depth"] == 7
        assert sampler.series("gauge.queue_depth").last() == (0.0, 7)

    def test_rings_appear_lazily_for_new_metrics(self):
        registry = MetricsRegistry()
        registry.inc("early")
        sampler = TelemetrySampler(registry)
        sampler.sample()
        registry.inc("late")
        sampler.sample()
        assert len(sampler.series("counter.early")) == 2
        assert len(sampler.series("counter.late")) == 1
        assert sampler.names() == ["counter.early", "counter.late"]

    def test_counter_and_gauge_namespaces_do_not_collide(self):
        registry = MetricsRegistry()
        registry.inc("x", 2)
        registry.set_gauge("x", 9.0)
        sampler = TelemetrySampler(registry)
        sampler.sample()
        assert sampler.series("counter.x").last() == (0.0, 2)
        assert sampler.series("gauge.x").last() == (0.0, 9.0)

    def test_to_dict_sorted_and_bounded(self):
        registry = MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        sampler = TelemetrySampler(registry, capacity=2)
        for _ in range(4):
            sampler.sample()
        data = sampler.to_dict()
        assert list(data) == ["counter.a", "counter.z"]
        assert data["counter.a"]["dropped"] == 2
        assert len(data["counter.a"]["values"]) == 2


class TestPrometheusText:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("serve.requests", 3)
        registry.set_gauge("serve.queue_depth", 2)
        hist = registry.histogram("latency.submit_to_admit_ms", (1.0, 5.0))
        hist.observe(0.4)
        hist.observe(3.0)
        hist.observe(99.0)  # overflow
        return registry

    def test_counter_and_gauge_lines(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_serve_requests counter\n" in text
        assert "repro_serve_requests 3\n" in text
        assert "# TYPE repro_serve_queue_depth gauge\n" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = prometheus_text(self._registry())
        name = "repro_latency_submit_to_admit_ms"
        assert f'{name}_bucket{{le="1.0"}} 1' in text
        assert f'{name}_bucket{{le="5.0"}} 2' in text
        assert f'{name}_bucket{{le="+Inf"}} 3' in text
        assert f"{name}_count 3" in text

    def test_deterministic_for_identical_registries(self):
        assert prometheus_text(self._registry()) == prometheus_text(
            self._registry()
        )

    def test_custom_prefix_and_name_sanitisation(self):
        registry = MetricsRegistry()
        registry.inc("weird-name.with/slash")
        text = prometheus_text(registry, prefix="x_")
        assert "x_weird_name_with_slash 1" in text

    def test_parse_exposition_round_trips_scalars(self):
        registry = self._registry()
        values = parse_exposition(prometheus_text(registry))
        assert values["repro_serve_requests"] == 3
        assert values["repro_serve_queue_depth"] == 2
        assert (
            values['repro_latency_submit_to_admit_ms_bucket{le="+Inf"}']
            == 3
        )


class TestSparkline:
    def test_empty_series_is_empty(self):
        assert sparkline([]) == ""

    def test_zero_blank_peak_at_ramp_top(self):
        line = sparkline([0, 5, 10], width=10)
        assert line[0] == " "
        assert line[-1] == "@"
        assert line[1] != " "  # positive never renders blank

    def test_folds_to_width_keeping_maxima(self):
        values = [0] * 99 + [100]
        line = sparkline(values, width=10)
        assert len(line) <= 10
        assert line[-1] == "@"

    def test_all_zero_series(self):
        assert sparkline([0, 0, 0], width=8) == "   "


class TestFlightRecorder:
    def test_ring_bounds_and_drops(self):
        flight = FlightRecorder(capacity=3)
        for index in range(5):
            flight.record("fault", f"event-{index}")
        assert len(flight) == 3
        assert flight.dropped == 2
        names = [event["name"] for event in flight.snapshot()]
        assert names == ["event-2", "event-3", "event-4"]
        # Sequence numbers are global, not ring positions.
        assert [e["seq"] for e in flight.snapshot()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_record_keeps_extra_fields(self):
        flight = FlightRecorder()
        flight.record("rejection", "serve_reject", reason="queue full")
        (event,) = flight.snapshot()
        assert event["kind"] == "rejection"
        assert event["reason"] == "queue full"

    def test_dump_writes_header_then_events(self, tmp_path):
        flight = FlightRecorder(capacity=8)
        flight.record("fault", "fault_drops", block=3)
        flight.record("failure", "CoherenceError")
        path = flight.dump(tmp_path / "dump.jsonl", reason="test")
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert lines[0]["flight_dump"] == "test"
        assert lines[0]["events"] == 2
        assert lines[1]["name"] == "fault_drops"
        assert lines[2]["name"] == "CoherenceError"
        assert flight.dumps == 1

    def test_snapshot_returns_copies(self):
        flight = FlightRecorder()
        flight.record("fault", "x")
        flight.snapshot()[0]["name"] = "mutated"
        assert flight.snapshot()[0]["name"] == "x"


class TestRenderTop:
    def _frame(self):
        registry = MetricsRegistry()
        registry.inc("serve.requests", 10)
        registry.inc("serve.accepted", 9)
        registry.inc("serve.executed", 6)
        registry.inc("serve.rejected", 1)
        registry.inc("result_cache.hot_hits", 3)
        registry.inc("result_cache.hot_misses", 1)
        registry.inc("serve.references", 600)
        registry.inc("serve.network_bits", 90000)
        registry.set_gauge("serve.queue_depth", 2)
        registry.set_gauge("serve.workers_busy", 1)
        for leg in (
            "latency.submit_to_admit_ms",
            "latency.admit_to_start_ms",
            "latency.start_to_finish_ms",
        ):
            registry.observe(leg, 2.0, LATENCY_BUCKETS_MS)
        sampler = TelemetrySampler(registry)
        sampler.sample()
        return {
            "type": "metrics",
            "draining": False,
            "metrics": registry.to_dict(),
            "series": sampler.to_dict(),
            "flight": {"events": 4, "dropped": 0, "dumps": 1},
        }

    def test_renders_counts_percentiles_and_hit_ratio(self):
        text = render_top(self._frame())
        assert "submitted=10" in text
        assert "executed=6" in text
        assert "rejected=1" in text
        assert "p50/p90/p99" in text
        assert "hit 75.0%" in text
        assert "queue depth:" in text
        assert "4 events" in text

    def test_rates_appear_with_a_previous_frame(self):
        frame = self._frame()
        previous = self._frame()
        previous["metrics"]["counters"]["serve.requests"] = 4
        text = render_top(frame, previous=previous, elapsed=2.0)
        assert "(+3.0/s)" in text

    def test_empty_frame_renders_without_crashing(self):
        text = render_top({"metrics": {}, "series": {}, "flight": {}})
        assert "submitted=0" in text
        assert "-/-/-" in text
        assert "hit n/a" in text


class TestExecutorLatencyMetrics:
    def _spec(self):
        from repro.runner.spec import ExperimentSpec, WorkloadSpec
        from repro.sim.system import SystemConfig

        return ExperimentSpec(
            protocol="no-cache",
            workload=WorkloadSpec(
                kind="markov",
                n_nodes=4,
                n_references=40,
                write_fraction=0.3,
                seed=0,
                tasks=(0, 1),
            ),
            config=SystemConfig(n_nodes=4),
        )

    def test_finish_observes_start_to_finish_latency(self):
        from repro.runner.executor import Executor

        registry = MetricsRegistry()
        Executor(metrics=registry).run([self._spec()])
        assert registry.counters["executor.tasks"] == 1
        hist = registry.histograms["latency.start_to_finish_ms"]
        assert hist.total == 1
        assert hist.percentiles().keys() == {"p50", "p90", "p99"}

    def test_metrics_default_is_off(self):
        from repro.runner.executor import Executor

        executor = Executor()
        assert executor.metrics is None
        results = executor.run([self._spec()])
        assert results[0].report is not None
