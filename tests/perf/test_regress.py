"""Baseline round-trip and the regression gate's two strictness levels."""

import json

import pytest

from repro.perf import (
    BenchResult,
    compare_to_baseline,
    load_baseline,
    write_baseline,
)
from repro.perf.regress import results_payload


def _result(name="bench", rate=1000.0, checks=None, work=500):
    return BenchResult(
        name=name,
        unit="refs",
        work=work,
        wall_time=work / rate,
        rate=rate,
        equivalent=True,
        checks=checks if checks is not None else {"total_bits": 42},
        plan_stats={"plans": 3, "hits": 10, "misses": 3},
    )


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    results = {"bench": _result()}
    write_baseline(results, path)
    baseline = load_baseline(path)
    assert baseline["benchmarks"]["bench"]["rate"] == 1000.0
    assert baseline["benchmarks"]["bench"]["checks"] == {"total_bits": 42}
    assert compare_to_baseline(results, baseline) == []


def test_unsupported_version_rejected(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"version": 99, "benchmarks": {}}))
    with pytest.raises(ValueError):
        load_baseline(path)


def test_small_slowdown_passes_large_slowdown_fails():
    baseline = results_payload({"bench": _result(rate=1000.0)})
    assert compare_to_baseline({"bench": _result(rate=900.0)}, baseline) == []
    problems = compare_to_baseline({"bench": _result(rate=700.0)}, baseline)
    assert len(problems) == 1
    assert "below the baseline" in problems[0]


def test_speedup_never_fails():
    baseline = results_payload({"bench": _result(rate=1000.0)})
    assert compare_to_baseline({"bench": _result(rate=5000.0)}, baseline) == []


def test_threshold_is_tunable():
    baseline = results_payload({"bench": _result(rate=1000.0)})
    slow = {"bench": _result(rate=880.0)}
    assert compare_to_baseline(slow, baseline, threshold=0.25) == []
    assert compare_to_baseline(slow, baseline, threshold=0.05) != []


def test_checks_mismatch_fails_even_without_timing():
    baseline = results_payload({"bench": _result(checks={"total_bits": 42})})
    drifted = {"bench": _result(checks={"total_bits": 43})}
    problems = compare_to_baseline(drifted, baseline, check_timing=False)
    assert len(problems) == 1
    assert "correctness" in problems[0]


def test_work_change_flagged():
    baseline = results_payload({"bench": _result(work=500)})
    problems = compare_to_baseline({"bench": _result(work=600)}, baseline)
    assert any("work changed" in problem for problem in problems)


def test_missing_benchmarks_flagged_both_directions():
    baseline = results_payload({"old": _result(name="old")})
    problems = compare_to_baseline({"new": _result(name="new")}, baseline)
    assert "new: not present in baseline" in problems
    assert "old: in baseline but not measured" in problems


def test_subset_mode_skips_the_coverage_check_only():
    baseline = results_payload(
        {"bench": _result(rate=1000.0), "old": _result(name="old")}
    )
    measured = {"bench": _result(rate=1000.0)}
    assert compare_to_baseline(measured, baseline, subset=True) == []
    assert "old: in baseline but not measured" in compare_to_baseline(
        measured, baseline
    )
    # Benchmarks that did run are still held to the full gate.
    slow = {"bench": _result(rate=100.0)}
    assert compare_to_baseline(slow, baseline, subset=True) != []


def test_equivalence_only_ignores_timing():
    baseline = results_payload({"bench": _result(rate=1000.0)})
    crawl = {"bench": _result(rate=1.0)}
    assert compare_to_baseline(crawl, baseline, check_timing=False) == []
    assert compare_to_baseline(crawl, baseline, check_timing=True) != []


class TestHistory:
    def _results(self):
        return {
            "bench": _result(rate=1234.5),
            "other": _result(name="other", rate=99.0),
        }

    def test_appends_one_row_per_run(self, tmp_path):
        from repro.perf.regress import append_history

        path = tmp_path / "BENCH_history.jsonl"
        append_history(
            self._results(),
            path,
            timestamp="2026-08-05T00:00:00+00:00",
            commit="abc123",
        )
        append_history(
            self._results(),
            path,
            timestamp="2026-08-05T00:01:00+00:00",
            commit="abc123",
        )
        rows = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(rows) == 2
        first = rows[0]
        assert first["timestamp"] == "2026-08-05T00:00:00+00:00"
        assert first["commit"] == "abc123"
        assert first["rates"] == {"bench": 1234.5, "other": 99.0}
        assert first["equivalent"] is True

    def test_defaults_fill_timestamp_and_commit(self, tmp_path):
        from repro.perf.regress import append_history

        path = append_history(
            self._results(), tmp_path / "history.jsonl"
        )
        row = json.loads(path.read_text())
        assert row["timestamp"]  # now(); format checked by fromisoformat
        from datetime import datetime

        datetime.fromisoformat(row["timestamp"])

    def test_latest_row_returns_the_last_line(self, tmp_path):
        from repro.perf.regress import append_history, latest_history_row

        path = tmp_path / "history.jsonl"
        assert latest_history_row(path) is None  # no file yet
        append_history(
            self._results(),
            path,
            timestamp="2026-08-05T00:00:00+00:00",
            commit="first",
        )
        append_history(
            self._results(),
            path,
            timestamp="2026-08-05T00:01:00+00:00",
            commit="second",
        )
        row = latest_history_row(path)
        assert row["commit"] == "second"
        assert row["rates"] == {"bench": 1234.5, "other": 99.0}

    def test_latest_row_skips_a_torn_tail(self, tmp_path):
        from repro.perf.regress import append_history, latest_history_row

        path = tmp_path / "history.jsonl"
        append_history(
            self._results(),
            path,
            timestamp="2026-08-05T00:00:00+00:00",
            commit="good",
        )
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"timestamp": "2026-08-05T00:0')  # torn write
        row = latest_history_row(path)
        assert row is not None and row["commit"] == "good"
