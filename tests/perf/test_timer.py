"""PhaseTimer behaviour with a deterministic injected clock."""

from repro.perf import PhaseTimer


class FakeClock:
    """Monotonic clock advanced by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_lap_charges_time_since_last_boundary():
    clock = FakeClock()
    timer = PhaseTimer(clock=clock)
    clock.advance(1.5)
    assert timer.lap("setup") == 1.5
    clock.advance(0.25)
    assert timer.lap("run") == 0.25
    assert timer.laps == {"setup": 1.5, "run": 0.25}
    assert timer.total == 1.75


def test_same_name_accumulates():
    clock = FakeClock()
    timer = PhaseTimer(clock=clock)
    clock.advance(1.0)
    timer.lap("run")
    clock.advance(2.0)
    timer.lap("run")
    assert timer.laps == {"run": 3.0}


def test_restart_discards_elapsed_time():
    clock = FakeClock()
    timer = PhaseTimer(clock=clock)
    clock.advance(5.0)
    timer.restart()
    clock.advance(1.0)
    timer.lap("run")
    assert timer.laps == {"run": 1.0}


def test_phase_context_manager_charges_its_scope():
    clock = FakeClock()
    timer = PhaseTimer(clock=clock)
    with timer.phase("work"):
        clock.advance(2.5)
    clock.advance(0.5)
    timer.lap("after")
    assert timer.laps == {"work": 2.5, "after": 0.5}


def test_phase_charges_even_on_exception():
    clock = FakeClock()
    timer = PhaseTimer(clock=clock)
    try:
        with timer.phase("work"):
            clock.advance(1.0)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert timer.laps == {"work": 1.0}


def test_as_dict_returns_a_copy():
    clock = FakeClock()
    timer = PhaseTimer(clock=clock)
    clock.advance(1.0)
    timer.lap("run")
    snapshot = timer.as_dict()
    snapshot["run"] = 99.0
    assert timer.laps == {"run": 1.0}


def test_run_trace_reports_phases():
    from repro.protocol.stenstrom import StenstromProtocol
    from repro.protocol.messages import MessageCosts
    from repro.sim.engine import run_trace
    from repro.sim.system import System, SystemConfig
    from repro.workloads.markov import markov_block_trace

    trace = markov_block_trace(
        8,
        tasks=[0, 1, 2, 3],
        write_fraction=0.3,
        n_references=200,
        seed=3,
    )
    system = System(SystemConfig(n_nodes=8, costs=MessageCosts.uniform(20)))
    protocol = StenstromProtocol(system)
    timer = PhaseTimer()
    report = run_trace(protocol, trace.references, timer=timer)
    assert report.n_references == 200
    assert set(timer.laps) == {"reset", "replay", "report"}
    assert all(seconds >= 0.0 for seconds in timer.laps.values())
