"""Harness smoke tests at tier-1-friendly sizes.

The committed benchmark sizes (``N = 64``, 20k references) belong to
``repro perf``; here each benchmark runs a miniature configuration so the
full equivalence machinery -- cached vs cold replay, bit-total
reconciliation -- executes in well under a second.
"""

import pytest

from repro.errors import ConfigurationError
from repro.perf import (
    BenchResult,
    bench_batched_replay,
    bench_fastpath_hit_rate,
    bench_multicast_fanout,
    bench_sweep_throughput,
    bench_trace_replay,
    benchmark_names,
)
from repro.perf.harness import EquivalenceError, _require, run_benchmarks


def _assert_well_formed(result, unit):
    assert isinstance(result, BenchResult)
    assert result.equivalent is True
    assert result.unit == unit
    assert result.work > 0
    assert result.wall_time > 0
    assert result.rate == result.work / result.wall_time
    payload = result.to_dict()
    assert payload["checks"] == result.checks
    assert payload["name"] == result.name


def test_trace_replay_small():
    result = bench_trace_replay(
        n_nodes=8, n_tasks=4, n_references=300, repeats=1
    )
    _assert_well_formed(result, "refs")
    assert result.name == "trace_replay_n8"
    assert result.work == 300
    assert result.checks["total_bits"] > 0
    assert result.plan_stats is not None
    assert result.plan_stats["hits"] > 0


def test_trace_replay_is_deterministic_across_runs():
    first = bench_trace_replay(
        n_nodes=8, n_tasks=4, n_references=300, repeats=1
    )
    second = bench_trace_replay(
        n_nodes=8, n_tasks=4, n_references=300, repeats=1
    )
    assert first.checks == second.checks
    assert first.work == second.work


def test_multicast_fanout_small():
    result = bench_multicast_fanout(n_nodes=16, n_sets=8, sends_per_set=4)
    _assert_well_formed(result, "sends")
    assert result.name == "multicast_fanout_n16"
    assert result.work == 32
    assert result.checks["total_bits"] > 0
    # Every repeat after the first hits the plan cache.
    assert result.plan_stats["hits"] >= result.plan_stats["misses"]


def test_sweep_throughput_small():
    result = bench_sweep_throughput(
        n_nodes=8, sharer_counts=(2, 4), n_references=200
    )
    _assert_well_formed(result, "refs")
    assert result.work == 400
    assert set(result.checks) == {"total_bits_s2", "total_bits_s4"}


def test_fastpath_hit_rate_reports_plan_stats():
    result = bench_fastpath_hit_rate(n_nodes=8, n_tasks=4, n_references=300)
    _assert_well_formed(result, "hits")
    assert result.checks["fastpath_hits"] + result.checks[
        "fastpath_misses"
    ] == 300
    assert result.plan_stats is not None


def test_batched_replay_small():
    result = bench_batched_replay(
        n_nodes=16,
        n_references=2000,
        n_slow_references=400,
        repeats=1,
    )
    _assert_well_formed(result, "refs")
    assert result.name == "batched_replay_n16"
    assert result.work == 2000
    assert result.checks["batched_refs"] > result.checks["fallback_refs"]
    assert (
        result.checks["batched_refs"] + result.checks["fallback_refs"]
        == 2000
    )
    assert result.checks["total_bits"] > 0


def test_run_benchmarks_only_selects_in_definition_order(monkeypatch):
    import repro.perf.harness as harness

    def stub(name):
        def run(repeats):
            return BenchResult(
                name=name,
                unit="refs",
                work=1,
                wall_time=1.0,
                rate=1.0,
                equivalent=True,
            )

        return run

    monkeypatch.setattr(
        harness, "_BENCHMARKS", {name: stub(name) for name in "abc"}
    )
    assert list(run_benchmarks(only=["c", "a"])) == ["a", "c"]
    assert list(run_benchmarks()) == ["a", "b", "c"]
    with pytest.raises(ConfigurationError, match="unknown benchmark"):
        run_benchmarks(only=["a", "nope"])


def test_benchmark_names_cover_the_committed_baseline():
    names = benchmark_names()
    assert "batched_replay_n1024" in names
    assert "compiled_replay_n64" in names
    assert "serve_sharded_n64" in names
    assert len(names) == len(set(names)) == 8


def test_require_raises_equivalence_error():
    _require(True, "fine")
    try:
        _require(False, "bit totals differ")
    except EquivalenceError as error:
        assert "bit totals differ" in str(error)
    else:  # pragma: no cover - the assert above must fire
        raise AssertionError("EquivalenceError not raised")
