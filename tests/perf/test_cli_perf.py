"""The ``repro perf`` subcommand end to end, with stubbed benchmarks.

The real suite takes tens of seconds (it is the committed-baseline
workload); these tests monkeypatch :func:`repro.perf.run_benchmarks` with
an instant stand-in so every CLI path -- table, JSON export, baseline
write, gate pass and gate fail -- is exercised in milliseconds.
"""

import json

import pytest

import repro.perf
from repro.cli import main
from repro.perf import BenchResult, write_baseline


def _stub_results(rate=1000.0, total_bits=42):
    result = BenchResult(
        name="trace_replay_n8",
        unit="refs",
        work=300,
        wall_time=300 / rate,
        rate=rate,
        equivalent=True,
        checks={"total_bits": total_bits},
    )
    return {result.name: result}


@pytest.fixture(autouse=True)
def _isolate_history(monkeypatch, tmp_path):
    """Run every test from ``tmp_path`` so the default
    ``BENCH_history.jsonl`` append never touches the repository root."""
    monkeypatch.chdir(tmp_path)


@pytest.fixture
def stub_benchmarks(monkeypatch):
    def install(**kwargs):
        def fake(*, equivalence_only=False, repeats=3, only=None):
            results = _stub_results(**kwargs)
            if only is not None:
                results = {
                    name: result
                    for name, result in results.items()
                    if name in only
                }
            return results

        monkeypatch.setattr(repro.perf, "run_benchmarks", fake)

    install()
    return install


def test_prints_table_without_baseline(stub_benchmarks, tmp_path, capsys):
    baseline = tmp_path / "BENCH_perf.json"
    history = tmp_path / "history.jsonl"
    assert main(
        ["perf", "--baseline", str(baseline), "--history", str(history)]
    ) == 0
    output = capsys.readouterr().out
    assert "perf microbenchmarks" in output
    assert "trace_replay_n8" in output
    assert "--write-baseline" in output  # the hint when none exists


def test_write_baseline_then_pass(stub_benchmarks, tmp_path, capsys):
    baseline = tmp_path / "BENCH_perf.json"
    assert main(
        ["perf", "--write-baseline", "--baseline", str(baseline)]
    ) == 0
    assert baseline.exists()
    assert main(["perf", "--baseline", str(baseline)]) == 0
    assert "pass (equivalence + timing)" in capsys.readouterr().out


def test_timing_regression_fails(stub_benchmarks, tmp_path, capsys):
    baseline = tmp_path / "BENCH_perf.json"
    write_baseline(_stub_results(rate=10000.0), baseline)
    assert main(["perf", "--baseline", str(baseline)]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_equivalence_only_ignores_timing_but_not_checks(
    stub_benchmarks, tmp_path, capsys
):
    baseline = tmp_path / "BENCH_perf.json"
    write_baseline(_stub_results(rate=10000.0), baseline)
    assert main(
        ["perf", "--equivalence-only", "--baseline", str(baseline)]
    ) == 0
    assert "pass (equivalence)" in capsys.readouterr().out

    write_baseline(_stub_results(rate=10000.0, total_bits=43), baseline)
    assert main(
        ["perf", "--equivalence-only", "--baseline", str(baseline)]
    ) == 1
    assert "correctness" in capsys.readouterr().out


def test_threshold_flag(stub_benchmarks, tmp_path):
    baseline = tmp_path / "BENCH_perf.json"
    write_baseline(_stub_results(rate=1100.0), baseline)
    assert main(["perf", "--baseline", str(baseline)]) == 0
    assert main(
        ["perf", "--baseline", str(baseline), "--threshold", "0.01"]
    ) == 1


def test_output_json_export(stub_benchmarks, tmp_path):
    baseline = tmp_path / "BENCH_perf.json"
    output = tmp_path / "results.json"
    assert main(
        [
            "perf",
            "--baseline", str(baseline),
            "--output", str(output),
        ]
    ) == 0
    payload = json.loads(output.read_text())
    assert payload["benchmarks"]["trace_replay_n8"]["work"] == 300


def test_history_appended_by_default(stub_benchmarks, tmp_path, capsys):
    baseline = tmp_path / "BENCH_perf.json"
    assert main(["perf", "--baseline", str(baseline)]) == 0
    assert main(["perf", "--baseline", str(baseline)]) == 0
    history = tmp_path / "BENCH_history.jsonl"
    assert "history row appended" in capsys.readouterr().out
    rows = [json.loads(line) for line in history.read_text().splitlines()]
    assert len(rows) == 2
    assert rows[0]["rates"] == {"trace_replay_n8": 1000.0}
    assert rows[0]["equivalent"] is True


def test_no_history_flag_skips_the_append(stub_benchmarks, tmp_path):
    baseline = tmp_path / "BENCH_perf.json"
    assert main(
        ["perf", "--no-history", "--baseline", str(baseline)]
    ) == 0
    assert not (tmp_path / "BENCH_history.jsonl").exists()


def test_only_flag_relaxes_the_coverage_check(stub_benchmarks, tmp_path, capsys):
    # A baseline with an extra benchmark: a full run must flag it as
    # unmeasured, an --only run must not (the subset was deliberate).
    baseline = tmp_path / "BENCH_perf.json"
    results = _stub_results()
    results["other_bench"] = BenchResult(
        name="other_bench",
        unit="refs",
        work=100,
        wall_time=0.1,
        rate=1000.0,
        equivalent=True,
    )
    write_baseline(results, baseline)
    assert main(["perf", "--baseline", str(baseline)]) == 1
    assert "in baseline but not measured" in capsys.readouterr().out
    assert main(
        ["perf", "--only", "trace_replay_n8", "--baseline", str(baseline)]
    ) == 0
    output = capsys.readouterr().out
    assert "in baseline but not measured" not in output
    assert "pass" in output


def test_rate_delta_against_previous_history_row(
    stub_benchmarks, tmp_path, capsys
):
    baseline = tmp_path / "BENCH_perf.json"
    assert main(["perf", "--baseline", str(baseline)]) == 0
    first = capsys.readouterr().out
    assert " - " in first  # no previous row yet
    stub_benchmarks(rate=1500.0)
    assert main(["perf", "--baseline", str(baseline)]) == 0
    assert "+50.0%" in capsys.readouterr().out


def test_only_unknown_name_fails_listing_valid_names(capsys):
    # No stub here on purpose: the name check happens before any
    # benchmark runs, so the real registry answers instantly.
    assert main(["perf", "--only", "no_such_bench"]) == 2
    out = capsys.readouterr().out
    assert "unknown benchmark name" in out
    assert "no_such_bench" in out
    assert "trace_replay_n64" in out  # the valid names are listed
    assert "serve_sharded_n64" in out
