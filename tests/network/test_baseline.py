"""Tests for the baseline topology and topology-invariant tree costs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network import cost
from repro.network.baseline import BaselineNetwork, tree_multicast_cost
from repro.network.message import Message
from repro.network.multicast import multicast_scheme2
from repro.network.topology import OmegaNetwork


class TestBaselineRouting:
    @pytest.mark.parametrize("n_ports", [2, 4, 8, 16, 32])
    def test_every_pair_routes_to_destination(self, n_ports):
        net = BaselineNetwork(n_ports)
        for source in range(n_ports):
            for dest in range(n_ports):
                positions = net.route_positions(source, dest)
                assert positions[0] == source
                assert positions[-1] == dest
                assert len(positions) == net.n_stages + 1

    def test_each_stage_is_a_permutation(self):
        # For a fixed destination-bit pattern the stage map is injective.
        net = BaselineNetwork(16)
        for dest in (0, 7, 15):
            level1 = {
                net.route_positions(source, dest)[1]
                for source in range(16)
            }
            # Half the positions are reachable (the d_0 half), each once.
            assert len(level1) == 8

    def test_differs_from_omega_in_the_interior(self):
        omega = OmegaNetwork(16)
        baseline = BaselineNetwork(16)
        different = any(
            omega.route_positions(source, dest)
            != baseline.route_positions(source, dest)
            for source in range(16)
            for dest in range(16)
        )
        assert different  # same endpoints, different wiring

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BaselineNetwork(12)
        with pytest.raises(ConfigurationError):
            BaselineNetwork(8).route_positions(0, 8)


class TestTopologyInvariantTreeCost:
    @settings(max_examples=80, deadline=None)
    @given(
        dests=st.sets(st.integers(0, 63), min_size=1, max_size=20),
        source=st.integers(0, 63),
        payload=st.integers(0, 60),
    )
    def test_scheme2_cost_equal_on_omega_and_baseline(
        self, dests, source, payload
    ):
        """Branch counts depend only on destination prefixes, so the
        vector-routed tree costs the same bits on either topology."""
        omega = OmegaNetwork(64)
        baseline = BaselineNetwork(64)
        assert tree_multicast_cost(
            omega, source, dests, payload
        ) == tree_multicast_cost(baseline, source, dests, payload)

    @settings(max_examples=60, deadline=None)
    @given(
        dests=st.sets(st.integers(0, 63), min_size=1, max_size=20),
        source=st.integers(0, 63),
        payload=st.integers(0, 60),
    )
    def test_generic_cost_matches_the_omega_simulator(
        self, dests, source, payload
    ):
        omega = OmegaNetwork(64)
        simulated = multicast_scheme2(
            omega,
            Message(source=source, payload_bits=payload),
            dests,
            commit=False,
        )
        assert simulated.cost == tree_multicast_cost(
            omega, source, dests, payload
        )

    def test_worst_case_formula_holds_on_the_baseline_too(self):
        """Eq. 3 carries over to the baseline network unchanged."""
        baseline = BaselineNetwork(256)
        for n in (1, 4, 16, 64):
            dests = cost.worst_case_placement(256, n)
            assert tree_multicast_cost(
                baseline, 0, dests, 20
            ) == cost.cc2_worst(n, 256, 20)

    def test_empty_destinations(self):
        assert tree_multicast_cost(BaselineNetwork(8), 0, [], 20) == 0

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            tree_multicast_cost(BaselineNetwork(8), 0, [1], -1)
