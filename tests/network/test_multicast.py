"""Unit tests for the three multicast schemes and the combined scheme."""

import pytest

from repro.errors import MulticastError
from repro.network import cost
from repro.network.message import Message
from repro.network.multicast import (
    MulticastScheme,
    Multicaster,
    enclosing_subcube,
    multicast,
    multicast_combined,
    multicast_scheme1,
    multicast_scheme2,
    multicast_scheme3,
    subcube_members,
)
from repro.network.topology import OmegaNetwork


def msg(source=0, bits=20):
    return Message(source=source, payload_bits=bits)


class TestScheme1:
    def test_delivers_to_every_destination(self):
        net = OmegaNetwork(8)
        result = multicast_scheme1(net, msg(), [1, 4, 6], commit=False)
        assert result.delivered == {1, 4, 6}

    def test_cost_is_linear_in_destinations(self):
        net = OmegaNetwork(16)
        one = multicast_scheme1(net, msg(), [3], commit=False).cost
        four = multicast_scheme1(
            net, msg(), [3, 5, 9, 12], commit=False
        ).cost
        assert four == 4 * one

    def test_cost_matches_eq2(self):
        net = OmegaNetwork(64)
        for n in (1, 2, 8, 32):
            dests = cost.worst_case_placement(64, n)
            result = multicast_scheme1(net, msg(bits=20), dests, commit=False)
            assert result.cost == cost.cc1(n, 64, 20)

    def test_empty_destination_set(self):
        net = OmegaNetwork(8)
        result = multicast_scheme1(net, msg(), [], commit=False)
        assert result.cost == 0
        assert result.loads == ()

    def test_common_links_paid_repeatedly(self):
        # Two adjacent destinations share most of the path; scheme 1 pays
        # every shared link twice (the inefficiency scheme 2 removes).
        net = OmegaNetwork(8)
        result = multicast_scheme1(net, msg(), [0, 1], commit=False)
        assert len(result.loads) == 2 * (net.n_stages + 1)
        assert result.links_used < len(result.loads)

    def test_rejects_out_of_range_destination(self):
        net = OmegaNetwork(8)
        with pytest.raises(MulticastError):
            multicast_scheme1(net, msg(), [8], commit=False)


class TestScheme2:
    def test_delivers_exactly_the_flagged_caches(self):
        net = OmegaNetwork(16)
        dests = {0, 3, 7, 9, 14}
        result = multicast_scheme2(net, msg(source=5), dests, commit=False)
        assert result.delivered == dests

    def test_figure4_example(self):
        """The worked example of Figure 4: N=8, destinations 0, 2, 3, 6."""
        net = OmegaNetwork(8)
        result = multicast_scheme2(
            net, msg(source=1, bits=20), [0, 2, 3, 6], commit=False
        )
        assert result.delivered == {0, 2, 3, 6}
        # Branch counts per level follow the distinct destination prefixes:
        # 1 at level 0, then 2, 3, 4.
        by_level = {}
        for load in result.loads:
            by_level.setdefault(load.level, []).append(load.bits)
        assert [len(by_level[level]) for level in range(4)] == [1, 2, 3, 4]
        # The vector halves at each stage: 8, 4, 2, 1 bits of tag.
        assert by_level[0] == [20 + 8]
        assert set(by_level[1]) == {20 + 4}
        assert set(by_level[2]) == {20 + 2}
        assert set(by_level[3]) == {20 + 1}
        assert result.cost == (20 + 8) + 2 * (20 + 4) + 3 * (20 + 2) + 4 * (
            20 + 1
        )

    def test_worst_case_matches_eq3(self):
        for n_ports in (8, 64, 1024):
            net = OmegaNetwork(n_ports)
            for n in (1, 2, 4):
                dests = cost.worst_case_placement(n_ports, n)
                result = multicast_scheme2(net, msg(), dests, commit=False)
                assert result.cost == cost.cc2_worst(n, n_ports, 20)

    def test_adjacent_case_matches_eq6_with_n1_equal_n(self):
        net = OmegaNetwork(64)
        for n in (2, 4, 8):
            dests = cost.adjacent_placement(64, n)
            result = multicast_scheme2(net, msg(), dests, commit=False)
            assert result.cost == cost.cc2_prime(n, n, 64, 20)

    def test_arbitrary_sets_never_exceed_worst_case(self):
        import random

        rng = random.Random(42)
        net = OmegaNetwork(64)
        for _ in range(25):
            k = rng.choice([1, 2, 4, 8, 16])
            dests = rng.sample(range(64), k)
            result = multicast_scheme2(net, msg(), dests, commit=False)
            assert result.cost <= cost.cc2_worst(k, 64, 20)

    def test_broadcast_to_all(self):
        net = OmegaNetwork(16)
        result = multicast_scheme2(net, msg(), range(16), commit=False)
        assert result.delivered == set(range(16))
        assert result.cost == cost.cc2_worst(16, 16, 20)

    def test_common_links_paid_once(self):
        net = OmegaNetwork(8)
        result = multicast_scheme2(net, msg(), [0, 1], commit=False)
        assert result.links_used == len(result.loads)

    def test_commit_accounts_splits(self):
        net = OmegaNetwork(8)
        multicast_scheme2(net, msg(), [0, 7])
        assert sum(s.splits for s in net.iter_switches()) >= 1


class TestScheme3:
    def test_exact_subcube_delivery(self):
        net = OmegaNetwork(16)
        result = multicast_scheme3(net, msg(), [4, 5, 6, 7], commit=False)
        assert result.delivered == {4, 5, 6, 7}

    def test_non_subcube_rejected_when_exact(self):
        net = OmegaNetwork(16)
        with pytest.raises(MulticastError):
            multicast_scheme3(net, msg(), [0, 1, 2], commit=False)

    def test_non_subcube_covered_when_inexact(self):
        net = OmegaNetwork(16)
        result = multicast_scheme3(
            net, msg(), [0, 1, 2], exact=False, commit=False
        )
        assert result.requested == {0, 1, 2}
        assert result.delivered == {0, 1, 2, 3}

    def test_non_contiguous_subcube(self):
        # {1, 3, 9, 11} differ in bits 1 and 3: a valid (scattered) subcube.
        net = OmegaNetwork(16)
        result = multicast_scheme3(net, msg(), [1, 3, 9, 11], commit=False)
        assert result.delivered == {1, 3, 9, 11}

    def test_adjacent_cost_matches_eq5(self):
        for n_ports in (8, 64, 1024):
            net = OmegaNetwork(n_ports)
            for n1 in (1, 2, 8):
                dests = cost.adjacent_placement(n_ports, n1)
                result = multicast_scheme3(net, msg(), dests, commit=False)
                assert result.cost == cost.cc3(n1, n_ports, 20)

    def test_single_destination_uses_full_tag(self):
        net = OmegaNetwork(8)
        result = multicast_scheme3(net, msg(bits=0), [5], commit=False)
        # The 2m-bit tag shrinks by two per stage: 6 + 4 + 2 + 0.
        assert [load.bits for load in result.loads] == [6, 4, 2, 0]

    def test_full_broadcast(self):
        net = OmegaNetwork(8)
        result = multicast_scheme3(net, msg(), range(8), commit=False)
        assert result.delivered == set(range(8))

    def test_zero_destinations_rejected(self):
        net = OmegaNetwork(8)
        with pytest.raises(MulticastError):
            multicast_scheme3(net, msg(), [], commit=False)


class TestSubcubeHelpers:
    def test_enclosing_subcube_of_singleton(self):
        net = OmegaNetwork(16)
        assert enclosing_subcube(net, [9]) == (9, 0)

    def test_enclosing_subcube_of_aligned_range(self):
        net = OmegaNetwork(16)
        base, varying = enclosing_subcube(net, [8, 9, 10, 11])
        assert (base, varying) == (8, 0b11)

    def test_subcube_members_roundtrip(self):
        net = OmegaNetwork(16)
        dests = [2, 6, 10, 14]  # bits 2 and 3 vary
        base, varying = enclosing_subcube(net, dests)
        assert subcube_members(net, base, varying) == frozenset(dests)


class TestCombinedScheme:
    def test_picks_cheapest_candidate(self):
        net = OmegaNetwork(64)
        for dests in ([5], [0, 1, 2, 3], list(range(0, 64, 8))):
            combined = multicast_combined(net, msg(), dests, commit=False)
            candidates = [
                multicast_scheme1(net, msg(), dests, commit=False).cost,
                multicast_scheme2(net, msg(), dests, commit=False).cost,
                multicast_scheme3(
                    net, msg(), dests, exact=False, commit=False
                ).cost,
            ]
            assert combined.cost == min(candidates)

    def test_commit_charges_only_winner(self):
        net = OmegaNetwork(16)
        result = multicast_combined(net, msg(), [0, 1, 2, 3])
        assert net.total_bits == result.cost

    def test_empty_destinations(self):
        net = OmegaNetwork(8)
        result = multicast_combined(net, msg(), [], commit=False)
        assert result.cost == 0


class TestMulticaster:
    def test_single_destination_degenerates_to_unicast(self):
        net = OmegaNetwork(8)
        caster = Multicaster(net, MulticastScheme.VECTOR)
        result = caster.send(msg(bits=20), [3])
        assert result.scheme is MulticastScheme.UNICAST
        assert result.cost == cost.cc1(1, 8, 20)

    def test_scheme_selection_is_honoured(self):
        net = OmegaNetwork(16)
        dests = [0, 1, 2, 3]
        for scheme, expected in [
            (MulticastScheme.UNICAST, MulticastScheme.UNICAST),
            (MulticastScheme.VECTOR, MulticastScheme.VECTOR),
            (MulticastScheme.BROADCAST_TAG, MulticastScheme.BROADCAST_TAG),
        ]:
            fresh = Multicaster(OmegaNetwork(16), scheme)
            assert fresh.send(msg(), dests).scheme is expected

    def test_empty_send_costs_nothing(self):
        net = OmegaNetwork(8)
        caster = Multicaster(net)
        assert caster.send(msg(), []).cost == 0
        assert net.total_bits == 0

    def test_dispatch_function_broadcast_tag_overdelivers(self):
        net = OmegaNetwork(8)
        result = multicast(
            net, msg(), [0, 1, 2], MulticastScheme.BROADCAST_TAG,
            commit=False,
        )
        assert result.delivered == {0, 1, 2, 3}
