"""Tests for the §5 break-even registers and register-driven multicaster."""

import pytest

from repro.errors import ConfigurationError
from repro.network import cost
from repro.network.message import Message
from repro.network.multicast import (
    MulticastScheme,
    multicast_combined,
)
from repro.network.selector import (
    BreakEvenRegisters,
    RegisterMulticaster,
    compile_registers,
    register_table,
)
from repro.network.topology import OmegaNetwork


class TestCompileRegisters:
    def test_thresholds_are_ordered(self):
        registers = compile_registers(1024, 128, 20)
        assert registers.scheme2_threshold <= registers.scheme3_threshold

    def test_choice_matches_closed_form_winner_at_powers(self):
        """For power-of-two counts inside the partition, the register
        decision must equal the cheapest-scheme computation."""
        registers = compile_registers(1024, 128, 20)
        scheme_by_enum = {
            MulticastScheme.UNICAST: 1,
            MulticastScheme.VECTOR: 2,
            MulticastScheme.BROADCAST_TAG: 3,
        }
        n = 1
        while n <= 128:
            chosen = scheme_by_enum[registers.choose(n)]
            cheapest = cost.cheapest_scheme(n, 128, 1024, 20)
            # The register decision is monotone (thresholded); the true
            # winner is too for these parameters, so they agree exactly.
            assert chosen == cheapest
            n *= 2

    def test_scheme2_never_wins_with_huge_messages_on_tiny_partitions(self):
        # For n1 = 1 the only destination counts are 1; scheme 1 must win.
        registers = compile_registers(64, 1, 20)
        assert registers.choose(1) is MulticastScheme.UNICAST

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compile_registers(3, 1, 20)
        with pytest.raises(ConfigurationError):
            compile_registers(64, 128, 20)  # partition exceeds N
        with pytest.raises(ConfigurationError):
            compile_registers(64, 16, -1)
        with pytest.raises(ConfigurationError):
            BreakEvenRegisters(64, 16, 20, 4, 8).choose(0)


class TestRegisterMulticaster:
    def test_small_sets_go_unicast(self):
        net = OmegaNetwork(64)
        caster = RegisterMulticaster(net, compile_registers(64, 16, 20))
        result = caster.send(Message(source=0, payload_bits=20), [3])
        assert result.scheme is MulticastScheme.UNICAST

    def test_large_sets_go_scheme3(self):
        net = OmegaNetwork(1024)
        caster = RegisterMulticaster(
            net, compile_registers(1024, 128, 20)
        )
        result = caster.send(
            Message(source=0, payload_bits=20), range(128)
        )
        assert result.scheme is MulticastScheme.BROADCAST_TAG
        assert result.delivered == frozenset(range(128))

    def test_empty_send(self):
        net = OmegaNetwork(64)
        caster = RegisterMulticaster(net, compile_registers(64, 16, 20))
        assert caster.send(Message(source=0, payload_bits=20), []).cost == 0

    def test_network_size_mismatch_rejected(self):
        net = OmegaNetwork(64)
        with pytest.raises(ConfigurationError):
            RegisterMulticaster(net, compile_registers(128, 16, 20))

    def test_register_decision_close_to_probing_oracle(self):
        """The whole §5 point: an O(1) popcount decision should recover
        nearly all of the probing combined scheme's savings for
        destinations inside the partition."""
        net = OmegaNetwork(256)
        registers = compile_registers(256, 32, 20)
        caster = RegisterMulticaster(net, registers)
        message = Message(source=7, payload_bits=20)
        register_total = 0
        probing_total = 0
        for n in (1, 2, 4, 8, 16, 32):
            dests = cost.spread_in_partition_placement(256, n, 32)
            by_registers = caster.send(message, dests).cost
            by_probing = multicast_combined(
                net, message, dests, commit=False
            ).cost
            # Per message the registers may be off near a threshold (they
            # compare worst-case closed forms, the probe measures the
            # actual placement) but never catastrophically.
            assert by_registers <= by_probing * 2
            register_total += by_registers
            probing_total += by_probing
        assert register_total <= probing_total * 1.3


class TestRegisterTable:
    def test_rows_cover_the_grid(self):
        rows = register_table(1024, partitions=(16, 128),
                              message_sizes=(0, 20))
        assert len(rows) == 4

    def test_thresholds_shrink_with_message_size(self):
        # Bigger messages favour scheme 2 earlier (§3.2 claim, through
        # the registers).
        rows = {
            (n1, m): s2
            for n1, m, s2, _ in register_table(
                1024, partitions=(128,), message_sizes=(0, 20, 60)
            )
        }
        assert rows[(128, 60)] <= rows[(128, 20)] <= rows[(128, 0)]
