"""Unit tests for destination-tag unicast routing and its cost model."""

import pytest

from repro.network import cost
from repro.network.message import Message
from repro.network.routing import (
    route_path,
    tag_bits_scheme1,
    unicast,
)
from repro.network.topology import OmegaNetwork


class TestTagBits:
    def test_tag_shrinks_one_bit_per_stage(self):
        net = OmegaNetwork(16)
        assert [tag_bits_scheme1(net, level) for level in range(5)] == [
            4,
            3,
            2,
            1,
            0,
        ]

    def test_out_of_range_level(self):
        net = OmegaNetwork(16)
        with pytest.raises(ValueError):
            tag_bits_scheme1(net, 5)


class TestUnicast:
    def test_cost_matches_eq2_single_destination(self):
        for n_ports in (4, 16, 256):
            net = OmegaNetwork(n_ports)
            for payload in (0, 7, 20):
                result = unicast(
                    net,
                    Message(source=1, payload_bits=payload),
                    dest=2 % n_ports,
                    commit=False,
                )
                assert result.cost == cost.cc1(1, n_ports, payload)

    def test_loads_cover_all_levels(self):
        net = OmegaNetwork(8)
        result = unicast(
            net, Message(source=0, payload_bits=4), dest=6, commit=False
        )
        assert [load.level for load in result.loads] == [0, 1, 2, 3]
        # Level 0 carries the full 3-bit tag, the final level none.
        assert result.loads[0].bits == 4 + 3
        assert result.loads[-1].bits == 4

    def test_commit_updates_link_counters(self):
        net = OmegaNetwork(8)
        result = unicast(net, Message(source=2, payload_bits=10), dest=5)
        assert net.total_bits == result.cost
        for load in result.loads:
            assert net.link(load.level, load.position).bits == load.bits

    def test_commit_false_leaves_counters_untouched(self):
        net = OmegaNetwork(8)
        unicast(net, Message(source=2, payload_bits=10), dest=5, commit=False)
        assert net.total_bits == 0
        assert all(s.messages == 0 for s in net.iter_switches())

    def test_commit_records_one_switch_per_stage(self):
        net = OmegaNetwork(8)
        unicast(net, Message(source=0, payload_bits=1), dest=7)
        assert sum(s.messages for s in net.iter_switches()) == net.n_stages

    def test_route_path_matches_topology(self):
        net = OmegaNetwork(16)
        keys = route_path(net, 3, 9)
        assert keys == [
            (level, position)
            for level, position in enumerate(net.route_positions(3, 9))
        ]

    def test_source_equals_destination_still_traverses(self):
        # The dance-hall model: even a port-to-itself message crosses the
        # fabric (m + 1 link loads).
        net = OmegaNetwork(8)
        result = unicast(
            net, Message(source=4, payload_bits=0), dest=4, commit=False
        )
        assert len(result.loads) == net.n_stages + 1
