"""``multicast_plan_for`` must predict ``send_payload`` exactly.

The stable-state fast path memoises one :class:`RoutePlan` per
``(owner, present-vector)`` pair and replays it with
``apply_plan_traffic_scaled``; these tests pin the contract that makes
that memo sound: for every scheme and destination set, the plan's cost
and per-level traffic are bit-identical to what a cold (memoisation
disabled) :class:`Multicaster` commits -- including under present-vector
churn, members joining and leaving one at a time the way a
distributed-write present set evolves.
"""

import random

import pytest

from repro.errors import MulticastError
from repro.network.multicast import (
    Multicaster,
    MulticastScheme,
    multicast_plan_for,
)
from repro.network.topology import OmegaNetwork

SCHEMES = (
    MulticastScheme.UNICAST,
    MulticastScheme.VECTOR,
    MulticastScheme.BROADCAST_TAG,
    MulticastScheme.COMBINED,
)


def _churned_dest_sets(n_nodes, source, rng, n_steps=25):
    """Destination sets evolving one membership change at a time."""
    candidates = [node for node in range(n_nodes) if node != source]
    current = set(rng.sample(candidates, 2))
    sets = [frozenset(current)]
    for _ in range(n_steps):
        if len(current) > 1 and rng.random() < 0.4:
            current.discard(rng.choice(sorted(current)))
        else:
            current.add(rng.choice(candidates))
        sets.append(frozenset(current))
    return sets


@pytest.mark.parametrize("n_nodes", [8, 64, 256])
@pytest.mark.parametrize(
    "scheme", SCHEMES, ids=lambda scheme: scheme.name.lower()
)
def test_plan_matches_cold_multicaster_under_churn(n_nodes, scheme):
    rng = random.Random(n_nodes * 10 + scheme.value)
    source = rng.randrange(n_nodes)
    # One memoising network reused across the whole churn sequence, the
    # way the protocol's network sees repeated lookups; every cold
    # reference rebuilds from scratch.
    network = OmegaNetwork(n_nodes)
    for payload_bits in (0, 20):
        for dest_set in _churned_dest_sets(n_nodes, source, rng):
            plan = multicast_plan_for(
                network, scheme, source, dest_set, payload_bits
            )
            cold_network = OmegaNetwork(n_nodes)
            cold_network.route_plans = None
            cold = Multicaster(cold_network, scheme)
            result = cold.send_payload(source, payload_bits, dest_set)
            assert plan.cost_for(payload_bits) == result.cost
            applied = OmegaNetwork(n_nodes)
            applied.apply_plan_traffic(plan, payload_bits)
            assert applied.total_bits == cold_network.total_bits
            assert applied.bits_by_level() == cold_network.bits_by_level()


def test_scaled_replay_matches_repeated_sends():
    n_nodes = 64
    source = 5
    rng = random.Random(7)
    dest_set = frozenset(
        rng.sample([node for node in range(n_nodes) if node != source], 9)
    )
    network = OmegaNetwork(n_nodes)
    plan = multicast_plan_for(
        network, MulticastScheme.VECTOR, source, dest_set, 20
    )
    scaled = OmegaNetwork(n_nodes)
    scaled.apply_plan_traffic_scaled(plan, 20, 13)
    repeated = OmegaNetwork(n_nodes)
    repeated.route_plans = None
    caster = Multicaster(repeated, MulticastScheme.VECTOR)
    for _ in range(13):
        caster.send_payload(source, 20, dest_set)
    assert scaled.total_bits == repeated.total_bits
    assert scaled.bits_by_level() == repeated.bits_by_level()


def test_single_destination_is_unicast_under_every_scheme():
    network = OmegaNetwork(8)
    for scheme in SCHEMES:
        plan = multicast_plan_for(network, scheme, 0, frozenset([3]), 20)
        cold_network = OmegaNetwork(8)
        cold_network.route_plans = None
        result = Multicaster(cold_network, scheme).send_payload(
            0, 20, frozenset([3])
        )
        assert plan.cost_for(20) == result.cost


def test_empty_destination_set_is_rejected():
    network = OmegaNetwork(8)
    with pytest.raises(MulticastError):
        multicast_plan_for(
            network, MulticastScheme.VECTOR, 0, frozenset(), 20
        )
