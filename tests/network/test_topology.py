"""Unit tests for the omega-network structure."""

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import OmegaNetwork


class TestConstruction:
    def test_stage_count_is_log2(self):
        assert OmegaNetwork(2).n_stages == 1
        assert OmegaNetwork(8).n_stages == 3
        assert OmegaNetwork(1024).n_stages == 10

    @pytest.mark.parametrize("bad", [0, 1, 3, 6, 12, 100, -8])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(ConfigurationError):
            OmegaNetwork(bad)

    def test_link_count_per_level(self):
        net = OmegaNetwork(8)
        for level in range(net.n_stages + 1):
            positions = {net.link(level, p).position for p in range(8)}
            assert positions == set(range(8))

    def test_switch_count_per_stage(self):
        net = OmegaNetwork(16)
        switches = list(net.iter_switches())
        assert len(switches) == net.n_stages * 8

    def test_total_links(self):
        net = OmegaNetwork(16)
        assert len(list(net.iter_links())) == (net.n_stages + 1) * 16


class TestShuffle:
    def test_shuffle_is_rotate_left(self):
        net = OmegaNetwork(8)  # 3-bit positions
        assert net.shuffle(0b001) == 0b010
        assert net.shuffle(0b100) == 0b001
        assert net.shuffle(0b110) == 0b101

    def test_shuffle_is_permutation(self):
        net = OmegaNetwork(32)
        assert sorted(net.shuffle(p) for p in range(32)) == list(range(32))

    def test_inverse_shuffle_inverts(self):
        net = OmegaNetwork(64)
        for position in range(64):
            assert net.inverse_shuffle(net.shuffle(position)) == position
            assert net.shuffle(net.inverse_shuffle(position)) == position

    def test_m_shuffles_are_identity(self):
        net = OmegaNetwork(16)
        for position in range(16):
            value = position
            for _ in range(net.n_stages):
                value = net.shuffle(value)
            assert value == position


class TestRouting:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_every_pair_routes_to_destination(self, n):
        net = OmegaNetwork(n)
        for source in range(n):
            for dest in range(n):
                positions = net.route_positions(source, dest)
                assert positions[0] == source
                assert positions[-1] == dest
                assert len(positions) == net.n_stages + 1

    def test_route_links_touch_each_level_once(self):
        net = OmegaNetwork(16)
        links = net.route_links(3, 12)
        assert [link.level for link in links] == list(
            range(net.n_stages + 1)
        )

    def test_destination_bit_is_msb_first(self):
        net = OmegaNetwork(8)
        assert net.destination_bit(0b110, 0) == 1
        assert net.destination_bit(0b110, 1) == 1
        assert net.destination_bit(0b110, 2) == 0

    def test_same_destination_paths_converge(self):
        # All paths to one destination share the final link.
        net = OmegaNetwork(8)
        finals = {
            net.route_positions(source, 5)[-1] for source in range(8)
        }
        assert finals == {5}

    def test_out_of_range_ports_rejected(self):
        net = OmegaNetwork(8)
        with pytest.raises(ConfigurationError):
            net.route_positions(8, 0)
        with pytest.raises(ConfigurationError):
            net.route_positions(0, -1)


class TestTrafficCounters:
    def test_counters_start_zero(self):
        net = OmegaNetwork(8)
        assert net.total_bits == 0
        assert net.total_messages == 0

    def test_carry_accumulates(self):
        net = OmegaNetwork(8)
        net.link(0, 3).carry(10)
        net.link(0, 3).carry(5)
        net.link(2, 1).carry(7)
        assert net.total_bits == 22
        assert net.total_messages == 3
        assert net.bits_by_level()[0] == 15
        assert net.bits_by_level()[2] == 7

    def test_reset_traffic(self):
        net = OmegaNetwork(8)
        net.link(1, 0).carry(9)
        net.switch(0, 0).record(split=True)
        net.reset_traffic()
        assert net.total_bits == 0
        assert net.switch(0, 0).messages == 0
        assert net.switch(0, 0).splits == 0

    def test_busiest_links_ordering(self):
        net = OmegaNetwork(8)
        net.link(0, 0).carry(1)
        net.link(1, 1).carry(100)
        net.link(2, 2).carry(50)
        top = net.busiest_links(2)
        assert [link.bits for link in top] == [100, 50]

    def test_negative_bits_rejected(self):
        net = OmegaNetwork(8)
        with pytest.raises(ValueError):
            net.link(0, 0).carry(-1)

    def test_bad_link_level_rejected(self):
        net = OmegaNetwork(8)
        with pytest.raises(ConfigurationError):
            net.link(net.n_stages + 1, 0)

    def test_bad_switch_index_rejected(self):
        net = OmegaNetwork(8)
        with pytest.raises(ConfigurationError):
            net.switch(0, 4)
        with pytest.raises(ConfigurationError):
            net.switch(3, 0)
