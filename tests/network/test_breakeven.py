"""Break-even analysis tests, including the paper's provable claims."""

import pytest

from repro.errors import ConfigurationError
from repro.network import cost
from repro.network.breakeven import (
    breakeven_scheme2_vs_scheme1,
    breakeven_scheme3_vs_scheme2,
    cc1_real,
    cc2_prime_real,
    cc2_worst_real,
    scheme_choice_table,
    table2,
)


def _powers_up_to(limit):
    value = 1
    while value <= limit:
        yield value
        value *= 2


class TestRealValuedExtensions:
    def test_real_forms_agree_with_integer_forms_at_powers(self):
        for n in (1, 2, 8, 64):
            assert cc1_real(n, 1024, 20) == cost.cc1(n, 1024, 20)
            assert cc2_worst_real(n, 1024, 20) == cost.cc2_worst(
                n, 1024, 20
            )
            assert cc2_prime_real(n, 128, 1024, 20) == cost.cc2_prime(
                n, 128, 1024, 20
            )


class TestScheme2VsScheme1:
    def test_paper_claim_breakeven_exists_for_n_ge_4(self):
        """§3.2: 'There exists an n <= N such that scheme 2 results in
        less communication cost than scheme 1, for N >= 4.'

        At the smallest machine (N=4, M=0) the two schemes *tie* exactly at
        n = N (CC1 = CC2 = 12), so the claim holds non-strictly there and
        strictly everywhere else.
        """
        for network in (4, 8, 64, 256, 1024):
            for m_bits in (0, 20, 40, 100):
                point = breakeven_scheme2_vs_scheme1(network, m_bits)
                exists_nonstrict = any(
                    cost.cc2_worst(n, network, m_bits)
                    <= cost.cc1(n, network, m_bits)
                    for n in _powers_up_to(network)
                )
                assert exists_nonstrict
                if point.first_winning_n is not None:
                    assert point.first_winning_n <= network

    def test_paper_claim_breakeven_decreases_with_message_size(self):
        """§3.2: 'Break-even will decrease when the message size (M)
        increases.'"""
        for network in (64, 256, 1024):
            values = [
                breakeven_scheme2_vs_scheme1(network, m).first_winning_n
                for m in (0, 20, 40, 100, 200)
            ]
            assert values == sorted(values, reverse=True)

    def test_paper_claim_breakeven_increases_with_network_size(self):
        """§3.2: 'Break-even will increase when the number of caches (N)
        increases.'"""
        for m_bits in (0, 20, 100):
            values = [
                breakeven_scheme2_vs_scheme1(n, m_bits).first_winning_n
                for n in (64, 128, 256, 512, 1024)
            ]
            assert values == sorted(values)

    def test_first_winning_n_is_correct_boundary(self):
        point = breakeven_scheme2_vs_scheme1(64, 0)
        n = point.first_winning_n
        assert cost.cc2_worst(n, 64, 0) < cost.cc1(n, 64, 0)
        if n > 1:
            assert cost.cc2_worst(n // 2, 64, 0) >= cost.cc1(n // 2, 64, 0)

    def test_crossover_brackets_first_win(self):
        point = breakeven_scheme2_vs_scheme1(64, 0)
        assert point.crossover is not None
        assert point.crossover <= point.first_winning_n

    def test_crossover_is_a_root(self):
        point = breakeven_scheme2_vs_scheme1(256, 20)
        x = point.crossover
        difference = cc2_worst_real(x, 256, 20) - cc1_real(x, 256, 20)
        assert abs(difference) < 1.0

    def test_small_network_rejected(self):
        with pytest.raises(ConfigurationError):
            breakeven_scheme2_vs_scheme1(2, 20)


class TestScheme3VsScheme2:
    def test_paper_claim_scheme3_eventually_wins(self):
        """§3.4: 'There exists an n <= n1 such that scheme 3 results in
        less communication cost than scheme 2.'"""
        point = breakeven_scheme3_vs_scheme2(128, 1024, 20)
        assert point.first_winning_n is not None
        assert point.first_winning_n <= 128

    def test_paper_claim_breakeven_increases_with_message_size(self):
        """§3.4: break-even between schemes 2 and 3 rises with M."""
        values = [
            breakeven_scheme3_vs_scheme2(128, 1024, m).first_winning_n
            for m in (0, 20, 40, 60)
        ]
        assert values == sorted(values)

    def test_paper_claim_breakeven_decreases_with_network_size(self):
        """§3.4: break-even between schemes 2 and 3 falls with N."""
        values = [
            breakeven_scheme3_vs_scheme2(128, n, 20).first_winning_n
            for n in (256, 512, 1024, 2048)
        ]
        assert values == sorted(values, reverse=True)


class TestTables:
    def test_table2_generator_shape(self):
        data = table2((64, 128), (0, 40))
        assert set(data) == {(64, 0), (64, 40), (128, 0), (128, 40)}
        assert all(value is not None for value in data.values())

    def test_scheme_choice_table_by_message_size(self):
        table = scheme_choice_table(
            (4, 128), message_sizes=(0, 20), network_size=1024, n1=128
        )
        assert set(table) == {(0, 4), (0, 128), (20, 4), (20, 128)}
        assert table[(20, 4)] == 1  # scheme 1 for few destinations
        assert table[(20, 128)] == 3  # scheme 3 for the full partition

    def test_scheme_choice_table_by_network_size(self):
        table = scheme_choice_table(
            (8, 128), network_sizes=(256, 2048), message_bits=20, n1=128
        )
        assert table[(256, 128)] == 3
        assert table[(2048, 128)] == 3

    def test_scheme_choice_table_requires_exactly_one_axis(self):
        with pytest.raises(ConfigurationError):
            scheme_choice_table((4,))
        with pytest.raises(ConfigurationError):
            scheme_choice_table(
                (4,), message_sizes=(0,), network_sizes=(64,)
            )
