"""Property-based tests for the multicast schemes over random inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import cost
from repro.network.message import Message
from repro.network.multicast import (
    multicast_combined,
    multicast_scheme1,
    multicast_scheme2,
    multicast_scheme3,
)
from repro.network.topology import OmegaNetwork

NETWORK_SIZE = 64

dest_sets = st.sets(
    st.integers(0, NETWORK_SIZE - 1), min_size=1, max_size=NETWORK_SIZE
)
sources = st.integers(0, NETWORK_SIZE - 1)
payloads = st.integers(0, 100)


@st.composite
def multicast_case(draw):
    return (
        draw(sources),
        draw(dest_sets),
        draw(payloads),
    )


common = settings(max_examples=120, deadline=None)


class TestScheme2Properties:
    @common
    @given(case=multicast_case())
    def test_delivers_exactly_the_requested_set(self, case):
        source, dests, payload = case
        net = OmegaNetwork(NETWORK_SIZE)
        result = multicast_scheme2(
            net, Message(source=source, payload_bits=payload), dests,
            commit=False,
        )
        assert result.delivered == frozenset(dests)

    @common
    @given(case=multicast_case())
    def test_tree_touches_each_link_once(self, case):
        source, dests, payload = case
        net = OmegaNetwork(NETWORK_SIZE)
        result = multicast_scheme2(
            net, Message(source=source, payload_bits=payload), dests,
            commit=False,
        )
        keys = [load.key for load in result.loads]
        assert len(keys) == len(set(keys))

    @common
    @given(case=multicast_case())
    def test_cost_bounded_by_worst_case_closed_form(self, case):
        source, dests, payload = case
        net = OmegaNetwork(NETWORK_SIZE)
        result = multicast_scheme2(
            net, Message(source=source, payload_bits=payload), dests,
            commit=False,
        )
        # Round |dests| up to a power of two: eq. 3 is stated for 2**k.
        n = 1
        while n < len(dests):
            n *= 2
        assert result.cost <= cost.cc2_worst(n, NETWORK_SIZE, payload)

    @common
    @given(case=multicast_case())
    def test_branch_count_equals_distinct_prefixes(self, case):
        source, dests, payload = case
        net = OmegaNetwork(NETWORK_SIZE)
        result = multicast_scheme2(
            net, Message(source=source, payload_bits=payload), dests,
            commit=False,
        )
        by_level = {}
        for load in result.loads:
            by_level[load.level] = by_level.get(load.level, 0) + 1
        m = net.n_stages
        for level in range(1, m + 1):
            prefixes = {dest >> (m - level) for dest in dests}
            assert by_level[level] == len(prefixes)


class TestCrossSchemeProperties:
    @common
    @given(case=multicast_case())
    def test_scheme1_cost_is_count_times_unicast(self, case):
        source, dests, payload = case
        net = OmegaNetwork(NETWORK_SIZE)
        result = multicast_scheme1(
            net, Message(source=source, payload_bits=payload), dests,
            commit=False,
        )
        assert result.cost == len(dests) * cost.cc1(
            1, NETWORK_SIZE, payload
        )

    @common
    @given(case=multicast_case())
    def test_combined_is_minimum_of_the_three(self, case):
        source, dests, payload = case
        net = OmegaNetwork(NETWORK_SIZE)
        message = Message(source=source, payload_bits=payload)
        combined = multicast_combined(net, message, dests, commit=False)
        candidates = [
            multicast_scheme1(net, message, dests, commit=False).cost,
            multicast_scheme2(net, message, dests, commit=False).cost,
            multicast_scheme3(
                net, message, dests, exact=False, commit=False
            ).cost,
        ]
        assert combined.cost == min(candidates)

    @common
    @given(case=multicast_case())
    def test_scheme3_delivery_covers_request(self, case):
        source, dests, payload = case
        net = OmegaNetwork(NETWORK_SIZE)
        result = multicast_scheme3(
            net,
            Message(source=source, payload_bits=payload),
            dests,
            exact=False,
            commit=False,
        )
        assert result.delivered >= frozenset(dests)
        # The cover is a subcube: a power-of-two superset.
        assert len(result.delivered) & (len(result.delivered) - 1) == 0

    @common
    @given(case=multicast_case(), data=st.data())
    def test_commit_accounting_matches_probe(self, case, data):
        source, dests, payload = case
        probe_net = OmegaNetwork(NETWORK_SIZE)
        commit_net = OmegaNetwork(NETWORK_SIZE)
        message = Message(source=source, payload_bits=payload)
        probe = multicast_scheme2(
            probe_net, message, dests, commit=False
        )
        multicast_scheme2(commit_net, message, dests, commit=True)
        assert commit_net.total_bits == probe.cost
