"""Tests for the blocking/contention analysis utilities."""

import pytest

from repro.errors import ConfigurationError
from repro.network.contention import (
    conflicting_pairs,
    identity_is_passable,
    is_conflict_free,
    link_load_profile,
    passable_rounds,
    path_links,
)
from repro.network.cost import worst_case_placement
from repro.network.message import Message
from repro.network.multicast import multicast_scheme1, multicast_scheme2
from repro.network.topology import OmegaNetwork


def bit_reversal(port: int, m: int) -> int:
    return int(format(port, f"0{m}b")[::-1], 2)


class TestPathLinks:
    def test_path_has_one_link_per_level(self):
        net = OmegaNetwork(16)
        links = path_links(net, 3, 11)
        assert len(links) == net.n_stages + 1
        assert sorted(level for level, _ in links) == list(
            range(net.n_stages + 1)
        )


class TestPermutationPassability:
    @pytest.mark.parametrize("n_ports", [4, 8, 16, 32])
    def test_identity_is_passable(self, n_ports):
        assert identity_is_passable(OmegaNetwork(n_ports))

    @pytest.mark.parametrize("n_ports", [8, 16, 32])
    def test_perfect_shuffle_blocks(self, n_ports):
        """The omega network cannot route the perfect shuffle itself in
        one pass -- a classic example of its blocking nature."""
        net = OmegaNetwork(n_ports)
        pairs = [(port, net.shuffle(port)) for port in range(n_ports)]
        assert not is_conflict_free(net, pairs)

    @pytest.mark.parametrize("n_ports,m", [(8, 3), (16, 4), (32, 5)])
    def test_bit_reversal_blocks(self, n_ports, m):
        net = OmegaNetwork(n_ports)
        pairs = [
            (port, bit_reversal(port, m)) for port in range(n_ports)
        ]
        assert not is_conflict_free(net, pairs)
        # ...but a handful of rounds suffices.
        rounds = passable_rounds(net, pairs)
        assert 2 <= len(rounds) <= m + 1
        scheduled = [pair for one_round in rounds for pair in one_round]
        assert sorted(scheduled) == sorted(pairs)

    def test_two_disjoint_paths_pass(self):
        net = OmegaNetwork(8)
        assert is_conflict_free(net, [(0, 0), (7, 7)])

    def test_conflicting_pairs_reports_both_sides(self):
        net = OmegaNetwork(8)
        pairs = [(port, net.shuffle(port)) for port in range(8)]
        collisions = conflicting_pairs(net, pairs)
        assert collisions
        for first, second in collisions:
            assert path_links(net, *first) & path_links(net, *second)


class TestRoundScheduling:
    def test_conflict_free_batch_takes_one_round(self):
        net = OmegaNetwork(16)
        pairs = [(port, port) for port in range(16)]
        assert len(passable_rounds(net, pairs)) == 1

    def test_empty_batch(self):
        net = OmegaNetwork(8)
        assert passable_rounds(net, []) == []

    def test_rounds_are_internally_conflict_free(self):
        net = OmegaNetwork(16)
        pairs = [(port, bit_reversal(port, 4)) for port in range(16)]
        for one_round in passable_rounds(net, pairs):
            assert is_conflict_free(net, one_round)


class TestBatchValidation:
    def test_duplicate_sources_rejected(self):
        net = OmegaNetwork(8)
        with pytest.raises(ConfigurationError):
            is_conflict_free(net, [(0, 1), (0, 2)])

    def test_duplicate_destinations_rejected(self):
        net = OmegaNetwork(8)
        with pytest.raises(ConfigurationError):
            is_conflict_free(net, [(0, 1), (2, 1)])

    def test_out_of_range_port_rejected(self):
        net = OmegaNetwork(8)
        with pytest.raises(ConfigurationError):
            is_conflict_free(net, [(0, 8)])


class TestLinkLoadProfile:
    def test_profile_of_idle_network(self):
        profile = link_load_profile(OmegaNetwork(8))
        assert profile.total_bits == 0
        assert profile.imbalance == 0.0

    def test_scheme1_concentrates_load_at_the_source_link(self):
        """The hot-spot story: repeated unicast hammers the source's
        level-0 link once per destination; vector routing crosses it
        once."""
        n_dests = 16
        dests = worst_case_placement(64, n_dests)

        net1 = OmegaNetwork(64)
        multicast_scheme1(
            net1, Message(source=0, payload_bits=20), dests
        )
        net2 = OmegaNetwork(64)
        multicast_scheme2(
            net2, Message(source=0, payload_bits=20), dests
        )

        assert net1.link(0, 0).messages == n_dests
        assert net2.link(0, 0).messages == 1
        profile1 = link_load_profile(net1)
        profile2 = link_load_profile(net2)
        assert profile1.busiest_link == (0, 0)
        assert profile1.busiest_bits > profile2.busiest_bits

    def test_profile_totals_match_network_counters(self):
        net = OmegaNetwork(16)
        multicast_scheme2(
            net, Message(source=3, payload_bits=10), [0, 5, 9]
        )
        profile = link_load_profile(net)
        assert profile.total_bits == net.total_bits
        assert profile.n_links == (net.n_stages + 1) * 16
