"""Route-plan memoisation: bit-identity, isolation, lifecycle.

The contract under test (see repro/network/routeplan.py): replaying a
memoised plan is *indistinguishable* from re-walking the fabric -- same
:class:`MulticastResult` values, same counter increments -- and plans can
never leak across networks or survive into a network they do not describe.
The cold reference path is the same code with ``network.route_plans`` set
to ``None``.
"""

import random

import pytest

from repro.network.link import Link, LinkLoad
from repro.network.message import Message
from repro.network.multicast import (
    Multicaster,
    multicast_combined,
    multicast_scheme1,
    multicast_scheme2,
    multicast_scheme3,
)
from repro.network.routeplan import RoutePlanCache
from repro.network.routing import unicast
from repro.network.topology import OmegaNetwork
from repro.types import Address, Op, Reference


def _message(source, bits=20):
    return Message(source=source, payload_bits=bits)


SCHEME_CALLS = [
    ("scheme1", lambda net, msg, dests: multicast_scheme1(net, msg, dests)),
    ("scheme2", lambda net, msg, dests: multicast_scheme2(net, msg, dests)),
    (
        "scheme3",
        lambda net, msg, dests: multicast_scheme3(
            net, msg, dests, exact=False
        ),
    ),
    ("combined", lambda net, msg, dests: multicast_combined(net, msg, dests)),
]


class TestCachedEqualsCold:
    """Property-style: memoised results == cold results, counters too."""

    @pytest.mark.parametrize("n_ports", [8, 16, 64])
    @pytest.mark.parametrize("name,send", SCHEME_CALLS, ids=lambda x: "")
    def test_randomized_destsets(self, n_ports, name, send):
        rng = random.Random(n_ports * 1009)
        warm = OmegaNetwork(n_ports)
        cold = OmegaNetwork(n_ports)
        cold.route_plans = None
        for round_index in range(20):
            source = rng.randrange(n_ports)
            size = rng.randint(1, n_ports - 1)
            dests = frozenset(rng.sample(range(n_ports), size))
            payload = rng.choice((0, 20, 84))
            message = _message(source, payload)
            # Twice warm: the second send is guaranteed to replay a plan.
            warm_first = send(warm, message, dests)
            warm_second = send(warm, message, dests)
            cold_first = send(cold, message, dests)
            cold_second = send(cold, message, dests)
            assert warm_first == cold_first, (name, source, dests)
            assert warm_second == cold_second
            assert warm_first == warm_second
        assert warm.total_bits == cold.total_bits
        assert warm.total_messages == cold.total_messages
        assert warm.bits_by_level() == cold.bits_by_level()
        for warm_switch, cold_switch in zip(
            warm.iter_switches(), cold.iter_switches()
        ):
            assert warm_switch.messages == cold_switch.messages
            assert warm_switch.splits == cold_switch.splits

    def test_unicast_cached_equals_cold(self):
        warm = OmegaNetwork(16)
        cold = OmegaNetwork(16)
        cold.route_plans = None
        for source in range(16):
            for dest in (0, 5, 15):
                warm_result = unicast(warm, _message(source), dest)
                cold_result = unicast(cold, _message(source), dest)
                assert warm_result == cold_result
        assert warm.total_bits == cold.total_bits

    def test_replay_preserves_load_order_and_parents(self):
        warm = OmegaNetwork(16)
        cold = OmegaNetwork(16)
        cold.route_plans = None
        dests = frozenset({1, 4, 9, 12})
        message = _message(3)
        multicast_scheme2(warm, message, dests)  # build
        warm_result = multicast_scheme2(warm, message, dests)  # replay
        cold_result = multicast_scheme2(cold, message, dests)
        assert warm_result.loads == cold_result.loads
        parents = [load.parent for load in warm_result.loads]
        assert parents == [load.parent for load in cold_result.loads]


class TestPlanLifecycle:
    def test_reset_traffic_clears_counters_but_keeps_plans(self):
        network = OmegaNetwork(16)
        caster = Multicaster(network)
        caster.send(_message(2), frozenset({5, 9, 11}))
        assert network.total_bits > 0
        plans_before = len(network.route_plans)
        assert plans_before > 0
        network.reset_traffic()
        assert network.total_bits == 0
        assert network.total_messages == 0
        assert all(link.bits == 0 for link in network.iter_links())
        assert len(network.route_plans) == plans_before
        # Replaying after the reset re-accounts exactly one send's worth.
        result = caster.send(_message(2), frozenset({5, 9, 11}))
        assert network.total_bits == result.cost

    def test_plans_do_not_leak_across_topologies(self):
        small = OmegaNetwork(8)
        large = OmegaNetwork(64)
        dests = frozenset({1, 3, 6})
        small_result = multicast_scheme2(small, _message(0), dests)
        large_result = multicast_scheme2(large, _message(0), dests)
        # Same key, different networks: independent caches, different trees.
        assert small.route_plans is not large.route_plans
        assert small_result.loads != large_result.loads
        small_cold = OmegaNetwork(8)
        small_cold.route_plans = None
        assert small_result == multicast_scheme2(
            small_cold, _message(0), dests
        )

    def test_disabled_cache_builds_nothing(self):
        network = OmegaNetwork(16)
        network.route_plans = None
        multicast_combined(network, _message(0), frozenset({3, 7}))
        unicast(network, _message(1), 9)
        assert network.route_plans is None  # nothing resurrects it

    def test_validation_still_raised_on_memoised_entry_points(self):
        from repro.errors import MulticastError

        network = OmegaNetwork(8)
        with pytest.raises(MulticastError):
            multicast_scheme2(network, _message(0), frozenset({99}))
        # ... and again, to prove the invalid set was never cached.
        with pytest.raises(MulticastError):
            multicast_scheme2(network, _message(0), frozenset({99}))

    def test_combined_rechooses_winner_per_payload(self):
        # The break-even between schemes depends on the payload size, so
        # a cached combined plan triple must re-probe per message.
        network = OmegaNetwork(64)
        dests = frozenset(range(32))
        small = multicast_combined(network, _message(0, 0), dests)
        large = multicast_combined(network, _message(0, 10_000), dests)
        assert small.cost <= large.cost
        cold = OmegaNetwork(64)
        cold.route_plans = None
        assert small == multicast_combined(cold, _message(0, 0), dests)
        assert large == multicast_combined(cold, _message(0, 10_000), dests)


class TestRoutePlanCache:
    def test_lru_eviction_bounds_the_cache(self):
        cache = RoutePlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert len(cache) == 2

    def test_stats_track_hits_and_misses(self):
        cache = RoutePlanCache()
        cache.get("missing")
        cache.put("k", object())
        cache.get("k")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["plans"] == 1

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            RoutePlanCache(maxsize=0)


class TestSlots:
    """The hot dataclasses must stay ``__dict__``-free."""

    @pytest.mark.parametrize(
        "instance",
        [
            Link(0, 0),
            LinkLoad(0, 0, 20),
            Message(source=0, payload_bits=20),
            Reference(node=0, op=Op.READ, address=Address(0, 0)),
        ],
        ids=["Link", "LinkLoad", "Message", "Reference"],
    )
    def test_no_instance_dict(self, instance):
        assert not hasattr(instance, "__dict__")

    def test_links_used_counts_distinct_links(self):
        network = OmegaNetwork(8)
        result = multicast_scheme1(network, _message(0), frozenset({3, 5}))
        # Two unicasts share the level-0 source link: loads > links_used.
        assert len(result.loads) == 2 * (network.n_stages + 1)
        keys = {(load.level, load.position) for load in result.loads}
        assert result.links_used == len(keys)
        assert result.links_used < len(result.loads)
