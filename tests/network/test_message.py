"""Unit tests for the network-level message type."""

import pytest

from repro.network.message import Message


class TestMessage:
    def test_serials_are_unique_and_increasing(self):
        first = Message(source=0, payload_bits=1)
        second = Message(source=0, payload_bits=1)
        assert second.serial > first.serial

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Message(source=0, payload_bits=-1)

    def test_zero_payload_allowed(self):
        assert Message(source=0, payload_bits=0).payload_bits == 0

    def test_kind_defaults_to_data(self):
        assert Message(source=1, payload_bits=4).kind == "data"

    def test_immutability(self):
        message = Message(source=1, payload_bits=4)
        with pytest.raises(AttributeError):
            message.payload_bits = 8

    def test_equality_ignores_serial_and_payload_object(self):
        a = Message(source=1, payload_bits=4, payload={"x": 1})
        b = Message(source=1, payload_bits=4, payload={"y": 2})
        assert a == b

    def test_payload_carries_structured_content(self):
        message = Message(
            source=2, payload_bits=8, payload=[1, 2, 3]
        )
        assert message.payload == [1, 2, 3]
