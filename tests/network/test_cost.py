"""The paper's closed forms (eqs. 2-8) against independent summations and
against the simulated fabric -- plus property-based checks with hypothesis.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network import cost
from repro.network.message import Message
from repro.network.multicast import (
    multicast_scheme1,
    multicast_scheme2,
    multicast_scheme3,
)
from repro.network.topology import OmegaNetwork

powers = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128])
network_sizes = st.sampled_from([4, 8, 16, 64, 256, 1024])
message_sizes = st.integers(min_value=0, max_value=200)


class TestClosedFormsEqualDirectSums:
    @given(n=powers, network=network_sizes, m_bits=message_sizes)
    def test_eq2(self, n, network, m_bits):
        if n > network:
            return
        assert cost.cc1(n, network, m_bits) == cost.cc1_direct(
            n, network, m_bits
        )

    @given(n=powers, network=network_sizes, m_bits=message_sizes)
    def test_eq3(self, n, network, m_bits):
        if n > network:
            return
        assert cost.cc2_worst(n, network, m_bits) == cost.cc2_worst_direct(
            n, network, m_bits
        )

    @given(n1=powers, network=network_sizes, m_bits=message_sizes)
    def test_eq5(self, n1, network, m_bits):
        if n1 > network:
            return
        assert cost.cc3(n1, network, m_bits) == cost.cc3_direct(
            n1, network, m_bits
        )

    @given(
        n=powers, n1=powers, network=network_sizes, m_bits=message_sizes
    )
    def test_eq6(self, n, n1, network, m_bits):
        if not n <= n1 <= network:
            return
        assert cost.cc2_prime(
            n, n1, network, m_bits
        ) == cost.cc2_prime_direct(n, n1, network, m_bits)


class TestPaperDifferenceExpressions:
    @given(n=powers, network=network_sizes, m_bits=message_sizes)
    def test_eq4_is_cc2_minus_cc1(self, n, network, m_bits):
        if n > network or network < 4:
            return
        assert cost.cc2_minus_cc1(n, network, m_bits) == cost.cc2_worst(
            n, network, m_bits
        ) - cost.cc1(n, network, m_bits)

    @given(
        n=powers, n1=powers, network=network_sizes, m_bits=message_sizes
    )
    def test_eq7_is_cc3_minus_cc2_prime(self, n, n1, network, m_bits):
        if not n <= n1 <= network:
            return
        assert cost.cc3_minus_cc2_prime(
            n, n1, network, m_bits
        ) == cost.cc3(n1, network, m_bits) - cost.cc2_prime(
            n, n1, network, m_bits
        )


class TestFormulaStructure:
    def test_cc2_prime_with_full_partition_is_cc2_worst(self):
        # eq. 6 degenerates to eq. 3 when the partition is the whole machine.
        for network in (8, 64, 256):
            for n in (1, 2, 8):
                for m_bits in (0, 20, 77):
                    assert cost.cc2_prime(
                        n, network, network, m_bits
                    ) == cost.cc2_worst(n, network, m_bits)

    def test_cc3_of_one_destination_is_unicast_with_double_tag(self):
        # A 2m-bit tag on a single path, two bits stripped per stage.
        for network in (8, 64):
            m = network.bit_length() - 1
            for m_bits in (0, 20):
                expected = sum(
                    m_bits + 2 * (m - i) for i in range(m + 1)
                )
                assert cost.cc3(1, network, m_bits) == expected

    def test_cc1_grows_linearly(self):
        assert cost.cc1(8, 64, 20) == 8 * cost.cc1(1, 64, 20)

    def test_cc2_worst_subadditive_versus_scheme1_at_full_broadcast(self):
        # Broadcasting to everyone, the vector scheme must beat repeated
        # unicast for any positive message size on a non-trivial network.
        for network in (64, 256, 1024):
            assert cost.cc2_worst(network, network, 20) < cost.cc1(
                network, network, 20
            )

    def test_combined_is_min_of_candidates(self):
        for n, n1 in [(1, 8), (4, 16), (16, 16)]:
            combined = cost.cc_combined(n, n1, 256, 20)
            assert combined == min(
                cost.cc1(n, 256, 20),
                cost.cc2_prime(n, n1, 256, 20),
                cost.cc3(n1, 256, 20),
            )

    def test_cheapest_scheme_returns_winner(self):
        scheme = cost.cheapest_scheme(4, 128, 1024, 20)
        values = {
            1: cost.cc1(4, 1024, 20),
            2: cost.cc2_prime(4, 128, 1024, 20),
            3: cost.cc3(128, 1024, 20),
        }
        assert values[scheme] == min(values.values())


class TestValidation:
    def test_rejects_non_power_of_two_n(self):
        with pytest.raises(ConfigurationError):
            cost.cc1(3, 64, 20)

    def test_rejects_oversized_n(self):
        with pytest.raises(ConfigurationError):
            cost.cc1(128, 64, 20)
        with pytest.raises(ConfigurationError):
            cost.cc3(128, 64, 20)

    def test_rejects_negative_message(self):
        with pytest.raises(ConfigurationError):
            cost.cc2_worst(4, 64, -1)

    def test_rejects_n_above_n1(self):
        with pytest.raises(ConfigurationError):
            cost.cc2_prime(16, 8, 64, 20)


class TestPlacements:
    def test_worst_case_placement_spreads_prefixes(self):
        dests = cost.worst_case_placement(64, 8)
        assert len(set(d >> 3 for d in dests)) == 8

    def test_adjacent_placement_is_contiguous(self):
        assert cost.adjacent_placement(64, 8, base=16) == tuple(
            range(16, 24)
        )

    def test_adjacent_placement_requires_alignment(self):
        with pytest.raises(ConfigurationError):
            cost.adjacent_placement(64, 8, base=4)

    def test_spread_in_partition_strides(self):
        dests = cost.spread_in_partition_placement(64, 4, 16, base=16)
        assert dests == (16, 20, 24, 28)


class TestSimulatedFabricMatchesFormulas:
    """The strongest check: bits on simulated links == the paper's algebra."""

    @settings(max_examples=60)
    @given(
        n=st.sampled_from([1, 2, 4, 8]),
        network=st.sampled_from([8, 32, 128]),
        m_bits=st.integers(min_value=0, max_value=60),
        source=st.integers(min_value=0, max_value=7),
    )
    def test_scheme1(self, n, network, m_bits, source):
        net = OmegaNetwork(network)
        dests = cost.worst_case_placement(network, n)
        result = multicast_scheme1(
            net, Message(source=source, payload_bits=m_bits), dests,
            commit=False,
        )
        assert result.cost == cost.cc1(n, network, m_bits)

    @settings(max_examples=60)
    @given(
        n=st.sampled_from([1, 2, 4, 8]),
        network=st.sampled_from([8, 32, 128]),
        m_bits=st.integers(min_value=0, max_value=60),
        source=st.integers(min_value=0, max_value=7),
    )
    def test_scheme2_worst(self, n, network, m_bits, source):
        net = OmegaNetwork(network)
        dests = cost.worst_case_placement(network, n)
        result = multicast_scheme2(
            net, Message(source=source, payload_bits=m_bits), dests,
            commit=False,
        )
        assert result.cost == cost.cc2_worst(n, network, m_bits)

    @settings(max_examples=60)
    @given(
        n1=st.sampled_from([1, 2, 4, 8]),
        network=st.sampled_from([8, 32, 128]),
        m_bits=st.integers(min_value=0, max_value=60),
        source=st.integers(min_value=0, max_value=7),
    )
    def test_scheme3_adjacent(self, n1, network, m_bits, source):
        net = OmegaNetwork(network)
        dests = cost.adjacent_placement(network, n1)
        result = multicast_scheme3(
            net, Message(source=source, payload_bits=m_bits), dests,
            commit=False,
        )
        assert result.cost == cost.cc3(n1, network, m_bits)

    @settings(max_examples=40)
    @given(
        n=st.sampled_from([1, 2, 4]),
        n1=st.sampled_from([4, 8, 16]),
        m_bits=st.integers(min_value=0, max_value=60),
    )
    def test_scheme2_within_partition(self, n, n1, m_bits):
        if n > n1:
            return
        net = OmegaNetwork(128)
        dests = cost.spread_in_partition_placement(128, n, n1)
        result = multicast_scheme2(
            net, Message(source=0, payload_bits=m_bits), dests, commit=False
        )
        assert result.cost == cost.cc2_prime(n, n1, 128, m_bits)
