"""Property-based tests for the radix-generalised network."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.message import Message
from repro.network.radix import (
    RadixOmegaNetwork,
    cc1_radix,
    radix_multicast_scheme1,
    radix_multicast_scheme2,
    radix_unicast,
)

GEOMETRIES = [(16, 4), (27, 3), (64, 4), (64, 8), (32, 2)]

common = settings(max_examples=60, deadline=None)


@st.composite
def geometry_and_dests(draw):
    n_ports, radix = draw(st.sampled_from(GEOMETRIES))
    dests = draw(
        st.sets(st.integers(0, n_ports - 1), min_size=1, max_size=12)
    )
    source = draw(st.integers(0, n_ports - 1))
    payload = draw(st.integers(0, 60))
    return n_ports, radix, source, dests, payload


class TestRadixRouting:
    @common
    @given(case=geometry_and_dests())
    def test_unicast_reaches_destination(self, case):
        n_ports, radix, source, dests, payload = case
        net = RadixOmegaNetwork(n_ports, radix)
        for dest in dests:
            positions = net.route_positions(source, dest)
            assert positions[-1] == dest
            assert len(positions) == net.n_stages + 1

    @common
    @given(case=geometry_and_dests())
    def test_unicast_cost_matches_formula(self, case):
        n_ports, radix, source, dests, payload = case
        net = RadixOmegaNetwork(n_ports, radix)
        dest = min(dests)
        result = radix_unicast(
            net,
            Message(source=source, payload_bits=payload),
            dest,
            commit=False,
        )
        assert result.cost == cc1_radix(1, n_ports, radix, payload)


class TestRadixScheme2:
    @common
    @given(case=geometry_and_dests())
    def test_delivers_exactly_the_requested_set(self, case):
        n_ports, radix, source, dests, payload = case
        net = RadixOmegaNetwork(n_ports, radix)
        result = radix_multicast_scheme2(
            net,
            Message(source=source, payload_bits=payload),
            dests,
            commit=False,
        )
        assert result.delivered == frozenset(dests)

    @common
    @given(case=geometry_and_dests())
    def test_never_costs_more_than_scheme1(self, case):
        # With the full vector tag this is not guaranteed for tiny sets;
        # it is guaranteed that the *tree* uses no more link crossings.
        n_ports, radix, source, dests, payload = case
        net = RadixOmegaNetwork(n_ports, radix)
        message = Message(source=source, payload_bits=payload)
        tree = radix_multicast_scheme2(net, message, dests, commit=False)
        repeated = radix_multicast_scheme1(
            net, message, dests, commit=False
        )
        assert len(tree.loads) <= len(repeated.loads)

    @common
    @given(case=geometry_and_dests())
    def test_tree_links_are_distinct(self, case):
        n_ports, radix, source, dests, payload = case
        net = RadixOmegaNetwork(n_ports, radix)
        result = radix_multicast_scheme2(
            net,
            Message(source=source, payload_bits=payload),
            dests,
            commit=False,
        )
        keys = [load.key for load in result.loads]
        assert len(keys) == len(set(keys))
