"""Tests for the radix generalisation (a x a switches, §3's remark)."""

import pytest

from repro.errors import ConfigurationError, MulticastError
from repro.network import cost
from repro.network.message import Message
from repro.network.radix import (
    RadixOmegaNetwork,
    cc1_radix,
    cc2_worst_radix,
    cc3_radix,
    digit_bits,
    radix_multicast_scheme1,
    radix_multicast_scheme2,
    radix_multicast_scheme3,
    radix_unicast,
)


def msg(source=0, bits=20):
    return Message(source=source, payload_bits=bits)


class TestGeometry:
    def test_stage_counts(self):
        assert RadixOmegaNetwork(64, 4).n_stages == 3
        assert RadixOmegaNetwork(64, 8).n_stages == 2
        assert RadixOmegaNetwork(27, 3).n_stages == 3

    def test_rejects_non_power_geometries(self):
        with pytest.raises(ConfigurationError):
            RadixOmegaNetwork(48, 4)
        with pytest.raises(ConfigurationError):
            RadixOmegaNetwork(64, 1)

    def test_digit_bits(self):
        assert digit_bits(2) == 1
        assert digit_bits(4) == 2
        assert digit_bits(5) == 3
        assert digit_bits(8) == 3

    def test_shuffle_is_digit_rotation(self):
        net = RadixOmegaNetwork(64, 4)  # 3 base-4 digits
        # 0o123 (base 4: 1,2,3) rotates to (2,3,1).
        position = 1 * 16 + 2 * 4 + 3
        assert net.shuffle(position) == 2 * 16 + 3 * 4 + 1

    def test_shuffle_is_permutation(self):
        net = RadixOmegaNetwork(27, 3)
        assert sorted(net.shuffle(p) for p in range(27)) == list(range(27))


class TestRouting:
    @pytest.mark.parametrize("n_ports,radix", [(16, 4), (27, 3), (64, 8)])
    def test_every_pair_routes(self, n_ports, radix):
        net = RadixOmegaNetwork(n_ports, radix)
        for source in range(0, n_ports, 3):
            for dest in range(n_ports):
                positions = net.route_positions(source, dest)
                assert positions[0] == source
                assert positions[-1] == dest

    def test_radix2_routes_match_binary_network(self):
        from repro.network.topology import OmegaNetwork

        binary = OmegaNetwork(16)
        radix = RadixOmegaNetwork(16, 2)
        for source in range(16):
            for dest in range(16):
                assert radix.route_positions(
                    source, dest
                ) == binary.route_positions(source, dest)


class TestSchemeCosts:
    def test_radix2_reduces_to_the_paper_closed_forms(self):
        for n_ports in (8, 64):
            for n in (1, 2, 4, 8):
                for m_bits in (0, 20):
                    assert cc1_radix(n, n_ports, 2, m_bits) == cost.cc1(
                        n, n_ports, m_bits
                    )
                    assert cc2_worst_radix(
                        n, n_ports, 2, m_bits
                    ) == cost.cc2_worst(n, n_ports, m_bits)
                    assert cc3_radix(
                        n, n_ports, 2, m_bits
                    ) == cost.cc3(n, n_ports, m_bits)

    @pytest.mark.parametrize("n_ports,radix", [(64, 4), (64, 8), (27, 3)])
    def test_scheme1_simulation_matches_formula(self, n_ports, radix):
        net = RadixOmegaNetwork(n_ports, radix)
        dests = list(range(0, n_ports, max(1, n_ports // 8)))[:4]
        result = radix_multicast_scheme1(net, msg(), dests, commit=False)
        assert result.cost == cc1_radix(len(dests), n_ports, radix, 20)

    @pytest.mark.parametrize("n_ports,radix", [(64, 4), (27, 3)])
    def test_scheme2_worst_simulation_matches_formula(
        self, n_ports, radix
    ):
        net = RadixOmegaNetwork(n_ports, radix)
        m = net.n_stages
        for k in range(m + 1):
            n = radix**k
            stride = n_ports // n
            dests = [j * stride for j in range(n)]
            result = radix_multicast_scheme2(
                net, msg(), dests, commit=False
            )
            assert result.cost == cc2_worst_radix(
                n, n_ports, radix, 20
            ), (n_ports, radix, n)

    @pytest.mark.parametrize("n_ports,radix", [(64, 4), (64, 8), (27, 3)])
    def test_scheme3_simulation_matches_formula(self, n_ports, radix):
        net = RadixOmegaNetwork(n_ports, radix)
        for l in range(net.n_stages + 1):
            n1 = radix**l
            result = radix_multicast_scheme3(
                net, msg(source=1), range(n1), commit=False
            )
            assert result.cost == cc3_radix(n1, n_ports, radix, 20)

    def test_higher_radix_needs_fewer_stages_hence_less_tag(self):
        # Same machine size, bigger switches: shorter paths, cheaper
        # unicasts (the engineering trade §3 alludes to).
        assert cc1_radix(1, 64, 8, 20) < cc1_radix(1, 64, 2, 20)


class TestSchemeBehaviour:
    def test_scheme2_delivers_arbitrary_sets(self):
        net = RadixOmegaNetwork(64, 4)
        dests = {0, 5, 21, 22, 63}
        result = radix_multicast_scheme2(net, msg(), dests, commit=False)
        assert result.delivered == dests

    def test_scheme3_rejects_unaligned_blocks(self):
        net = RadixOmegaNetwork(64, 4)
        with pytest.raises(MulticastError):
            radix_multicast_scheme3(net, msg(), [1, 2, 3, 4], commit=False)
        with pytest.raises(MulticastError):
            radix_multicast_scheme3(net, msg(), [0, 1, 2], commit=False)

    def test_unicast_commit_updates_counters(self):
        net = RadixOmegaNetwork(16, 4)
        result = radix_unicast(net, msg(), 9)
        assert net.total_bits == result.cost
        net.reset_traffic()
        assert net.total_bits == 0

    def test_empty_scheme2_multicast(self):
        net = RadixOmegaNetwork(16, 4)
        assert radix_multicast_scheme2(net, msg(), [], commit=False).cost == 0
