"""Recovery edge cases: partial multicast delivery, re-send exhaustion,
degradation, and readers joining while ownership moves -- each asserted
against the Stats counters, the per-incident fault log, and the trace
recorder's fault events (satellite of the model-checking PR; the same
scenarios are model-checked abstractly in :mod:`repro.mc`)."""

import pytest

import repro.sim.stats as ev
from repro.cache.state import Mode
from repro.faults import DropRule, attach_scripted
from repro.obs import TraceRecorder, attach_recorder
from repro.protocol.messages import MsgKind
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.system import System, SystemConfig
from repro.types import Address


def build(n_nodes, *, max_retries=1, default_mode=Mode.DISTRIBUTED_WRITE):
    system = System(
        SystemConfig(n_nodes=n_nodes, cache_entries=8, block_size_words=2)
    )
    scripted = attach_scripted(system, max_retries=max_retries)
    protocol = StenstromProtocol(system, default_mode=default_mode)
    recorder = attach_recorder(protocol, TraceRecorder())
    return protocol, scripted, recorder


def addr(block, offset=0):
    return Address(block, offset)


def fault_events(recorder, name):
    return [e for e in recorder.events if e.kind == name]


@pytest.mark.parametrize("n_nodes", [4, 8])
class TestPartialDeliveryRecovers:
    def test_per_dest_resend_completes_the_update(self, n_nodes):
        protocol, scripted, recorder = build(n_nodes, max_retries=2)
        protocol.write(0, addr(0), 10)
        for reader in range(1, n_nodes):
            protocol.read(reader, addr(0))
        # The initial round misses one destination; the per-destination
        # re-send round delivers it within budget.
        scripted.add_rule(
            DropRule(
                drops=1, kind=MsgKind.WRITE_UPDATE.value, source=0, dest=2
            )
        )
        protocol.write(0, addr(0), 11)
        protocol.check_invariants()
        for reader in range(n_nodes):
            assert protocol.read(reader, addr(0)) == 11
        assert protocol.stats.events[ev.FAULT_DROPS] == 1
        assert protocol.stats.events[ev.FAULT_RETRIES] >= 1
        assert ev.FAULT_RETRY_EXHAUSTED not in protocol.stats.events
        assert ev.FAULT_DEGRADED_BLOCKS not in protocol.stats.events
        assert not protocol.uncacheable_blocks


@pytest.mark.parametrize("n_nodes", [4, 8])
class TestResendExhaustionDegrades:
    def exhaust(self, n_nodes, dest=2, max_retries=1):
        protocol, scripted, recorder = build(n_nodes, max_retries=max_retries)
        protocol.write(0, addr(0), 10)
        for reader in range(1, n_nodes):
            protocol.read(reader, addr(0))
        # Initial round + every re-send round to `dest` is lost:
        # max_retries + 1 drops exhaust the budget mid-update.
        scripted.add_rule(
            DropRule(
                drops=max_retries + 1,
                kind=MsgKind.WRITE_UPDATE.value,
                source=0,
                dest=dest,
            )
        )
        protocol.write(0, addr(0), 11)
        return protocol, recorder

    def test_block_degrades_and_write_survives(self, n_nodes):
        protocol, _ = self.exhaust(n_nodes)
        assert protocol.uncacheable_blocks == {0}
        for cache in protocol.system.caches:
            assert cache.find(0) is None
        # Partial delivery could not be aborted; degradation wrote the
        # owner's value back, so every node reads it memory-direct.
        for reader in range(n_nodes):
            assert protocol.read(reader, addr(0)) == 11
        protocol.check_invariants()

    def test_stats_count_exhaustion_and_degradation_separately(self, n_nodes):
        protocol, _ = self.exhaust(n_nodes)
        assert protocol.stats.events[ev.FAULT_RETRY_EXHAUSTED] == 1
        assert protocol.stats.events[ev.FAULT_DEGRADED_BLOCKS] == 1

    def test_fault_log_attributes_the_triggering_destination(self, n_nodes):
        protocol, _ = self.exhaust(n_nodes, dest=3)
        log = protocol.stats.fault_event_log()
        exhausted = [
            e for e in log if e["event"] == ev.FAULT_RETRY_EXHAUSTED
        ]
        degraded = [
            e for e in log if e["event"] == ev.FAULT_DEGRADED_BLOCKS
        ]
        # Same reference, same block -- but two distinct incidents, each
        # carrying its own attribution.
        assert len(exhausted) == 1 and len(degraded) == 1
        assert exhausted[0]["block"] == 0
        assert exhausted[0]["dests"] == [3]
        assert exhausted[0]["kind"] == MsgKind.WRITE_UPDATE.value
        assert degraded[0]["block"] == 0
        assert degraded[0]["cause"] == "retry_exhausted"
        assert degraded[0]["dests"] == [3]

    def test_recorder_events_reconcile_with_counters(self, n_nodes):
        protocol, recorder = self.exhaust(n_nodes)
        for name in (ev.FAULT_RETRY_EXHAUSTED, ev.FAULT_DEGRADED_BLOCKS):
            assert len(fault_events(recorder, name)) == (
                protocol.stats.events[name]
            )
        (exhausted,) = fault_events(recorder, ev.FAULT_RETRY_EXHAUSTED)
        assert dict(exhausted.args)["block"] == 0

    def test_higher_budget_survives_what_lower_budget_cannot(self, n_nodes):
        protocol, _ = self.exhaust(n_nodes, max_retries=3)
        # Rule drops 4 rounds; with max_retries=3 that still exhausts.
        assert protocol.uncacheable_blocks == {0}
        protocol2, scripted2, _ = build(n_nodes, max_retries=3)
        protocol2.write(0, addr(0), 10)
        protocol2.read(1, addr(0))
        scripted2.add_rule(
            DropRule(
                drops=2, kind=MsgKind.WRITE_UPDATE.value, source=0, dest=1
            )
        )
        protocol2.write(0, addr(0), 11)
        assert not protocol2.uncacheable_blocks
        assert protocol2.read(1, addr(0)) == 11


@pytest.mark.parametrize("n_nodes", [4, 8])
class TestReaderJoinsRacingOwnershipTransfer:
    def test_gr_reader_joins_while_transfer_multicast_recovers(self, n_nodes):
        protocol, scripted, _ = build(
            n_nodes, max_retries=2, default_mode=Mode.GLOBAL_READ
        )
        protocol.write(0, addr(0), 10)  # node 0 owns (global read)
        protocol.read(1, addr(0))  # placeholder at 1 -> 0
        protocol.read(2, addr(0))  # placeholder at 2 -> 0
        # Node 3 takes ownership; the OWNER_UPDATE repointing the
        # placeholders loses its delivery to node 1 once and must be
        # re-sent before the transfer completes.
        scripted.add_rule(
            DropRule(
                drops=1, kind=MsgKind.OWNER_UPDATE.value, source=0, dest=1
            )
        )
        protocol.write(3, addr(0), 11)
        protocol.check_invariants()
        # The joined reader's placeholder chain still resolves: the
        # repointed placeholder names the new owner.
        assert protocol.read(1, addr(0)) == 11
        assert protocol.read(2, addr(0)) == 11
        entry = protocol.system.caches[1].find(0)
        assert entry is not None and entry.state_field.owner == 3
        assert not protocol.uncacheable_blocks

    def test_dw_reader_joins_between_transfer_and_next_update(self, n_nodes):
        protocol, scripted, _ = build(n_nodes, max_retries=2)
        protocol.write(0, addr(0), 10)
        protocol.read(1, addr(0))
        # Ownership moves 0 -> 1; a late reader joins immediately after,
        # then the next update multicast loses the late joiner's copy
        # once and recovers per destination.
        protocol.write(1, addr(0), 11)
        protocol.read(2, addr(0))
        scripted.add_rule(
            DropRule(
                drops=1, kind=MsgKind.WRITE_UPDATE.value, source=1, dest=2
            )
        )
        protocol.write(1, addr(0), 12)
        protocol.check_invariants()
        for reader in (0, 1, 2):
            assert protocol.read(reader, addr(0)) == 12
        assert ev.FAULT_DEGRADED_BLOCKS not in protocol.stats.events
