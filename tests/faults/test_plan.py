"""FaultPlan: validation, canonicalisation, hashing, serialisation."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import DEFAULT_MAX_RETRIES, FaultPlan


class TestValidation:
    @pytest.mark.parametrize(
        "field", ["drop_probability", "duplicate_probability",
                  "delay_probability"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.0, 1.5])
    def test_probabilities_must_be_in_unit_interval(self, field, value):
        with pytest.raises(FaultInjectionError, match=field):
            FaultPlan(**{field: value})

    def test_max_retries_must_be_positive(self):
        with pytest.raises(FaultInjectionError, match="max_retries"):
            FaultPlan(max_retries=0)

    def test_malformed_dead_pairs_rejected(self):
        with pytest.raises(FaultInjectionError, match="dead_links"):
            FaultPlan(dead_links=("nope",))

    def test_defaults(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.max_retries == DEFAULT_MAX_RETRIES


class TestCanonicalisation:
    def test_dead_elements_sorted_and_deduped(self):
        plan = FaultPlan(dead_links=((2, 1), (0, 3), (2, 1)))
        assert plan.dead_links == ((0, 3), (2, 1))

    def test_order_does_not_change_hash(self):
        a = FaultPlan(dead_links=((2, 1), (0, 3)), dead_switches=((1, 1),))
        b = FaultPlan(dead_links=((0, 3), (2, 1)), dead_switches=((1, 1),))
        assert a.plan_hash == b.plan_hash

    def test_every_field_changes_the_hash(self):
        base = FaultPlan(drop_probability=0.1)
        variants = [
            FaultPlan(drop_probability=0.2),
            FaultPlan(drop_probability=0.1, duplicate_probability=0.1),
            FaultPlan(drop_probability=0.1, delay_probability=0.1),
            FaultPlan(drop_probability=0.1, dead_links=((0, 0),)),
            FaultPlan(drop_probability=0.1, dead_switches=((0, 0),)),
            FaultPlan(drop_probability=0.1, seed=1),
            FaultPlan(drop_probability=0.1, max_retries=4),
        ]
        hashes = {base.plan_hash} | {plan.plan_hash for plan in variants}
        assert len(hashes) == len(variants) + 1


class TestSerialisation:
    def test_round_trip(self):
        plan = FaultPlan(
            drop_probability=0.05,
            duplicate_probability=0.02,
            delay_probability=0.01,
            dead_links=((1, 3),),
            dead_switches=((0, 2),),
            seed=7,
            max_retries=4,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_version_rejected(self):
        data = FaultPlan(drop_probability=0.1).to_dict()
        data["version"] = 99
        with pytest.raises(FaultInjectionError, match="version 99"):
            FaultPlan.from_dict(data)

    def test_is_empty_only_for_no_faults(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(drop_probability=0.01).is_empty
        assert not FaultPlan(dead_links=((0, 0),)).is_empty
        # A seed alone injects nothing.
        assert FaultPlan(seed=42).is_empty

    def test_summary_names_every_knob(self):
        text = FaultPlan(drop_probability=0.1, seed=3).summary()
        assert "drop=0.1" in text
        assert "seed=3" in text
