"""Fault plans participate in the experiment content hash.

The regression this file pins down: a cached fault-free result must
never be served for a faulty configuration (and vice versa), and specs
without a plan must serialise and hash exactly as they did before fault
injection existed.
"""

import dataclasses

from repro.faults import FaultPlan
from repro.runner import ResultCache, WorkloadSpec, execute_spec
from repro.runner.spec import ExperimentSpec
from repro.sim.system import SystemConfig


def make_spec(fault_plan=None):
    return ExperimentSpec(
        protocol="two-mode",
        workload=WorkloadSpec(
            kind="random",
            n_nodes=8,
            n_references=80,
            write_fraction=0.3,
            seed=1,
        ),
        config=SystemConfig(n_nodes=8),
        fault_plan=fault_plan,
    )


class TestHashing:
    def test_fault_plan_changes_the_spec_hash(self):
        clean = make_spec()
        faulty = make_spec(FaultPlan(drop_probability=0.1))
        assert clean.spec_hash != faulty.spec_hash

    def test_plan_parameters_change_the_spec_hash(self):
        a = make_spec(FaultPlan(drop_probability=0.1, seed=0))
        b = make_spec(FaultPlan(drop_probability=0.1, seed=1))
        assert a.spec_hash != b.spec_hash

    def test_no_plan_serialises_without_the_key(self):
        # Back-compat: pre-fault specs must keep their exact dict shape
        # (and therefore their exact hashes, cache paths, sweep_hash
        # metadata in committed exhibits).
        assert "fault_plan" not in make_spec().to_dict()

    def test_empty_plan_normalised_to_none(self):
        spec = make_spec(FaultPlan())
        assert spec.fault_plan is None
        assert spec.spec_hash == make_spec().spec_hash

    def test_round_trip_preserves_the_plan(self):
        plan = FaultPlan(drop_probability=0.05, dead_links=((1, 1),))
        spec = make_spec(plan)
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt.fault_plan == plan
        assert rebuilt.spec_hash == spec.spec_hash

    def test_describe_names_the_faults(self):
        assert "faults[" not in make_spec().describe()
        assert "drop=0.1" in make_spec(
            FaultPlan(drop_probability=0.1)
        ).describe()


class TestCacheIsolation:
    def test_fault_free_result_never_serves_faulty_spec(self, tmp_path):
        cache = ResultCache(tmp_path)
        clean = make_spec()
        faulty = make_spec(FaultPlan(drop_probability=0.1, seed=2))

        clean_report = execute_spec(clean)
        cache.put(clean, clean_report)
        assert cache.get(clean) is not None
        assert cache.get(faulty) is None

        faulty_report = execute_spec(faulty)
        cache.put(faulty, faulty_report)
        # Both now cached, each behind its own hash -- and they really
        # are different results.
        assert cache.get(clean).to_dict() == clean_report.to_dict()
        assert cache.get(faulty).to_dict() == faulty_report.to_dict()
        assert (
            cache.get(clean).network_total_bits
            != cache.get(faulty).network_total_bits
        )

    def test_executed_faulty_spec_reports_fault_events(self):
        report = execute_spec(
            make_spec(FaultPlan(drop_probability=0.1, seed=2))
        )
        assert report.stats.fault_events()


def test_spec_stays_frozen_with_plan():
    spec = make_spec(FaultPlan(drop_probability=0.1))
    try:
        spec.fault_plan = None
    except dataclasses.FrozenInstanceError:
        return
    raise AssertionError("ExperimentSpec must stay frozen")
