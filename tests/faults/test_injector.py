"""FaultInjector: route liveness, geometry validation, seeded draws."""

import pytest

from repro.errors import FaultInjectionError, UnreachableRouteError
from repro.faults import FaultInjector, FaultPlan
from repro.network.topology import OmegaNetwork


def injector(n_ports=8, **plan_kwargs):
    return FaultInjector(OmegaNetwork(n_ports), FaultPlan(**plan_kwargs))


class TestGeometry:
    def test_link_level_out_of_range(self):
        with pytest.raises(FaultInjectionError, match="dead link"):
            injector(8, dead_links=((4, 0),))  # levels 0..3 for N=8

    def test_link_position_out_of_range(self):
        with pytest.raises(FaultInjectionError, match="dead link"):
            injector(8, dead_links=((0, 8),))

    def test_switch_stage_out_of_range(self):
        with pytest.raises(FaultInjectionError, match="dead switch"):
            injector(8, dead_switches=((3, 0),))  # stages 0..2 for N=8

    def test_switch_index_out_of_range(self):
        with pytest.raises(FaultInjectionError, match="dead switch"):
            injector(8, dead_switches=((0, 4),))  # indices 0..3 for N=8


class TestRouteLiveness:
    def test_no_dead_elements_means_everything_alive(self):
        inj = injector(8)
        assert all(
            inj.route_alive(s, d) for s in range(8) for d in range(8)
        )

    def test_dead_link_kills_exactly_the_routes_crossing_it(self):
        network = OmegaNetwork(8)
        dead = (1, 1)
        inj = FaultInjector(network, FaultPlan(dead_links=(dead,)))
        for source in range(8):
            for dest in range(8):
                positions = network.route_positions(source, dest)
                crosses = positions[dead[0]] == dead[1]
                assert inj.route_alive(source, dest) == (not crosses)

    def test_dead_switch_kills_exactly_the_routes_crossing_it(self):
        network = OmegaNetwork(8)
        dead = (1, 2)
        inj = FaultInjector(network, FaultPlan(dead_switches=(dead,)))
        for source in range(8):
            for dest in range(8):
                positions = network.route_positions(source, dest)
                crosses = positions[dead[0] + 1] // 2 == dead[1]
                assert inj.route_alive(source, dest) == (not crosses)

    def test_routes_are_asymmetric_so_pair_alive_needs_both(self):
        # Find a pair where a->b dies but b->a survives, proving
        # pair_alive is stronger than route_alive.
        network = OmegaNetwork(8)
        inj = FaultInjector(network, FaultPlan(dead_links=((1, 1),)))
        asymmetric = [
            (a, b)
            for a in range(8)
            for b in range(8)
            if inj.route_alive(a, b) != inj.route_alive(b, a)
        ]
        assert asymmetric, "expected at least one asymmetric pair"
        a, b = asymmetric[0]
        assert not inj.pair_alive(a, b)
        assert not inj.pair_alive(b, a)

    def test_unreachable_dests_sorted(self):
        inj = injector(8, dead_links=((1, 1),))
        dead = inj.unreachable_dests(0, range(8))
        assert list(dead) == sorted(dead)
        assert all(not inj.pair_alive(0, d) for d in dead)

    def test_check_route_raises_with_endpoints(self):
        network = OmegaNetwork(8)
        inj = FaultInjector(network, FaultPlan(dead_links=((1, 1),)))
        victim = next(
            (s, d)
            for s in range(8)
            for d in range(8)
            if not inj.route_alive(s, d)
        )
        with pytest.raises(UnreachableRouteError) as info:
            inj.check_route(*victim)
        assert info.value.source == victim[0]
        assert info.value.dest == victim[1]


class TestDraws:
    def test_same_seed_same_schedule(self):
        a = injector(8, drop_probability=0.3, seed=5)
        b = injector(8, drop_probability=0.3, seed=5)
        assert [a.draw() for _ in range(200)] == [
            b.draw() for _ in range(200)
        ]

    def test_different_seed_different_schedule(self):
        a = injector(8, drop_probability=0.3, seed=5)
        b = injector(8, drop_probability=0.3, seed=6)
        assert [a.draw() for _ in range(200)] != [
            b.draw() for _ in range(200)
        ]

    def test_variate_stream_aligned_across_rate_changes(self):
        # Turning one category off must not shift the variates the other
        # categories consume: delivery k sees the same duplicate verdict
        # whether drops are enabled or not.
        with_drop = injector(
            8, drop_probability=0.5, duplicate_probability=0.5, seed=9
        )
        without_drop = injector(8, duplicate_probability=0.5, seed=9)
        a = [with_drop.draw() for _ in range(200)]
        b = [without_drop.draw() for _ in range(200)]
        assert [o.duplicated for o in a] == [o.duplicated for o in b]

    def test_dead_only_plan_consumes_no_variates(self):
        inj = injector(8, dead_links=((1, 1),))
        state = inj._rng.getstate()
        outcome = inj.draw()
        assert outcome == (False, False, False)
        assert inj._rng.getstate() == state
        assert inj.draws == 1
