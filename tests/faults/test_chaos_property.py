"""The chaos acceptance property.

For seeded random traces at N in {8, 16} with drop/duplicate/delay rates
up to 10% and at least one killed link, the protocol must finish every
trace with zero CoherenceErrors under ``check_invariants_every=1`` --
and the same (workload seed, fault plan) must reproduce identical stats
and identical fault-event journals.
"""

import pytest

import repro.sim.stats as ev
from repro.faults import FaultPlan
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.synthetic import random_trace

GRID = [
    (n_nodes, rates, fault_seed)
    for n_nodes in (8, 16)
    for rates in ((0.02, 0.02, 0.02), (0.1, 0.05, 0.05), (0.1, 0.1, 0.1))
    for fault_seed in (0, 1)
]


def run_cell(n_nodes, rates, fault_seed, *, workload_seed=4):
    drop, dup, delay = rates
    plan = FaultPlan(
        drop_probability=drop,
        duplicate_probability=dup,
        delay_probability=delay,
        dead_links=((1, 1),),
        seed=fault_seed,
    )
    trace = random_trace(
        n_nodes, 250, write_fraction=0.35, seed=workload_seed
    )
    system = System(SystemConfig(n_nodes=n_nodes), fault_plan=plan)
    protocol = StenstromProtocol(system)
    report = run_trace(
        protocol, trace, verify=True, check_invariants_every=1
    )
    return report


@pytest.mark.parametrize("n_nodes,rates,fault_seed", GRID)
def test_survives_with_invariants_every_reference(
    n_nodes, rates, fault_seed
):
    # run_trace raises CoherenceError on the first violation; reaching
    # the report at all IS the survival property.
    report = run_cell(n_nodes, rates, fault_seed)
    assert report.verified
    assert report.n_references == 250
    assert report.stats.events[ev.FAULT_DEGRADED_BLOCKS] > 0


@pytest.mark.parametrize(
    "n_nodes,rates,fault_seed", [(8, (0.1, 0.1, 0.1), 0),
                                 (16, (0.1, 0.05, 0.05), 1)]
)
def test_same_seed_and_plan_reproduce_exactly(n_nodes, rates, fault_seed):
    first = run_cell(n_nodes, rates, fault_seed)
    second = run_cell(n_nodes, rates, fault_seed)
    assert first.to_dict() == second.to_dict()
    assert first.stats.fault_events() == second.stats.fault_events()


def test_different_fault_seed_changes_the_schedule():
    a = run_cell(8, (0.1, 0.1, 0.1), 0)
    b = run_cell(8, (0.1, 0.1, 0.1), 1)
    assert a.stats.fault_events() != b.stats.fault_events()
