"""The journal-entry -> flight-incident filter (:mod:`repro.faults.incidents`)."""

from repro.faults import incident_entries


class TestTaskFinish:
    def test_fault_log_fans_out_one_event_per_incident(self):
        entry = {
            "event": "task_finish",
            "task": "abc123",
            "fault_log": [
                {"event": "fault_drops", "block": 3, "node": 1},
                {"event": "fault_degrade", "block": 3},
            ],
        }
        incidents = incident_entries(entry)
        assert [(kind, name) for kind, name, _ in incidents] == [
            ("fault", "fault_drops"),
            ("fault", "fault_degrade"),
        ]
        _, _, fields = incidents[0]
        assert fields == {"block": 3, "node": 1, "task": "abc123"}

    def test_mode_switch_churn_is_reported(self):
        entry = {
            "event": "task_finish",
            "task": "abc123",
            "metrics": {"counters": {"mode_switches": 4}},
        }
        (incident,) = incident_entries(entry)
        assert incident[0] == "mode_switch"
        assert incident[2]["count"] == 4

    def test_clean_finish_yields_nothing(self):
        assert incident_entries({"event": "task_finish"}) == []
        assert (
            incident_entries(
                {
                    "event": "task_finish",
                    "metrics": {"counters": {"mode_switches": 0}},
                }
            )
            == []
        )


class TestFailuresAndRetries:
    def test_task_failed_named_after_error_class(self):
        (incident,) = incident_entries(
            {
                "event": "task_failed",
                "error_class": "CoherenceError",
                "error": "boom",
                "attempts": 1,
            }
        )
        kind, name, fields = incident
        assert (kind, name) == ("failure", "CoherenceError")
        assert fields["error"] == "boom"
        assert fields["attempts"] == 1

    def test_task_failed_without_class_still_maps(self):
        (incident,) = incident_entries({"event": "task_failed"})
        assert incident[:2] == ("failure", "Error")

    def test_task_retry_is_a_degradation(self):
        (incident,) = incident_entries(
            {"event": "task_retry", "attempt": 2, "error_class": "OSError"}
        )
        assert incident[0] == "degradation"
        assert incident[2]["attempt"] == 2


class TestRejections:
    def test_serve_reject_and_invalid(self):
        for event in ("serve_reject", "serve_invalid"):
            (incident,) = incident_entries(
                {"event": event, "reason": "queue full"}
            )
            assert incident[0] == "rejection"
            assert incident[1] == event
            assert incident[2]["reason"] == "queue full"


class TestForwardCompatibility:
    def test_unknown_and_housekeeping_events_yield_nothing(self):
        for event in (
            "serve_start",
            "serve_accept",
            "task_start",
            "flight_dump",
            "brand_new_event",
        ):
            assert incident_entries({"event": event}) == []
        assert incident_entries({}) == []
