"""Scripted (rule-driven) fault injection for deterministic recovery tests."""

import pytest

import repro.sim.stats as ev
from repro.cache.state import Mode
from repro.errors import TransientNetworkError
from repro.faults import DropRule, FaultPlan, ScriptedInjector, attach_scripted
from repro.protocol.messages import MsgKind
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.system import System, SystemConfig
from repro.types import Address


def build(n_nodes=4, *, max_retries=1, default_mode=Mode.DISTRIBUTED_WRITE):
    system = System(
        SystemConfig(n_nodes=n_nodes, cache_entries=8, block_size_words=2)
    )
    scripted = attach_scripted(system, max_retries=max_retries)
    protocol = StenstromProtocol(system, default_mode=default_mode)
    return system, protocol, scripted


def addr(block, offset=0):
    return Address(block, offset)


class TestDropRule:
    def test_wildcards_match_anything(self):
        rule = DropRule(drops=2)
        assert rule.matches("write_update", 0, 1)
        assert rule.matches(None, None, None)

    def test_specific_fields_must_match(self):
        rule = DropRule(drops=1, kind="write_update", source=0, dest=3)
        assert rule.matches("write_update", 0, 3)
        assert not rule.matches("write_update", 0, 2)
        assert not rule.matches("invalidate", 0, 3)
        assert not rule.matches("write_update", 1, 3)

    def test_exhausted_rule_never_matches_again(self):
        rule = DropRule(drops=1)
        rule.matched = 1
        assert not rule.matches("write_update", 0, 1)


class TestScriptedInjector:
    def test_matching_delivery_dropped_and_logged(self):
        system = System(SystemConfig(n_nodes=4))
        injector = ScriptedInjector(
            system.network, FaultPlan(), [DropRule(drops=1, dest=2)]
        )
        outcome = injector.draw(kind="load_req", source=0, dest=2)
        assert outcome.dropped
        assert injector.dropped_log == [("load_req", 0, 2)]

    def test_nonmatching_delivery_falls_through_clean(self):
        system = System(SystemConfig(n_nodes=4))
        injector = ScriptedInjector(
            system.network, FaultPlan(), [DropRule(drops=1, dest=2)]
        )
        outcome = injector.draw(kind="load_req", source=0, dest=3)
        assert not outcome.dropped

    def test_attach_scripted_wires_both_attachment_points(self):
        system, _, scripted = build()
        assert system.fault_injector is scripted
        assert system.network.fault_injector is scripted

    def test_attach_scripted_inherits_existing_retry_budget(self):
        system = System(
            SystemConfig(n_nodes=4),
            fault_plan=FaultPlan(drop_probability=0.1, max_retries=7),
        )
        scripted = attach_scripted(system)
        assert scripted.plan.max_retries == 7


class TestSubBudgetDrops:
    def test_one_drop_is_retried_and_invisible(self):
        _, protocol, scripted = build()
        protocol.write(0, addr(0), 10)
        protocol.read(1, addr(0))
        scripted.add_rule(
            DropRule(
                drops=1, kind=MsgKind.WRITE_UPDATE.value, source=0, dest=1
            )
        )
        protocol.write(0, addr(0), 11)
        protocol.check_invariants()
        assert protocol.read(1, addr(0)) == 11
        assert protocol.stats.events[ev.FAULT_DROPS] == 1
        assert protocol.stats.events[ev.FAULT_RETRIES] >= 1
        assert ev.FAULT_DEGRADED_BLOCKS not in protocol.stats.events


class TestTargetedExhaustion:
    def test_multicast_exhaustion_degrades_the_block(self):
        _, protocol, scripted = build(max_retries=1)
        protocol.write(0, addr(0), 10)
        protocol.read(1, addr(0))
        protocol.read(2, addr(0))
        scripted.add_rule(
            DropRule(
                drops=2, kind=MsgKind.WRITE_UPDATE.value, source=0, dest=1
            )
        )
        protocol.write(0, addr(0), 11)
        assert 0 in protocol.uncacheable_blocks
        assert protocol.stats.events[ev.FAULT_RETRY_EXHAUSTED] == 1
        assert protocol.stats.events[ev.FAULT_DEGRADED_BLOCKS] == 1
        # The write still took effect: memory-direct reads see it.
        assert protocol.read(1, addr(0)) == 11
        assert protocol.read(3, addr(0)) == 11
        protocol.check_invariants()

    def test_unicast_exhaustion_still_raises(self):
        _, protocol, scripted = build(max_retries=1)
        protocol.write(0, addr(0), 10)
        scripted.add_rule(
            DropRule(drops=2, kind=MsgKind.LOAD_REQ.value, source=3)
        )
        with pytest.raises(TransientNetworkError, match="retry budget") as info:
            protocol.read(3, addr(1))
        assert info.value.multicast is False
        assert info.value.kind == MsgKind.LOAD_REQ.value
        assert info.value.source == 3
        assert len(info.value.dests) == 1

    def test_exhausted_rules_leave_later_traffic_clean(self):
        _, protocol, scripted = build(max_retries=1)
        protocol.write(0, addr(0), 10)
        protocol.read(1, addr(0))
        scripted.add_rule(
            DropRule(
                drops=2, kind=MsgKind.WRITE_UPDATE.value, source=0, dest=1
            )
        )
        protocol.write(0, addr(0), 11)
        before = dict(protocol.stats.events)
        protocol.write(2, addr(1), 5)
        protocol.read(3, addr(1))
        protocol.check_invariants()
        after = protocol.stats.events
        assert after.get(ev.FAULT_DROPS, 0) == before.get(ev.FAULT_DROPS, 0)
