"""Protocol-level recovery under injected faults.

Drops are retried until acknowledged, duplicates pay real traffic, dead
routes degrade the affected block to memory-direct service -- and in
every case the verifying simulator (values + invariants after every
reference) stays green.
"""

import pytest

import repro.sim.stats as ev
from repro.errors import TransientNetworkError
from repro.faults import FaultPlan
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.synthetic import random_trace


def run(plan, *, n_nodes=8, n_references=300, seed=1, write_fraction=0.4):
    trace = random_trace(
        n_nodes,
        n_references,
        write_fraction=write_fraction,
        seed=seed,
    )
    config = SystemConfig(n_nodes=n_nodes)
    system = System(config, fault_plan=plan)
    protocol = StenstromProtocol(system)
    report = run_trace(
        protocol, trace, verify=True, check_invariants_every=1
    )
    return protocol, report


class TestProbabilisticRecovery:
    def test_drop_only_plan_survives_and_retries(self):
        _, report = run(FaultPlan(drop_probability=0.1, seed=3))
        assert report.verified
        assert report.stats.events[ev.FAULT_DROPS] > 0
        assert (
            report.stats.events[ev.FAULT_RETRIES]
            >= report.stats.events[ev.FAULT_DROPS] * 0
        )
        assert ev.FAULT_DEGRADED_BLOCKS not in report.stats.events

    def test_duplicate_only_plan_survives_and_costs_extra(self):
        clean_protocol, clean = run(FaultPlan())
        _, noisy = run(FaultPlan(duplicate_probability=0.2, seed=3))
        assert noisy.verified
        assert noisy.stats.events[ev.FAULT_DUPLICATES] > 0
        # Duplicates are real resends: the faulty run moves more bits for
        # the same trace, never fewer.
        assert noisy.network_total_bits > clean.network_total_bits

    def test_delay_only_plan_is_counted_but_harmless(self):
        _, clean = run(FaultPlan())
        _, delayed = run(FaultPlan(delay_probability=0.3, seed=3))
        assert delayed.verified
        assert delayed.stats.events[ev.FAULT_DELAYS] > 0
        # Atomic references absorb delays: results match bit for bit
        # except for the delay tally itself.
        assert delayed.stats.events[ev.READS] == clean.stats.events[ev.READS]

    def test_retry_exhaustion_raises_transient_error(self):
        with pytest.raises(TransientNetworkError, match="retry budget"):
            run(FaultPlan(drop_probability=0.95, max_retries=1, seed=0))

    def test_fault_events_view_collects_only_fault_counters(self):
        _, report = run(FaultPlan(drop_probability=0.1, seed=3))
        events = report.stats.fault_events()
        assert events
        assert all(name.startswith("fault_") for name in events)
        assert ev.READS not in events


class TestDeadRouteDegradation:
    def test_dead_link_degrades_blocks_instead_of_wedging(self):
        protocol, report = run(FaultPlan(dead_links=((1, 1),)))
        assert report.verified
        assert report.stats.events[ev.FAULT_DEAD_ROUTES] > 0
        degraded = report.stats.events[ev.FAULT_DEGRADED_BLOCKS]
        assert degraded > 0
        assert len(protocol.uncacheable_blocks) == degraded

    def test_degraded_blocks_leave_no_cache_entries(self):
        protocol, _ = run(FaultPlan(dead_links=((1, 1),)))
        for block in protocol.uncacheable_blocks:
            for cache in protocol.system.caches:
                assert cache.find(block) is None
            store = protocol.system.memory_for(block).block_store
            assert store.owner_of(block) is None

    def test_degraded_blocks_served_memory_direct(self):
        protocol, report = run(FaultPlan(dead_links=((1, 1),)))
        assert report.stats.events[ev.FAULT_DIRECT_READS] > 0
        assert report.stats.events[ev.FAULT_DIRECT_WRITES] > 0

    def test_dead_switch_also_recoverable(self):
        _, report = run(FaultPlan(dead_switches=((1, 2),)))
        assert report.verified
        assert report.stats.events[ev.FAULT_DEGRADED_BLOCKS] > 0

    def test_set_mode_refuses_degraded_blocks(self):
        from repro.cache.state import Mode

        protocol, _ = run(FaultPlan(dead_links=((1, 1),)))
        block = next(iter(protocol.uncacheable_blocks))
        protocol.set_mode(0, block, Mode.DISTRIBUTED_WRITE)
        for cache in protocol.system.caches:
            assert cache.find(block) is None


class TestEmptyPlanIdentity:
    def test_empty_plan_bit_identical_to_no_plan(self):
        trace = random_trace(8, 400, write_fraction=0.4, seed=2)
        config = SystemConfig(n_nodes=8)

        plain = run_trace(
            StenstromProtocol(System(config)), trace, verify=True
        )
        empty = run_trace(
            StenstromProtocol(System(config, fault_plan=FaultPlan())),
            trace,
            verify=True,
        )
        assert plain.to_dict() == empty.to_dict()

    def test_empty_plan_builds_no_injector(self):
        system = System(SystemConfig(n_nodes=8), fault_plan=FaultPlan())
        assert system.fault_injector is None
        assert system.network.fault_injector is None
