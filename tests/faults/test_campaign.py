"""Chaos campaigns and the ``repro chaos`` CLI."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.cli import main
from repro.faults.campaign import chaos_cells, run_campaign
from repro.runner import RunJournal


def small_cells(**overrides):
    kwargs = dict(
        n_nodes=8,
        n_references=120,
        drop_rates=(0.0, 0.05),
        fault_seeds=(0,),
        dead_links=((1, 1),),
    )
    kwargs.update(overrides)
    return chaos_cells(**kwargs)


class TestCells:
    def test_grid_is_drop_rates_times_fault_seeds(self):
        cells = small_cells(drop_rates=(0.0, 0.05, 0.1), fault_seeds=(0, 1))
        assert len(cells) == 6
        # Every cell verifies every reference.
        assert all(cell.verify for cell in cells)
        assert all(cell.check_invariants_every == 1 for cell in cells)

    def test_zero_rate_cell_still_carries_the_dead_link(self):
        cells = small_cells(drop_rates=(0.0,))
        assert cells[0].fault_plan is not None
        assert cells[0].fault_plan.dead_links == ((1, 1),)

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError, match="drop rates"):
            small_cells(drop_rates=())
        with pytest.raises(ConfigurationError, match="fault seeds"):
            small_cells(fault_seeds=())


class TestCampaign:
    def test_survival_report_is_deterministic(self):
        a = run_campaign(small_cells(), name="t")
        b = run_campaign(small_cells(), name="t")
        assert a.survived
        assert a.to_dict() == b.to_dict()

    def test_parallel_equals_sequential(self):
        sequential = run_campaign(small_cells(), name="t", workers=0)
        parallel = run_campaign(small_cells(), name="t", workers=2)
        assert sequential.to_dict() == parallel.to_dict()

    def test_failed_cell_becomes_row_not_exception(self):
        # drop=0.9 with a budget of 1 retry exhausts quickly; the
        # campaign must keep going and report the failure.
        cells = small_cells(
            drop_rates=(0.0, 0.9), max_retries=1, dead_links=()
        )
        report = run_campaign(cells, name="t")
        assert not report.survived
        by_rate = {cell.drop_rate: cell for cell in report.cells}
        assert by_rate[0.0].survived
        failed = by_rate[0.9]
        assert not failed.survived
        assert failed.error_class == "TransientNetworkError"
        assert failed.cost_per_reference is None

    def test_fault_events_reach_the_journal(self):
        journal = RunJournal()
        run_campaign(small_cells(), name="t", journal=journal)
        finishes = [
            event for event in journal.events
            if event["event"] == "task_finish"
        ]
        assert finishes
        assert any("fault_events" in event for event in finishes)
        tallied = [
            event["fault_events"] for event in finishes
            if "fault_events" in event
        ]
        assert any(
            events.get("fault_degraded_blocks", 0) > 0 for events in tallied
        )


class TestCli:
    ARGS = [
        "chaos",
        "--nodes", "8",
        "--references", "120",
        "--drop-rates", "0.0", "0.05",
        "--kill-link", "1:1",
    ]

    def test_cli_reports_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(self.ARGS + ["--output", str(out)])
        assert code == 0
        assert "survived" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["survived"] is True
        assert len(payload["cells"]) == 2

    def test_cli_output_byte_identical_across_runs(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(self.ARGS + ["--output", str(first)]) == 0
        assert main(self.ARGS + ["--output", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_cli_exits_nonzero_on_failure(self, capsys):
        code = main(
            [
                "chaos",
                "--nodes", "8",
                "--references", "120",
                "--drop-rates", "0.9",
                "--max-retries", "1",
            ]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_cli_rejects_malformed_kill_pairs(self):
        with pytest.raises(ConfigurationError, match="--kill-link"):
            main(self.ARGS[:-2] + ["--kill-link", "banana"])
