"""Unit tests for the replacement policies."""

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)
from repro.errors import ConfigurationError


class TestLru:
    def test_untouched_ways_evicted_first(self):
        policy = LruPolicy(1, 4)
        policy.touch(0, 0)
        policy.touch(0, 2)
        assert policy.choose_victim(0) == 1  # never touched

    def test_least_recent_touch_wins(self):
        policy = LruPolicy(1, 3)
        policy.touch(0, 0)
        policy.touch(0, 1)
        policy.touch(0, 2)
        policy.touch(0, 0)  # refresh way 0
        assert policy.choose_victim(0) == 1

    def test_forget_makes_way_coldest(self):
        policy = LruPolicy(1, 3)
        for way in range(3):
            policy.touch(0, way)
        policy.forget(0, 2)
        assert policy.choose_victim(0) == 2

    def test_sets_are_independent(self):
        policy = LruPolicy(2, 2)
        policy.touch(0, 0)
        policy.touch(1, 1)
        assert policy.choose_victim(0) == 1
        assert policy.choose_victim(1) == 0

    def test_out_of_range_rejected(self):
        policy = LruPolicy(2, 2)
        with pytest.raises(ConfigurationError):
            policy.touch(2, 0)
        with pytest.raises(ConfigurationError):
            policy.touch(0, 2)


class TestFifo:
    def test_round_robin(self):
        policy = FifoPolicy(1, 3)
        assert [policy.choose_victim(0) for _ in range(5)] == [
            0,
            1,
            2,
            0,
            1,
        ]

    def test_touch_does_not_change_order(self):
        policy = FifoPolicy(1, 2)
        policy.touch(0, 1)
        policy.touch(0, 1)
        assert policy.choose_victim(0) == 0


class TestRandom:
    def test_seeded_determinism(self):
        first = RandomPolicy(1, 8, seed=5)
        second = RandomPolicy(1, 8, seed=5)
        picks_a = [first.choose_victim(0) for _ in range(20)]
        picks_b = [second.choose_victim(0) for _ in range(20)]
        assert picks_a == picks_b

    def test_victims_in_range(self):
        policy = RandomPolicy(1, 4, seed=0)
        assert all(
            0 <= policy.choose_victim(0) < 4 for _ in range(50)
        )


class TestFactory:
    def test_builds_each_policy(self):
        assert isinstance(make_policy("lru", 1, 2), LruPolicy)
        assert isinstance(make_policy("FIFO", 1, 2), FifoPolicy)
        assert isinstance(make_policy("random", 1, 2, seed=3), RandomPolicy)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("mru", 1, 2)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            LruPolicy(0, 2)
        with pytest.raises(ConfigurationError):
            FifoPolicy(2, 0)
