"""Model-based property tests for the cache mechanics.

A random sequence of install / touch / drop operations is run against the
real cache and a trivial dict-of-sets model; residency must agree after
every step, and structural guarantees (set mapping, capacity, LRU victim
choice) must hold throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache

N_ENTRIES = 8
N_BLOCKS = 24


operations = st.lists(
    st.tuples(
        st.sampled_from(["access", "drop", "touch"]),
        st.integers(0, N_BLOCKS - 1),
    ),
    max_size=120,
)

geometries = st.sampled_from([None, 1, 2, 4, 8])


class TestCacheAgainstModel:
    @settings(max_examples=80, deadline=None)
    @given(ops=operations, associativity=geometries)
    def test_residency_matches_model(self, ops, associativity):
        cache = Cache(
            0, N_ENTRIES, 2, associativity=associativity, policy="lru"
        )
        n_ways = associativity or N_ENTRIES
        n_sets = N_ENTRIES // n_ways
        model: dict[int, set[int]] = {
            index: set() for index in range(n_sets)
        }
        for op, block in ops:
            set_index = block % n_sets
            resident = model[set_index]
            if op == "access":
                slot = cache.slot_for(block)
                evicted = (
                    slot.entry.tag if slot.needs_eviction(block) else None
                )
                cache.install(slot, block)
                if evicted is not None:
                    resident.discard(evicted)
                resident.add(block)
            elif op == "drop" and block in resident:
                cache.drop(block)
                resident.discard(block)
            elif op == "touch" and block in resident:
                cache.touch(block)
            # Invariants after every step:
            assert set(cache.resident_blocks()) == set().union(
                *model.values()
            )
            for index, blocks in model.items():
                assert len(blocks) <= n_ways
                for resident_block in blocks:
                    assert cache.find(resident_block) is not None
                    assert resident_block % n_sets == index

    @settings(max_examples=40, deadline=None)
    @given(ops=operations)
    def test_lru_victim_is_least_recently_used(self, ops):
        cache = Cache(0, 4, 2, policy="lru")  # fully associative, 4 ways
        recency: list[int] = []  # oldest first
        for op, block in ops:
            if op == "access":
                slot = cache.slot_for(block)
                if slot.needs_eviction(block):
                    # The victim must be the oldest resident block.
                    assert slot.entry.tag == recency[0]
                    recency.pop(0)
                cache.install(slot, block)
                if block in recency:
                    recency.remove(block)
                recency.append(block)
            elif op == "touch" and block in recency:
                cache.touch(block)
                recency.remove(block)
                recency.append(block)
            elif op == "drop" and block in recency:
                cache.drop(block)
                recency.remove(block)

    @settings(max_examples=40, deadline=None)
    @given(ops=operations)
    def test_data_survives_until_eviction(self, ops):
        cache = Cache(0, N_ENTRIES, 2, policy="fifo")
        written: dict[int, int] = {}
        for index, (op, block) in enumerate(ops):
            if op != "access":
                continue
            slot = cache.slot_for(block)
            if slot.needs_eviction(block):
                written.pop(slot.entry.tag, None)
            if cache.find(block) is None or slot.needs_eviction(block):
                entry = cache.install(slot, block)
                entry.write_word(0, index)
                written[block] = index
            else:
                assert cache.find(block).read_word(0) == written[block]
