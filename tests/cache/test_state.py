"""Unit tests for Table 1: states, state fields and their encoding."""

import pytest

from repro.cache.state import CacheState, Mode, StateField
from repro.errors import ProtocolError


class TestTable1Mapping:
    """Each row of Table 1, encoded and decoded."""

    def test_invalid(self):
        field = StateField(valid=False)
        assert field.state(0) is CacheState.INVALID

    def test_unowned(self):
        field = StateField(valid=True, owned=False)
        assert field.state(0) is CacheState.UNOWNED

    def test_owned_exclusive_distributed_write(self):
        field = StateField(
            valid=True, owned=True, distributed_write=True, present={3}
        )
        assert field.state(3) is CacheState.OWNED_EXCLUSIVE_DW

    def test_owned_exclusive_global_read(self):
        field = StateField(
            valid=True, owned=True, distributed_write=False, present={3}
        )
        assert field.state(3) is CacheState.OWNED_EXCLUSIVE_GR

    def test_owned_nonexclusive_distributed_write(self):
        field = StateField(
            valid=True, owned=True, distributed_write=True, present={3, 5}
        )
        assert field.state(3) is CacheState.OWNED_NONEXCLUSIVE_DW

    def test_owned_nonexclusive_global_read(self):
        field = StateField(
            valid=True, owned=True, distributed_write=False, present={3, 5}
        )
        assert field.state(3) is CacheState.OWNED_NONEXCLUSIVE_GR

    def test_owner_missing_from_vector_is_an_error(self):
        field = StateField(valid=True, owned=True, present={5})
        with pytest.raises(ProtocolError):
            field.state(3)


class TestCacheStateProperties:
    def test_validity(self):
        assert not CacheState.INVALID.is_valid
        assert CacheState.UNOWNED.is_valid
        assert CacheState.OWNED_EXCLUSIVE_GR.is_valid

    def test_ownership(self):
        assert not CacheState.INVALID.is_owned
        assert not CacheState.UNOWNED.is_owned
        assert CacheState.OWNED_EXCLUSIVE_DW.is_owned
        assert CacheState.OWNED_NONEXCLUSIVE_GR.is_owned

    def test_exclusivity(self):
        assert CacheState.OWNED_EXCLUSIVE_DW.is_exclusive
        assert CacheState.OWNED_EXCLUSIVE_GR.is_exclusive
        assert not CacheState.OWNED_NONEXCLUSIVE_DW.is_exclusive
        assert not CacheState.UNOWNED.is_exclusive

    def test_mode_of_owned_states(self):
        assert (
            CacheState.OWNED_EXCLUSIVE_DW.mode is Mode.DISTRIBUTED_WRITE
        )
        assert (
            CacheState.OWNED_NONEXCLUSIVE_GR.mode is Mode.GLOBAL_READ
        )
        assert CacheState.UNOWNED.mode is None
        assert CacheState.INVALID.mode is None


class TestStateField:
    def test_mode_follows_dw_bit(self):
        assert StateField(distributed_write=True).mode is (
            Mode.DISTRIBUTED_WRITE
        )
        assert StateField(distributed_write=False).mode is Mode.GLOBAL_READ

    def test_others_excludes_self(self):
        field = StateField(present={1, 2, 3})
        assert field.others(2) == {1, 3}
        assert field.others(9) == {1, 2, 3}

    def test_copy_is_independent(self):
        field = StateField(valid=True, present={1})
        clone = field.copy()
        clone.present.add(2)
        clone.valid = False
        assert field.present == {1}
        assert field.valid

    def test_size_bits_formula(self):
        # V + O + M + DW + N present flags + log2(N) owner bits.
        assert StateField.size_bits(16) == 4 + 16 + 4
        assert StateField.size_bits(1024) == 4 + 1024 + 10

    def test_size_bits_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            StateField.size_bits(12)
