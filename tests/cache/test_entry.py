"""Unit tests for cache entries."""

import pytest

from repro.cache.entry import CacheEntry
from repro.cache.state import CacheState, StateField
from repro.errors import ProtocolError


class TestOccupancy:
    def test_fresh_entry_is_unoccupied(self):
        entry = CacheEntry()
        assert not entry.occupied
        assert entry.state(0) is CacheState.INVALID

    def test_tagged_entry_is_occupied_even_if_invalid(self):
        # Global-read placeholders: tag set, V = 0.
        entry = CacheEntry(tag=7, state_field=StateField(valid=False))
        assert entry.occupied
        assert entry.state(0) is CacheState.INVALID

    def test_clear_resets_everything(self):
        entry = CacheEntry(
            tag=7, state_field=StateField(valid=True), data=[1, 2]
        )
        entry.clear()
        assert entry.tag is None
        assert not entry.state_field.valid
        assert entry.data == []


class TestDataAccess:
    def test_read_write_roundtrip(self):
        entry = CacheEntry(tag=1, data=[0, 0, 0, 0])
        entry.write_word(2, 99)
        assert entry.read_word(2) == 99
        assert entry.data == [0, 0, 99, 0]

    def test_out_of_range_read_rejected(self):
        entry = CacheEntry(tag=1, data=[0, 0])
        with pytest.raises(ProtocolError):
            entry.read_word(2)
        with pytest.raises(ProtocolError):
            entry.read_word(-1)

    def test_out_of_range_write_rejected(self):
        entry = CacheEntry(tag=1, data=[0, 0])
        with pytest.raises(ProtocolError):
            entry.write_word(5, 1)

    def test_dataless_entry_rejects_access(self):
        entry = CacheEntry(tag=1)
        with pytest.raises(ProtocolError):
            entry.read_word(0)
