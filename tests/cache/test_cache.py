"""Unit tests for the set-associative cache mechanics."""

import pytest

from repro.cache.cache import Cache
from repro.cache.state import StateField
from repro.errors import ConfigurationError, ProtocolError


def make_cache(**kwargs):
    defaults = dict(
        node_id=0, n_entries=4, block_size_words=2, associativity=None
    )
    defaults.update(kwargs)
    return Cache(**defaults)


class TestGeometry:
    def test_fully_associative_by_default(self):
        cache = make_cache(n_entries=8)
        assert cache.n_sets == 1
        assert cache.n_ways == 8

    def test_set_associative_split(self):
        cache = make_cache(n_entries=8, associativity=2)
        assert cache.n_sets == 4
        assert cache.n_ways == 2

    def test_set_index_is_block_modulo_sets(self):
        cache = make_cache(n_entries=8, associativity=2)
        assert cache.set_index(0) == 0
        assert cache.set_index(5) == 1
        assert cache.set_index(7) == 3

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cache(n_entries=0)
        with pytest.raises(ConfigurationError):
            make_cache(n_entries=8, associativity=3)
        with pytest.raises(ConfigurationError):
            make_cache(block_size_words=0)


class TestLookupAndInstall:
    def test_find_missing_block(self):
        cache = make_cache()
        assert cache.find(3) is None

    def test_install_then_find(self):
        cache = make_cache()
        slot = cache.slot_for(3)
        entry = cache.install(slot, 3)
        assert cache.find(3) is entry
        assert entry.tag == 3
        assert entry.data == [0, 0]

    def test_slot_prefers_existing_tag(self):
        cache = make_cache()
        cache.install(cache.slot_for(3), 3)
        slot = cache.slot_for(3)
        assert slot.entry.tag == 3
        assert not slot.needs_eviction(3)

    def test_slot_prefers_free_way_over_victim(self):
        cache = make_cache(n_entries=2)
        cache.install(cache.slot_for(0), 0)
        slot = cache.slot_for(1)
        assert not slot.entry.occupied

    def test_full_set_requires_eviction(self):
        cache = make_cache(n_entries=2)
        cache.install(cache.slot_for(0), 0)
        cache.install(cache.slot_for(1), 1)
        slot = cache.slot_for(2)
        assert slot.needs_eviction(2)
        assert slot.entry.occupied

    def test_install_over_owned_state_raises(self):
        cache = make_cache(n_entries=1)
        entry = cache.install(cache.slot_for(0), 0)
        entry.state_field = StateField(valid=True, owned=True, present={0})
        slot = cache.slot_for(1)
        with pytest.raises(ProtocolError):
            cache.install(slot, 1)

    def test_lru_victim_selection(self):
        cache = make_cache(n_entries=2)
        cache.install(cache.slot_for(0), 0)
        cache.install(cache.slot_for(1), 1)
        cache.touch(0)  # block 1 becomes least recent
        slot = cache.slot_for(2)
        assert slot.entry.tag == 1


class TestDropAndTouch:
    def test_drop_clears_entry(self):
        cache = make_cache()
        cache.install(cache.slot_for(5), 5)
        cache.drop(5)
        assert cache.find(5) is None

    def test_drop_missing_block_raises(self):
        cache = make_cache()
        with pytest.raises(ProtocolError):
            cache.drop(5)

    def test_touch_missing_block_raises(self):
        cache = make_cache()
        with pytest.raises(ProtocolError):
            cache.touch(5)


class TestIntrospection:
    def test_resident_blocks(self):
        cache = make_cache()
        cache.install(cache.slot_for(2), 2)
        cache.install(cache.slot_for(7), 7)
        assert sorted(cache.resident_blocks()) == [2, 7]

    def test_occupancy(self):
        cache = make_cache(n_entries=4)
        assert cache.occupancy() == 0.0
        cache.install(cache.slot_for(0), 0)
        assert cache.occupancy() == 0.25

    def test_different_sets_do_not_conflict(self):
        cache = make_cache(n_entries=4, associativity=1)
        for block in range(4):
            cache.install(cache.slot_for(block), block)
        assert sorted(cache.resident_blocks()) == [0, 1, 2, 3]
        # Block 4 conflicts only with block 0 (same set).
        slot = cache.slot_for(4)
        assert slot.entry.tag == 0
