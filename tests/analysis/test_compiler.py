"""Tests for the §5 compiler-style profiler and static mode assignment."""

import pytest

from repro.analysis.compiler import (
    profile_summary,
    profile_trace,
    recommend_modes,
)
from repro.cache.state import Mode
from repro.protocol.modes import PerBlockModePolicy, StaticModePolicy
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.types import Address, Op, Reference
from repro.workloads.markov import markov_block_trace


from repro.sim.trace import Trace


class TestProfileTrace:
    def test_counts_and_sets(self):
        refs = [
            Reference(0, Op.WRITE, Address(3, 0), 1),
            Reference(1, Op.READ, Address(3, 0)),
            Reference(2, Op.READ, Address(3, 0)),
            Reference(0, Op.READ, Address(7, 0)),
        ]
        profiles = profile_trace(refs)
        block3 = profiles[3]
        assert block3.references == 3
        assert block3.writes == 1
        assert block3.write_fraction == pytest.approx(1 / 3)
        assert block3.writers == {0}
        assert block3.readers == {1, 2}
        assert block3.sharers == {0, 1, 2}
        assert block3.single_writer

    def test_multi_writer_detection(self):
        refs = [
            Reference(0, Op.WRITE, Address(0, 0), 1),
            Reference(1, Op.WRITE, Address(0, 0), 2),
        ]
        assert not profile_trace(refs)[0].single_writer

    def test_empty_trace(self):
        assert profile_trace([]) == {}


class TestRecommendModes:
    def test_read_mostly_block_gets_distributed_write(self):
        trace = markov_block_trace(
            8, tasks=[0, 1, 2, 3], write_fraction=0.05,
            n_references=1000, seed=1,
        )
        modes = recommend_modes(trace.references)
        assert modes[0] is Mode.DISTRIBUTED_WRITE

    def test_write_heavy_block_gets_global_read(self):
        trace = markov_block_trace(
            8, tasks=[0, 1, 2, 3], write_fraction=0.9,
            n_references=1000, seed=2,
        )
        modes = recommend_modes(trace.references)
        assert modes[0] is Mode.GLOBAL_READ

    def test_threshold_uses_the_block_sharer_count(self):
        # Two sharers: w1 = 0.5, so w = 0.4 still recommends DW even
        # though it would be GR territory for many sharers.
        trace = markov_block_trace(
            8, tasks=[0, 1], write_fraction=0.4,
            n_references=2000, seed=3,
        )
        assert recommend_modes(trace.references)[0] is (
            Mode.DISTRIBUTED_WRITE
        )

    def test_summary_rows(self):
        trace = markov_block_trace(
            8, tasks=[0, 1], write_fraction=0.2, n_references=100,
            seed=4,
        )
        rows = profile_summary(profile_trace(trace.references))
        assert len(rows) == 1
        block, refs, w, sharers, single, mode = rows[0]
        assert refs == 100
        assert single == "yes"
        assert mode in ("DW", "GR")


class TestCompilerAssignedModesInTheMachine:
    def _mixed_trace(self):
        read_mostly = markov_block_trace(
            16, list(range(8)), 0.03, 1500, block=0, seed=5
        )
        write_heavy = markov_block_trace(
            16, list(range(8)), 0.85, 1500, block=1, seed=6
        )
        return Trace.interleave([read_mostly, write_heavy])

    def _cost(self, policy):
        protocol = StenstromProtocol(
            System(SystemConfig(n_nodes=16)), mode_policy=policy
        )
        report = run_trace(
            protocol, self._mixed_trace(), verify=True,
            check_invariants_every=500,
        )
        return report.cost_per_reference

    def test_compiler_modes_beat_both_statics(self):
        modes = recommend_modes(self._mixed_trace())
        assert modes[0] is Mode.DISTRIBUTED_WRITE
        assert modes[1] is Mode.GLOBAL_READ
        compiled = self._cost(PerBlockModePolicy(modes))
        static_dw = self._cost(
            StaticModePolicy(Mode.DISTRIBUTED_WRITE)
        )
        static_gr = self._cost(StaticModePolicy(Mode.GLOBAL_READ))
        assert compiled < min(static_dw, static_gr)

    def test_compiler_modes_match_oracle_closely(self):
        from repro.protocol.modes import OracleModePolicy

        modes = recommend_modes(self._mixed_trace())
        compiled = self._cost(PerBlockModePolicy(modes))
        oracle = self._cost(OracleModePolicy(window=64))
        # The static assignment knows the whole trace up front; it should
        # be at least as good as the windowed oracle, within noise.
        assert compiled <= oracle * 1.1
