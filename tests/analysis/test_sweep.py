"""Tests for the parameter-sweep harness."""

import pytest

from repro.analysis.sweep import (
    run_sweep,
    series_by_protocol,
    sharer_sweep,
)
from repro.cache.state import Mode
from repro.errors import ConfigurationError
from repro.protocol.no_cache import NoCacheProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.system import SystemConfig
from repro.workloads.synthetic import random_trace

FACTORIES = {
    "no-cache": NoCacheProtocol,
    "dw": lambda system: StenstromProtocol(
        system, default_mode=Mode.DISTRIBUTED_WRITE
    ),
}


class TestRunSweep:
    def test_one_record_per_point_and_protocol(self):
        records = run_sweep(
            [{"x": 1}, {"x": 2}, {"x": 3}],
            lambda point: random_trace(
                8, 100, n_blocks=4, seed=point["x"]
            ),
            lambda point: SystemConfig(n_nodes=8),
            FACTORIES,
        )
        assert len(records) == 6
        assert {record.protocol for record in records} == set(FACTORIES)

    def test_records_carry_parameters_and_events(self):
        records = run_sweep(
            [{"x": 7}],
            lambda point: random_trace(8, 50, n_blocks=4, seed=0),
            lambda point: SystemConfig(n_nodes=8),
            {"no-cache": NoCacheProtocol},
        )
        (record,) = records
        assert record.parameter("x") == 7
        assert dict(record.events)["reads"] > 0
        with pytest.raises(KeyError):
            record.parameter("missing")


class TestSharerSweep:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sharer_sweep([0], 0.3, FACTORIES)
        with pytest.raises(ConfigurationError):
            sharer_sweep([128], 0.3, FACTORIES, n_nodes=64)

    def test_no_cache_cost_is_flat_in_n(self):
        records = sharer_sweep(
            [2, 8, 32], 0.3, {"no-cache": NoCacheProtocol},
            references=800, seed=3,
        )
        costs = [record.cost_per_reference for record in records]
        assert max(costs) - min(costs) < 0.1 * max(costs)

    def test_dw_write_cost_grows_with_sharers(self):
        records = sharer_sweep(
            [2, 8, 32], 0.5, {"dw": FACTORIES["dw"]},
            references=1200, seed=4,
        )
        series = series_by_protocol(records, "n_sharers")["dw"]
        costs = [cost for _, cost in series]
        assert costs == sorted(costs)


class TestSeriesPivot:
    def test_series_are_sorted_by_parameter(self):
        records = sharer_sweep(
            [8, 2, 4], 0.2, {"no-cache": NoCacheProtocol},
            references=200, seed=5,
        )
        series = series_by_protocol(records, "n_sharers")
        xs = [x for x, _ in series["no-cache"]]
        assert xs == [2, 4, 8]
