"""Tests for the per-reference latency analysis."""

from repro.analysis.compare import default_factories
from repro.analysis.latency import (
    latency_comparison,
    reference_latency,
    trace_latency,
)
from repro.cache.state import Mode
from repro.protocol.no_cache import NoCacheProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.system import System, SystemConfig
from repro.types import Address, Op, Reference
from repro.workloads.markov import markov_block_trace


def build(**kwargs):
    return System(SystemConfig(n_nodes=8, **kwargs))


class TestTraceLatency:
    def test_read_hits_have_zero_latency(self):
        protocol = StenstromProtocol(build())
        warm = [Reference(0, Op.WRITE, Address(0, 0), 1)]
        trace_latency(protocol, warm)
        report = trace_latency(
            protocol, [Reference(0, Op.READ, Address(0, 0))] * 5
        )
        assert report.total_cycles == 0
        assert report.hit_fraction == 1.0

    def test_no_cache_every_reference_pays(self):
        protocol = NoCacheProtocol(build())
        trace = [
            Reference(0, Op.READ, Address(0, 0)),
            Reference(1, Op.WRITE, Address(0, 0), 2),
        ]
        report = trace_latency(protocol, trace)
        assert report.zero_latency_references == 0
        assert report.max_cycles >= report.mean_cycles

    def test_reads_cost_about_twice_writes_uncached(self):
        protocol = NoCacheProtocol(build())
        reads = trace_latency(
            protocol, [Reference(0, Op.READ, Address(0, 0))] * 20
        )
        writes = trace_latency(
            protocol,
            [Reference(0, Op.WRITE, Address(0, 0), 1)] * 20,
        )
        ratio = reads.mean_cycles / writes.mean_cycles
        assert 1.3 < ratio < 2.7  # request+reply vs single word message

    def test_empty_trace(self):
        report = trace_latency(NoCacheProtocol(build()), [])
        assert report.mean_cycles == 0.0
        assert report.hit_fraction == 0.0

    def test_reference_latency_sums_message_makespans(self):
        protocol = NoCacheProtocol(build())
        protocol.enable_message_log()
        protocol.read(0, Address(0, 0))
        messages = list(protocol.message_log)
        assert reference_latency(messages) == sum(
            reference_latency([m]) for m in messages
        )


class TestLatencyComparison:
    def test_dw_reads_are_free_after_warmup(self):
        trace = markov_block_trace(
            8, tasks=[0, 1, 2, 3], write_fraction=0.05,
            n_references=600, seed=1,
        )
        reports = latency_comparison(
            trace.references,
            SystemConfig(n_nodes=8),
            {
                "distributed-write": lambda system: StenstromProtocol(
                    system, default_mode=Mode.DISTRIBUTED_WRITE
                ),
                "global-read": lambda system: StenstromProtocol(
                    system, default_mode=Mode.GLOBAL_READ
                ),
                "no-cache": NoCacheProtocol,
            },
        )
        # Read-mostly workload: DW turns almost everything into hits.
        assert (
            reports["distributed-write"].hit_fraction
            > reports["global-read"].hit_fraction
        )
        assert (
            reports["distributed-write"].mean_cycles
            < reports["no-cache"].mean_cycles
        )

    def test_all_default_protocols_produce_reports(self):
        trace = markov_block_trace(
            8, tasks=[0, 1], write_fraction=0.3, n_references=200,
            seed=2,
        )
        reports = latency_comparison(
            trace.references,
            SystemConfig(n_nodes=8),
            default_factories(),
        )
        assert set(reports) == set(default_factories())
        for report in reports.values():
            assert report.n_references == 200
