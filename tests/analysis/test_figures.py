"""Tests for the experiment harness: every table/figure regenerates and the
paper's qualitative claims hold in the regenerated data."""

import pytest

from repro.analysis.figures import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    TableComparison,
    fig5_breakeven_note,
    fig5_data,
    fig6_data,
    fig8_data,
    state_memory_table,
    table2_data,
    table3_data,
    table4_data,
    threshold_table,
)
from repro.network import cost


class TestFig5:
    def test_series_cover_all_powers(self):
        data = fig5_data()
        ns = [n for n, _ in data["scheme 1 (eq. 2)"]]
        assert ns[0] == 1 and ns[-1] == 1024

    def test_values_match_formulas(self):
        data = fig5_data(network_size=256, message_bits=20)
        for n, value in data["scheme 1 (eq. 2)"]:
            assert value == cost.cc1(n, 256, 20)
        for n, value in data["scheme 2 worst (eq. 3)"]:
            assert value == cost.cc2_worst(n, 256, 20)

    def test_crossover_visible_in_series(self):
        """The Figure 5 point: scheme 2 eventually drops below scheme 1."""
        data = fig5_data()
        s1 = dict(data["scheme 1 (eq. 2)"])
        s2 = dict(data["scheme 2 worst (eq. 3)"])
        assert s2[1] > s1[1]  # scheme 2 pays the vector for one dest
        assert s2[1024] < s1[1024]  # and wins at scale

    def test_breakeven_note_mentions_values(self):
        note = fig5_breakeven_note()
        assert "N=1024" in note and "n=" in note


class TestTable2:
    def test_full_coverage(self):
        table = table2_data()
        assert set(table.paper) == set(table.ours)
        assert len(table.ours) == 15

    def test_trends_match_paper_rows_and_columns(self):
        """The defensible part of Table 2: break-even falls with M and
        rises with N, in our numbers exactly as in the paper's."""
        table = table2_data()
        for values in (table.paper, table.ours):
            for network in table.rows:
                row = [values[(network, m)] for m in table.columns]
                assert row == sorted(row, reverse=True)
            for m in table.columns:
                column = [values[(network, m)] for network in table.rows]
                assert column == sorted(column)

    def test_render_marks_mismatches(self):
        text = table2_data().render()
        assert "agreement" in text
        assert "*" in text  # Table 2 is known not to match exactly


class TestTables3And4:
    def test_table3_agreement_is_high(self):
        assert table3_data().agreement() >= 0.85

    def test_table4_agreement_is_high(self):
        assert table4_data().agreement() >= 0.80

    def test_scheme_progression_1_2_3(self):
        """Rows move monotonically through schemes 1 -> 2 -> 3 as n grows
        (the qualitative content of Tables 3/4 and Figure 6)."""
        for table in (table3_data(), table4_data()):
            for row in table.rows:
                sequence = [table.ours[(row, n)] for n in table.columns]
                assert sequence == sorted(sequence)

    def test_paper_data_dimensions(self):
        assert len(PAPER_TABLE2) == 15
        assert len(PAPER_TABLE3) == 20
        assert len(PAPER_TABLE4) == 20

    def test_comparison_helper_agreement_bounds(self):
        table = TableComparison(
            title="t", row_label="r", column_label="c",
            rows=(1,), columns=(2,),
            paper={(1, 2): 5}, ours={(1, 2): 5},
        )
        assert table.agreement() == 1.0


class TestFig6:
    def test_scheme3_is_flat(self):
        data = fig6_data()
        values = {value for _, value in data["scheme 3 (eq. 5)"]}
        assert len(values) == 1

    def test_each_regime_has_a_winner(self):
        """Figure 6's story: scheme 1 cheapest for small n, scheme 2 for
        moderate n, scheme 3 for large n (N=1024, n1=128, M=20)."""
        data = fig6_data()
        s1 = dict(data["scheme 1 (eq. 2)"])
        s2 = dict(data["scheme 2' (eq. 6)"])
        s3 = dict(data["scheme 3 (eq. 5)"])
        assert s1[1] < s2[1] and s1[1] < s3[1]
        assert s2[16] < s1[16] and s2[16] < s3[16]
        assert s3[128] < s1[128] and s3[128] < s2[128]


class TestFig8:
    def test_contains_expected_series(self):
        data = fig8_data(n_values=(4, 64))
        assert "no cache" in data
        assert "write-once n=4" in data
        assert "two-mode n=64" in data

    def test_two_mode_below_no_cache_everywhere(self):
        data = fig8_data(n_values=(4, 16, 64))
        reference = dict(data["no cache"])
        for n in (4, 16, 64):
            for w, value in data[f"two-mode n={n}"]:
                assert value <= reference[w]

    def test_grid_covers_unit_interval(self):
        data = fig8_data(steps=10)
        ws = [w for w, _ in data["no cache"]]
        assert ws[0] == 0.0 and ws[-1] == 1.0
        assert len(ws) == 11


class TestExtensions:
    def test_state_memory_rows(self):
        rows = state_memory_table(network_sizes=(64, 1024))
        assert len(rows) == 2
        n64, n1024 = rows
        # Full-map state grows ~16x from 64 to 1024 caches.
        assert n1024[1] / n64[1] > 10

    def test_state_memory_ratio_grows_with_memory_size(self):
        # The §1 advantage is in main-memory size: the proposed scheme's
        # per-block cost is log2(N) bits against the full map's N bits,
        # so its relative advantage grows with M at fixed N and C.
        small = state_memory_table(
            network_sizes=(256,), memory_blocks=1 << 18
        )[0]
        large = state_memory_table(
            network_sizes=(256,), memory_blocks=1 << 26
        )[0]
        assert large[3] > small[3]
        assert large[3] > 5.0  # clearly in the paper's favour at 64M blocks

    def test_threshold_table(self):
        rows = threshold_table(n_values=(2, 64))
        assert rows[0] == (2, 0.5, 1.0)
        n, w1, peak = rows[1]
        assert w1 == pytest.approx(2 / 66)
        assert peak == pytest.approx(128 / 66)
