"""Tests for seed replication and confidence intervals."""

import pytest
from scipy import stats as scipy_stats

from repro.analysis.replication import (
    ReplicatedMeasurement,
    replicate,
    replicated_cost,
)
from repro.cache.state import Mode
from repro.errors import ConfigurationError
from repro.protocol.no_cache import NoCacheProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.system import SystemConfig
from repro.workloads.markov import markov_block_trace


class TestReplicate:
    def test_constant_measure_has_zero_width(self):
        result = replicate(lambda seed: 5.0, [1, 2, 3, 4])
        assert result.mean == 5.0
        assert result.half_width == 0.0

    def test_interval_matches_scipy_reference(self):
        values = {1: 10.0, 2: 12.0, 3: 9.0, 4: 13.0, 5: 11.0}
        result = replicate(values.get, list(values))
        low, high = scipy_stats.t.interval(
            0.95,
            df=4,
            loc=result.mean,
            scale=result.std / 5**0.5,
        )
        assert result.ci_low == pytest.approx(low)
        assert result.ci_high == pytest.approx(high)

    def test_wider_confidence_widens_interval(self):
        values = {1: 10.0, 2: 12.0, 3: 9.0}
        narrow = replicate(values.get, [1, 2, 3], confidence=0.8)
        wide = replicate(values.get, [1, 2, 3], confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_overlap_detection(self):
        a = ReplicatedMeasurement(10, 1, 9, 11, 5, 0.95)
        b = ReplicatedMeasurement(10.5, 1, 9.5, 11.5, 5, 0.95)
        c = ReplicatedMeasurement(20, 1, 19, 21, 5, 0.95)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            replicate(lambda seed: 1.0, [1])
        with pytest.raises(ConfigurationError):
            replicate(lambda seed: 1.0, [1, 2], confidence=1.5)


class TestReplicatedCost:
    def _trace_factory(self, w):
        return lambda seed: markov_block_trace(
            8, tasks=[0, 1, 2, 3], write_fraction=w,
            n_references=800, seed=seed,
        )

    def test_protocols_separate_significantly(self):
        """At w = 0.05 the DW protocol beats no-cache by far more than
        seed noise: the confidence intervals must not overlap."""
        config = SystemConfig(n_nodes=8)
        seeds = list(range(5))
        dw = replicated_cost(
            lambda system: StenstromProtocol(
                system, default_mode=Mode.DISTRIBUTED_WRITE
            ),
            self._trace_factory(0.05),
            config,
            seeds,
        )
        uncached = replicated_cost(
            NoCacheProtocol, self._trace_factory(0.05), config, seeds
        )
        assert dw.mean < uncached.mean
        assert not dw.overlaps(uncached)

    def test_replicates_have_modest_spread(self):
        config = SystemConfig(n_nodes=8)
        result = replicated_cost(
            NoCacheProtocol,
            self._trace_factory(0.3),
            config,
            list(range(4)),
        )
        assert result.half_width < 0.1 * result.mean
