"""Tests for the ASCII rendering helpers."""

import pytest

from repro.analysis.report import render_series, render_table
from repro.errors import ConfigurationError


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ("a", "b"), [(1, 2), (30, 40)], title="numbers"
        )
        lines = text.splitlines()
        assert lines[0] == "numbers"
        assert "a" in lines[1] and "b" in lines[1]
        assert "30" in lines[-1] and "40" in lines[-1]

    def test_columns_align(self):
        text = render_table(("col",), [(1,), (100,)])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])

    def test_mismatched_row_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(("a", "b"), [(1,)])

    def test_empty_rows_allowed(self):
        text = render_table(("a",), [])
        assert "a" in text


class TestRenderSeries:
    def test_contains_legend_and_bounds(self):
        text = render_series(
            {"line": [(0, 0), (1, 10)]}, title="chart"
        )
        assert "chart" in text
        assert "line" in text
        assert "0 .. 10" in text

    def test_multiple_series_get_distinct_symbols(self):
        text = render_series(
            {"first": [(0, 0), (1, 1)], "second": [(0, 1), (1, 0)]}
        )
        assert "* first" in text
        assert "o second" in text

    def test_log_x_axis(self):
        text = render_series(
            {"s": [(1, 0), (1024, 5)]}, log_x=True
        )
        assert "log2" in text

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            render_series({"s": [(0, 1)]}, log_x=True)

    def test_empty_series(self):
        assert render_series({}, title="empty") == "empty"

    def test_degenerate_single_point(self):
        text = render_series({"s": [(1, 1)]})
        assert "s" in text

    def test_tiny_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series({"s": [(0, 0)]}, width=2, height=2)
