"""Tests for the JSON experiment-record format."""

import pytest

from repro.analysis.records import (
    load_records,
    records_from_json,
    records_to_json,
    save_records,
)
from repro.analysis.sweep import SweepRecord
from repro.errors import ConfigurationError


def sample_records():
    return [
        SweepRecord(
            protocol="two-mode",
            parameters=(("n_sharers", 4),),
            cost_per_reference=12.5,
            total_bits=1000,
            events=(("reads", 70), ("writes", 10)),
        ),
        SweepRecord(
            protocol="no-cache",
            parameters=(("n_sharers", 4),),
            cost_per_reference=40.0,
            total_bits=3200,
            events=(("reads", 70), ("writes", 10)),
        ),
    ]


class TestRoundTrip:
    def test_json_roundtrip_preserves_records(self):
        originals = sample_records()
        text = records_to_json(originals, metadata={"w": 0.3})
        parsed, metadata = records_from_json(text)
        assert parsed == originals
        assert metadata == {"w": 0.3}

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "records.json"
        save_records(sample_records(), path, metadata={"note": "t"})
        parsed, metadata = load_records(path)
        assert parsed == sample_records()
        assert metadata["note"] == "t"

    def test_output_is_deterministic(self):
        first = records_to_json(sample_records())
        second = records_to_json(sample_records())
        assert first == second


class TestValidation:
    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError):
            records_from_json("{not json")

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(ConfigurationError):
            records_from_json('{"format": "something-else", "records": []}')

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError):
            records_from_json("[1, 2, 3]")


class TestEndToEnd:
    def test_real_sweep_survives_the_roundtrip(self, tmp_path):
        from repro.analysis.sweep import sharer_sweep
        from repro.protocol.no_cache import NoCacheProtocol

        records = sharer_sweep(
            [2, 4],
            0.3,
            {"no-cache": NoCacheProtocol},
            n_nodes=8,
            references=200,
            seed=1,
        )
        path = tmp_path / "sweep.json"
        save_records(records, path)
        loaded, _ = load_records(path)
        assert loaded == records
