"""Statistical fits of measured curves to the §4 functional forms."""

import pytest

from repro.analysis.compare import simulated_cost_curve
from repro.analysis.fitting import (
    fit_linear,
    max_relative_error,
    relative_error,
)
from repro.analysis.sweep import series_by_protocol, sharer_sweep
from repro.cache.state import Mode
from repro.errors import ConfigurationError
from repro.protocol.no_cache import NoCacheProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.protocol.write_once import WriteOnceProtocol


class TestFitLinear:
    def test_perfect_line(self):
        fit = fit_linear([(0, 1), (1, 3), (2, 5)])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_linear([(0, 0), (2, 4)])
        assert fit.predict(5) == pytest.approx(10.0)

    def test_noise_lowers_r_squared(self):
        noisy = [(0, 0), (1, 2.5), (2, 3.5), (3, 6.5), (4, 7.5)]
        fit = fit_linear(noisy)
        assert 0.9 < fit.r_squared < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_linear([(1, 1)])
        with pytest.raises(ConfigurationError):
            fit_linear([(1, 1), (1, 2)])

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == float("inf")

    def test_max_relative_error_requires_aligned_series(self):
        with pytest.raises(ConfigurationError):
            max_relative_error([(1, 1)], [(2, 1)])


class TestMeasuredCurvesFitTheModel:
    """The simulator's output has the functional forms §4 derives."""

    def test_no_cache_cost_is_affine_in_w(self):
        """Eq. 9: cost/CC1 = 2 - w -> slope -1, intercept 2."""
        curves = simulated_cost_curve(
            (0.1, 0.3, 0.5, 0.7, 0.9),
            n_sharers=4,
            n_nodes=8,
            references=2000,
            warmup=100,
            factories={"no-cache": NoCacheProtocol},
            seed=1,
        )
        fit = fit_linear(curves["no-cache"])
        assert fit.r_squared > 0.999
        assert fit.slope == pytest.approx(-1.0, abs=0.05)
        assert fit.intercept == pytest.approx(2.0, abs=0.05)

    def test_write_once_cost_per_round_is_linear_in_sharers(self):
        """Eq. 10's structure: each shared->exclusive transition costs an
        invalidation to n caches plus n block reloads.  On a
        producer/consumer workload (every consumer re-reads each round,
        so all n copies exist at every invalidation) with scheme-1
        multicast (eq. 10's bound), the per-round traffic is linear in n.
        """
        from repro.network.multicast import MulticastScheme
        from repro.sim.engine import run_trace
        from repro.sim.system import System, SystemConfig
        from repro.workloads.sharing import producer_consumer_trace

        rounds = 30
        points = []
        for n in (2, 4, 8, 16):
            trace = producer_consumer_trace(
                32, 0, list(range(1, n + 1)), rounds,
                block_size_words=2,
            )
            system = System(
                SystemConfig(
                    n_nodes=32,
                    block_size_words=2,
                    multicast_scheme=MulticastScheme.UNICAST,
                )
            )
            report = run_trace(
                WriteOnceProtocol(system), trace, verify=True
            )
            points.append((n, report.network_total_bits / rounds))
        fit = fit_linear(points)
        assert fit.r_squared > 0.99
        assert fit.slope > 0

    def test_write_once_cost_saturates_in_sharers_under_sparse_reads(
        self,
    ):
        """With random (sparse) reads and the combined multicast, the
        measured write-once curve is *sub-linear* in n: only the caches
        that actually re-read between writes hold copies, and the tree
        multicast compresses the invalidations.  Eq. 10 is an upper
        bound, and the simulator shows how loose it can be."""
        records = sharer_sweep(
            (2, 8, 32),
            0.3,
            {"write-once": WriteOnceProtocol},
            n_nodes=64,
            references=2500,
            seed=2,
        )
        series = series_by_protocol(records, "n_sharers")["write-once"]
        costs = dict(series)
        growth = costs[32] / costs[2]
        assert 1.0 < growth < 16  # grows, but far below the 16x of n

    def test_distributed_write_cost_is_linear_in_w(self):
        """Eq. 11: cost = w·CC4(n) -> linear through the origin in w."""
        curves = simulated_cost_curve(
            (0.1, 0.3, 0.5, 0.7, 0.9),
            n_sharers=8,
            n_nodes=16,
            references=2500,
            warmup=300,
            factories={
                "dw": lambda system: StenstromProtocol(
                    system, default_mode=Mode.DISTRIBUTED_WRITE
                )
            },
            seed=3,
        )
        fit = fit_linear(curves["dw"])
        assert fit.r_squared > 0.98
        assert fit.slope > 0
        # Through (near) the origin: no writes, no traffic.
        assert abs(fit.intercept) < 0.35 * fit.predict(1.0)

    def test_global_read_cost_is_linear_decreasing_in_w(self):
        """Eq. 12: cost = 2(1-w)·CC1 -> negative slope, zero at w=1."""
        curves = simulated_cost_curve(
            (0.1, 0.3, 0.5, 0.7, 0.9),
            n_sharers=8,
            n_nodes=16,
            references=2500,
            warmup=300,
            factories={
                "gr": lambda system: StenstromProtocol(
                    system, default_mode=Mode.GLOBAL_READ
                )
            },
            seed=4,
        )
        fit = fit_linear(curves["gr"])
        assert fit.r_squared > 0.98
        assert fit.slope < 0
        assert abs(fit.predict(1.0)) < 0.3
