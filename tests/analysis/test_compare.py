"""Tests for the end-to-end protocol comparison harness."""

import pytest

from repro.analysis.compare import (
    compare_protocols,
    default_factories,
    simulated_cost_curve,
)
from repro.errors import ConfigurationError
from repro.sim.system import SystemConfig
from repro.workloads.markov import markov_block_trace


class TestCompareProtocols:
    def test_all_default_protocols_run(self):
        trace = markov_block_trace(
            8, tasks=[0, 1, 2], write_fraction=0.2, n_references=400,
            seed=1,
        )
        comparison = compare_protocols(trace, SystemConfig(n_nodes=8))
        assert set(comparison.reports) == set(default_factories())
        assert comparison.trace_length == 400

    def test_winner_has_lowest_cost(self):
        trace = markov_block_trace(
            8, tasks=[0, 1, 2, 3], write_fraction=0.05,
            n_references=600, seed=2,
        )
        comparison = compare_protocols(trace, SystemConfig(n_nodes=8))
        costs = comparison.cost_per_reference()
        assert costs[comparison.winner()] == min(costs.values())

    def test_render_sorts_by_cost(self):
        trace = markov_block_trace(
            8, tasks=[0, 1], write_fraction=0.3, n_references=200, seed=3
        )
        comparison = compare_protocols(trace, SystemConfig(n_nodes=8))
        text = comparison.render()
        assert "protocol comparison" in text
        assert comparison.winner() in text

    def test_read_heavy_workload_favours_caching(self):
        """At very low write fractions, the two-mode protocol must beat
        the uncached baseline (the whole point of Figure 8)."""
        trace = markov_block_trace(
            8, tasks=[0, 1, 2, 3], write_fraction=0.02,
            n_references=2000, seed=4,
        )
        comparison = compare_protocols(trace, SystemConfig(n_nodes=8))
        costs = comparison.cost_per_reference()
        assert costs["two-mode"] < costs["no-cache"]
        assert costs["distributed-write"] < costs["no-cache"]


class TestSimulatedCostCurve:
    def test_curve_shapes_match_figure8(self):
        """Empirical Figure 8 on the real simulator: global-read falls
        with w, distributed-write rises with w, two-mode tracks the lower
        envelope (within simulation noise)."""
        curves = simulated_cost_curve(
            (0.05, 0.5, 0.95),
            n_sharers=4,
            n_nodes=8,
            references=1500,
            warmup=300,
            seed=5,
        )
        gr = [y for _, y in curves["global-read"]]
        dw = [y for _, y in curves["distributed-write"]]
        assert gr[0] > gr[-1]  # remote reads dominate at low w
        assert dw[0] < dw[-1]  # multicast writes dominate at high w
        two = dict(curves["two-mode"])
        assert two[0.05] <= gr[0] * 1.1
        assert two[0.95] <= dw[-1] * 1.1

    def test_no_cache_curve_matches_eq9(self):
        curves = simulated_cost_curve(
            (0.0, 0.5, 1.0),
            n_sharers=4,
            n_nodes=8,
            references=1000,
            warmup=100,
            factories={
                "no-cache": default_factories()["no-cache"],
            },
            seed=6,
        )
        for w, normalized in curves["no-cache"]:
            observed_w = w  # the generator realises w statistically
            assert normalized == pytest.approx(
                2 - observed_w, abs=0.1
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulated_cost_curve((0.5,), n_sharers=0)
        with pytest.raises(ConfigurationError):
            simulated_cost_curve((0.5,), n_sharers=4, references=0)
