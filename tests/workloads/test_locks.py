"""Tests for the spinlock workload generator."""

import pytest

from repro.cache.state import Mode
from repro.errors import ConfigurationError
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.locks import spinlock_trace


class TestStructure:
    def test_round_robin_holders(self):
        trace = spinlock_trace(8, [0, 1, 2], 6, spin_reads=0)
        lock_writers = [
            ref.node
            for ref in trace
            if ref.is_write and ref.address.block == 0
        ]
        # Acquire + release per acquisition, round robin.
        assert lock_writers == [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]

    def test_everyone_spins_on_the_lock(self):
        trace = spinlock_trace(8, [0, 1, 2], 1, spin_reads=2)
        spin = [
            ref.node
            for ref in trace
            if ref.is_read and ref.address.block == 0
        ]
        assert spin == [0, 1, 2, 0, 1, 2]

    def test_critical_section_touches_the_data_block(self):
        trace = spinlock_trace(8, [0, 1], 2, data_words=2)
        data_refs = [
            ref for ref in trace if ref.address.block == 1
        ]
        assert {ref.node for ref in data_refs} == {0, 1}
        assert any(ref.is_write for ref in data_refs)

    def test_reference_count(self):
        tasks, acquisitions, spins, words = 3, 4, 2, 2
        trace = spinlock_trace(
            8, list(range(tasks)), acquisitions, spin_reads=spins,
            data_words=words,
        )
        per_acquisition = spins * tasks + 1 + 2 * words + 1
        assert len(trace) == acquisitions * per_acquisition

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spinlock_trace(8, [0, 1], -1)
        with pytest.raises(ConfigurationError):
            spinlock_trace(8, [0, 1], 1, data_words=0)
        with pytest.raises(ConfigurationError):
            spinlock_trace(8, [0, 1], 1, data_words=9)
        with pytest.raises(ConfigurationError):
            spinlock_trace(8, [0, 1], 1, lock_block=3, data_block=3)


class TestUnderTheProtocols:
    def test_verifies_under_both_modes(self):
        trace = spinlock_trace(8, [0, 1, 2, 3], 20)
        for mode in Mode:
            system = System(SystemConfig(n_nodes=8))
            protocol = StenstromProtocol(system, default_mode=mode)
            assert run_trace(protocol, trace, verify=True).verified

    def test_lock_migrates_ownership(self):
        """The §5 caveat in the flesh: a lock word written by every
        contender transfers ownership on (at least) every hand-over."""
        acquisitions = 12
        trace = spinlock_trace(
            8, [0, 1, 2, 3], acquisitions, data_words=1
        )
        system = System(SystemConfig(n_nodes=8))
        protocol = StenstromProtocol(
            system, default_mode=Mode.DISTRIBUTED_WRITE
        )
        report = run_trace(protocol, trace, verify=True)
        assert (
            report.stats.events["ownership_transfers"] >= acquisitions - 1
        )

    def test_lock_traffic_dwarfs_data_traffic_under_contention(self):
        trace = spinlock_trace(
            8, [0, 1, 2, 3], 15, spin_reads=4, data_words=1
        )
        system = System(SystemConfig(n_nodes=8))
        protocol = StenstromProtocol(
            system, default_mode=Mode.DISTRIBUTED_WRITE
        )
        run_trace(protocol, trace, verify=True)
        # Most references target the lock block, and so does the traffic:
        # the write updates fan out to every spinning reader.
        assert protocol.stats.events["write_updates"] > 0
