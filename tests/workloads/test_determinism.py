"""Seed determinism across independent generator instantiations.

The runner's deterministic sharding (parallel results bit-identical to
sequential) rests on one property: rebuilding a workload from the same
parameters and seed -- in another call, another process, another machine
-- yields the *identical* reference stream.  These tests pin that down
for the generators the runner dispatches to.
"""

from repro.workloads.markov import (
    markov_block_trace,
    shared_structure_trace,
)
from repro.workloads.synthetic import random_trace


class TestMarkovDeterminism:
    def test_same_seed_identical_trace(self):
        kwargs = dict(
            tasks=[0, 2, 5],
            write_fraction=0.35,
            n_references=400,
            seed=21,
        )
        first = markov_block_trace(8, **kwargs)
        second = markov_block_trace(8, **kwargs)
        assert first.references == second.references

    def test_different_seed_different_trace(self):
        kwargs = dict(tasks=[0, 1], write_fraction=0.5, n_references=400)
        assert (
            markov_block_trace(8, seed=1, **kwargs).references
            != markov_block_trace(8, seed=2, **kwargs).references
        )

    def test_shared_structure_same_seed_identical_trace(self):
        kwargs = dict(
            tasks=[0, 1, 2],
            write_fraction=0.2,
            n_references=400,
            n_blocks=6,
            seed=9,
        )
        first = shared_structure_trace(8, **kwargs)
        second = shared_structure_trace(8, **kwargs)
        assert first.references == second.references


class TestSyntheticDeterminism:
    def test_same_seed_identical_trace(self):
        kwargs = dict(
            n_blocks=16,
            write_fraction=0.4,
            locality=0.6,
            seed=33,
        )
        first = random_trace(8, 400, **kwargs)
        second = random_trace(8, 400, **kwargs)
        assert first.references == second.references

    def test_different_seed_different_trace(self):
        assert (
            random_trace(8, 400, seed=1).references
            != random_trace(8, 400, seed=2).references
        )

    def test_restricted_node_set_still_deterministic(self):
        first = random_trace(8, 300, nodes=[1, 3, 5], seed=7)
        second = random_trace(8, 300, nodes=[1, 3, 5], seed=7)
        assert first.references == second.references
