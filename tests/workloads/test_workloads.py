"""Unit and property tests for the workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.markov import markov_block_trace, shared_structure_trace
from repro.workloads.matrix import jacobi_trace, matrix_multiply_trace
from repro.workloads.sharing import (
    migratory_trace,
    ping_pong_trace,
    producer_consumer_trace,
)
from repro.workloads.synthetic import random_trace


class TestMarkovBlockTrace:
    def test_write_fraction_is_respected(self):
        trace = markov_block_trace(
            8, tasks=[0, 1, 2, 3], write_fraction=0.25,
            n_references=8000, seed=1,
        )
        assert trace.write_fraction == pytest.approx(0.25, abs=0.02)

    def test_single_writer_model(self):
        trace = markov_block_trace(
            8, tasks=[2, 3, 4], write_fraction=0.5, n_references=500,
            seed=2,
        )
        writers = {ref.node for ref in trace if ref.is_write}
        assert writers == {2}

    def test_readers_are_only_tasks(self):
        trace = markov_block_trace(
            8, tasks=[5, 6], write_fraction=0.1, n_references=500, seed=3
        )
        assert {ref.node for ref in trace} <= {5, 6}

    def test_deterministic_by_seed(self):
        kwargs = dict(write_fraction=0.3, n_references=100, seed=7)
        first = markov_block_trace(8, [0, 1], **kwargs)
        second = markov_block_trace(8, [0, 1], **kwargs)
        assert first.references == second.references

    def test_written_values_are_unique(self):
        trace = markov_block_trace(
            8, tasks=[0, 1], write_fraction=0.5, n_references=400, seed=4
        )
        values = [ref.value for ref in trace if ref.is_write]
        assert len(values) == len(set(values))

    def test_explicit_writer(self):
        trace = markov_block_trace(
            8, tasks=[0, 1, 2], write_fraction=1.0, n_references=10,
            writer=2,
        )
        assert {ref.node for ref in trace} == {2}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            markov_block_trace(8, [], 0.5, 10)
        with pytest.raises(ConfigurationError):
            markov_block_trace(8, [9], 0.5, 10)
        with pytest.raises(ConfigurationError):
            markov_block_trace(8, [0, 0], 0.5, 10)
        with pytest.raises(ConfigurationError):
            markov_block_trace(8, [0], 1.5, 10)
        with pytest.raises(ConfigurationError):
            markov_block_trace(8, [0, 1], 0.5, 10, writer=5)


class TestSharedStructureTrace:
    def test_each_block_has_one_writer(self):
        trace = shared_structure_trace(
            8, tasks=[0, 1, 2], write_fraction=0.4, n_references=2000,
            n_blocks=6, seed=5,
        )
        writers_per_block = {}
        for ref in trace:
            if ref.is_write:
                writers_per_block.setdefault(
                    ref.address.block, set()
                ).add(ref.node)
        assert all(len(w) == 1 for w in writers_per_block.values())

    def test_blocks_are_in_declared_range(self):
        trace = shared_structure_trace(
            8, [0, 1], 0.3, 500, n_blocks=4, first_block=10, seed=6
        )
        blocks = {ref.address.block for ref in trace}
        assert blocks <= set(range(10, 14))


class TestSharingPatterns:
    def test_producer_consumer_roles(self):
        trace = producer_consumer_trace(8, 0, [1, 2], 3)
        assert {r.node for r in trace if r.is_write} == {0}
        assert {r.node for r in trace if r.is_read} == {1, 2}

    def test_producer_consumer_round_structure(self):
        trace = producer_consumer_trace(
            8, 0, [1], 2, block_size_words=4
        )
        # Per round: 4 writes + 4 reads.
        assert len(trace) == 2 * (4 + 4)

    def test_migratory_every_task_writes(self):
        trace = migratory_trace(8, [0, 1, 2], 2)
        assert {r.node for r in trace if r.is_write} == {0, 1, 2}

    def test_migratory_read_precedes_write(self):
        trace = migratory_trace(8, [3, 4], 1)
        ops = [(r.node, r.op.value) for r in trace]
        assert ops == [(3, "R"), (3, "W"), (4, "R"), (4, "W")]

    def test_ping_pong_alternates(self):
        trace = ping_pong_trace(8, 0, 1, 2)
        nodes = [r.node for r in trace]
        assert nodes == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            producer_consumer_trace(8, 0, [1], -1)
        with pytest.raises(ConfigurationError):
            migratory_trace(8, [0, 8], 1)


class TestMatrixWorkloads:
    def test_jacobi_rows_have_single_writers(self):
        trace = jacobi_trace(
            8, tasks=[0, 1, 2, 3], rows=8, row_words=4, sweeps=2,
            block_size_words=2,
        )
        writers = {}
        for ref in trace:
            if ref.is_write:
                writers.setdefault(ref.address.block, set()).add(ref.node)
        assert all(len(w) == 1 for w in writers.values())

    def test_jacobi_reads_cross_band_boundaries(self):
        trace = jacobi_trace(
            8, tasks=[0, 1], rows=4, row_words=2, sweeps=1,
            block_size_words=2,
        )
        # Task 1 must read task 0's boundary row (row 1 -> block 1).
        assert any(
            ref.node == 1 and ref.is_read and ref.address.block == 1
            for ref in trace
        )

    def test_matmul_b_matrix_is_read_only(self):
        trace = matrix_multiply_trace(
            8, tasks=[0, 1], size=4, block_size_words=2
        )
        per_row = 2  # 4 words / 2 per block
        b_blocks = set(range(4 * per_row, 8 * per_row))
        written = {r.address.block for r in trace if r.is_write}
        assert written.isdisjoint(b_blocks)

    def test_matmul_c_rows_partitioned(self):
        trace = matrix_multiply_trace(
            8, tasks=[0, 1], size=4, block_size_words=2
        )
        writers = {}
        for ref in trace:
            if ref.is_write:
                writers.setdefault(ref.address.block, set()).add(ref.node)
        assert all(len(w) == 1 for w in writers.values())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            jacobi_trace(8, [], rows=4)
        with pytest.raises(ConfigurationError):
            jacobi_trace(8, [0, 1, 2], rows=2)
        with pytest.raises(ConfigurationError):
            matrix_multiply_trace(8, [], size=4)
        with pytest.raises(ConfigurationError):
            matrix_multiply_trace(8, [0, 1, 2], size=2)
        with pytest.raises(ConfigurationError):
            jacobi_trace(8, [0, 9], rows=4)


class TestRandomTrace:
    @settings(max_examples=25, deadline=None)
    @given(
        w=st.floats(0, 1),
        locality=st.floats(0, 1),
        seed=st.integers(0, 100),
    )
    def test_always_valid(self, w, locality, seed):
        trace = random_trace(
            8, 200, n_blocks=5, write_fraction=w, locality=locality,
            seed=seed,
        )
        trace.validate()
        assert len(trace) == 200

    def test_locality_increases_repeats(self):
        def repeat_rate(locality):
            trace = random_trace(
                8, 4000, n_blocks=16, locality=locality, seed=1
            )
            last = {}
            repeats = 0
            for ref in trace:
                if last.get(ref.node) == ref.address.block:
                    repeats += 1
                last[ref.node] = ref.address.block
            return repeats / len(trace)

        assert repeat_rate(0.9) > repeat_rate(0.0) + 0.2

    def test_restricted_node_set(self):
        trace = random_trace(8, 100, nodes=[2, 5], seed=2)
        assert {ref.node for ref in trace} <= {2, 5}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_trace(8, -1)
        with pytest.raises(ConfigurationError):
            random_trace(8, 10, n_blocks=0)
        with pytest.raises(ConfigurationError):
            random_trace(8, 10, write_fraction=2.0)
        with pytest.raises(ConfigurationError):
            random_trace(8, 10, nodes=[8])
