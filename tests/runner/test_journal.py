"""Run journal: event capture, file round trips, summaries."""

from repro.runner import RunJournal, execute_spec, read_journal
from repro.runner.spec import ExperimentSpec, WorkloadSpec
from repro.sim.system import SystemConfig


def make_spec() -> ExperimentSpec:
    return ExperimentSpec(
        protocol="no-cache",
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=4,
            n_references=40,
            write_fraction=0.3,
            tasks=(0, 1),
        ),
        config=SystemConfig(n_nodes=4),
    )


def drive(journal: RunJournal) -> None:
    spec = make_spec()
    report = execute_spec(spec)
    journal.sweep_start("demo", 2, 0)
    journal.task_cached(spec)
    journal.task_start(spec, attempt=1)
    journal.task_retry(spec, attempt=1, error="boom")
    journal.task_start(spec, attempt=2)
    journal.task_finish(spec, attempt=2, wall_time=0.5, report=report)
    journal.sweep_finish("demo", 1.0)


class TestRunJournal:
    def test_memory_only_journal_accumulates(self):
        journal = RunJournal()
        drive(journal)
        assert journal.counts() == {
            "executed": 1, "cached": 1, "retried": 1, "failed": 0,
        }

    def test_file_journal_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            drive(journal)
        events = read_journal(path)
        assert [e["event"] for e in events] == [
            "sweep_start", "task_cached", "task_start", "task_retry",
            "task_start", "task_finish", "sweep_finish",
        ]
        finish = events[-1]
        assert finish["executed"] == 1 and finish["cached"] == 1

    def test_appends_across_journal_instances(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record("sweep_start")
        with RunJournal(path) as journal:
            journal.record("sweep_finish")
        assert len(read_journal(path)) == 2

    def test_summary_renders_tallies(self):
        journal = RunJournal()
        drive(journal)
        text = journal.summary()
        assert "runner summary" in text
        assert "tasks executed" in text
        assert "tasks cached" in text
        assert "40" in text  # references simulated

    def test_failed_event_counted(self):
        journal = RunJournal()
        journal.task_failed(make_spec(), attempts=3, error="gone")
        assert journal.counts()["failed"] == 1

    def test_fsync_journal_round_trips(self, tmp_path):
        path = tmp_path / "durable.jsonl"
        with RunJournal(path, fsync=True) as journal:
            drive(journal)
        assert len(read_journal(path)) == 7


class TestTornTail:
    """A writer killed mid-append leaves at most one truncated line."""

    def write_events(self, path, n=3):
        with RunJournal(path) as journal:
            for index in range(n):
                journal.record("sweep_start", index=index)

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        self.write_events(path)
        whole = path.read_text(encoding="utf-8")
        # Chop the file mid-way through the last record, exactly what an
        # interrupted append (SIGKILL between write and close) leaves.
        torn = whole.rstrip("\n")
        path.write_text(torn[: len(torn) - 7], encoding="utf-8")
        events = read_journal(path)
        assert [entry["index"] for entry in events] == [0, 1]

    def test_torn_tail_with_trailing_newline_is_dropped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        self.write_events(path)
        torn = path.read_text(encoding="utf-8").rstrip("\n")
        path.write_text(torn[: len(torn) - 7] + "\n", encoding="utf-8")
        assert len(read_journal(path)) == 2

    def test_appends_after_a_torn_tail_still_raise(self, tmp_path):
        import json

        import pytest

        path = tmp_path / "damaged.jsonl"
        self.write_events(path)
        content = path.read_text(encoding="utf-8").splitlines()
        content[1] = content[1][:-5]  # corrupt a *middle* line
        path.write_text("\n".join(content) + "\n", encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            read_journal(path)


class TestFaultLogAttribution:
    """task_finish carries the per-incident fault log when faults struck."""

    def finish(self, mutate=None):
        import repro.sim.stats as ev

        spec = make_spec()
        report = execute_spec(spec)
        if mutate is not None:
            mutate(report.stats, ev)
        journal = RunJournal()
        journal.task_finish(spec, attempt=1, wall_time=0.1, report=report)
        return journal.events[-1]

    def test_fault_free_finish_has_no_fault_log_key(self):
        entry = self.finish()
        assert "fault_log" not in entry
        assert "fault_events" not in entry

    def test_incidents_ride_along_with_attribution(self):
        def mutate(stats, ev):
            stats.record_fault(
                ev.FAULT_RETRY_EXHAUSTED, block=3, kind="write_update",
                dests=[5],
            )
            stats.record_fault(
                ev.FAULT_DEGRADED_BLOCKS, block=3, cause="retry_exhausted",
                dests=[5],
            )

        entry = self.finish(mutate)
        log = entry["fault_log"]
        # Two incidents on the same block in one reference stay two
        # distinct entries, each naming its trigger.
        assert [e["event"] for e in log] == [
            "fault_retry_exhausted", "fault_degraded_blocks",
        ]
        assert log[0]["dests"] == [5]
        assert log[1]["cause"] == "retry_exhausted"
        assert entry["fault_events"]["fault_retry_exhausted"] == 1
