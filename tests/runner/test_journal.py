"""Run journal: event capture, file round trips, summaries."""

from repro.runner import RunJournal, execute_spec, read_journal
from repro.runner.spec import ExperimentSpec, WorkloadSpec
from repro.sim.system import SystemConfig


def make_spec() -> ExperimentSpec:
    return ExperimentSpec(
        protocol="no-cache",
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=4,
            n_references=40,
            write_fraction=0.3,
            tasks=(0, 1),
        ),
        config=SystemConfig(n_nodes=4),
    )


def drive(journal: RunJournal) -> None:
    spec = make_spec()
    report = execute_spec(spec)
    journal.sweep_start("demo", 2, 0)
    journal.task_cached(spec)
    journal.task_start(spec, attempt=1)
    journal.task_retry(spec, attempt=1, error="boom")
    journal.task_start(spec, attempt=2)
    journal.task_finish(spec, attempt=2, wall_time=0.5, report=report)
    journal.sweep_finish("demo", 1.0)


class TestRunJournal:
    def test_memory_only_journal_accumulates(self):
        journal = RunJournal()
        drive(journal)
        assert journal.counts() == {
            "executed": 1, "cached": 1, "retried": 1, "failed": 0,
        }

    def test_file_journal_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            drive(journal)
        events = read_journal(path)
        assert [e["event"] for e in events] == [
            "sweep_start", "task_cached", "task_start", "task_retry",
            "task_start", "task_finish", "sweep_finish",
        ]
        finish = events[-1]
        assert finish["executed"] == 1 and finish["cached"] == 1

    def test_appends_across_journal_instances(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record("sweep_start")
        with RunJournal(path) as journal:
            journal.record("sweep_finish")
        assert len(read_journal(path)) == 2

    def test_summary_renders_tallies(self):
        journal = RunJournal()
        drive(journal)
        text = journal.summary()
        assert "runner summary" in text
        assert "tasks executed" in text
        assert "tasks cached" in text
        assert "40" in text  # references simulated

    def test_failed_event_counted(self):
        journal = RunJournal()
        journal.task_failed(make_spec(), attempts=3, error="gone")
        assert journal.counts()["failed"] == 1
