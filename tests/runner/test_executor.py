"""Executor: parallel == sequential, caching, retries, timeouts, crashes.

The first test is the subsystem's acceptance criterion: a >= 32-cell
sweep run with ``workers=4`` must produce byte-identical per-cell
``SimulationReport.to_dict()`` results to the ``workers=0`` sequential
path, and a second invocation over the same cache must execute nothing.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.runner import (
    Executor,
    ResultCache,
    RunJournal,
    SweepSpec,
    WorkloadSpec,
    execute_spec,
)
from repro.runner.spec import ExperimentSpec
from repro.sim.system import SystemConfig

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="failure-injection task functions need the fork start method",
)


def make_sweep() -> SweepSpec:
    """2 protocols x 4 sharer counts x 4 write fractions = 32 cells."""
    workloads = [
        WorkloadSpec(
            kind="markov",
            n_nodes=8,
            n_references=120,
            write_fraction=w,
            seed=11,
            tasks=tuple(range(sharers)),
        )
        for sharers in (1, 2, 3, 4)
        for w in (0.1, 0.3, 0.5, 0.8)
    ]
    return SweepSpec.from_grid(
        "executor-acceptance",
        protocols=["no-cache", "write-once"],
        workloads=workloads,
        configs=[SystemConfig(n_nodes=8)],
    )


def make_cell(seed=3) -> ExperimentSpec:
    return ExperimentSpec(
        protocol="no-cache",
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=4,
            n_references=30,
            write_fraction=0.5,
            seed=seed,
            tasks=(0, 1),
        ),
        config=SystemConfig(n_nodes=4),
    )


def report_bytes(result) -> str:
    return json.dumps(result.report.to_dict(), sort_keys=True)


class TestAcceptance:
    def test_parallel_bit_identical_and_second_run_all_cached(
        self, tmp_path
    ):
        sweep = make_sweep()
        assert len(sweep) >= 32

        sequential = Executor(workers=0).run(sweep)

        cache = ResultCache(tmp_path / "cache")
        cold_journal = RunJournal(tmp_path / "cold.jsonl")
        parallel = Executor(
            workers=4, cache=cache, journal=cold_journal
        ).run(sweep)

        assert len(parallel) == len(sequential) == len(sweep)
        for seq_cell, par_cell in zip(sequential, parallel):
            assert seq_cell.spec == par_cell.spec
            assert report_bytes(seq_cell) == report_bytes(par_cell)
        assert cold_journal.counts() == {
            "executed": len(sweep), "cached": 0,
            "retried": 0, "failed": 0,
        }

        warm_journal = RunJournal(tmp_path / "warm.jsonl")
        warm = Executor(
            workers=4, cache=cache, journal=warm_journal
        ).run(sweep)
        assert warm_journal.counts()["executed"] == 0
        assert warm_journal.counts()["cached"] == len(sweep)
        for seq_cell, warm_cell in zip(sequential, warm):
            assert warm_cell.cached
            assert report_bytes(seq_cell) == report_bytes(warm_cell)


class TestSequential:
    def test_results_follow_cell_order(self):
        sweep = make_sweep()
        results = Executor(workers=0).run(sweep)
        assert [r.spec for r in results] == list(sweep.cells)

    def test_accepts_a_plain_spec_list(self):
        results = Executor(workers=0).run([make_cell(), make_cell(4)])
        assert len(results) == 2
        assert not results[0].cached

    def test_retry_then_success(self):
        attempts = []

        def flaky(spec):
            attempts.append(spec.spec_hash)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return execute_spec(spec)

        journal = RunJournal()
        results = Executor(
            workers=0, retries=1, journal=journal, task_fn=flaky
        ).run([make_cell()])
        assert len(attempts) == 2
        assert results[0].attempts == 2
        assert journal.counts()["retried"] == 1
        assert journal.counts()["executed"] == 1

    def test_retries_exhausted_raises(self):
        def broken(spec):
            raise RuntimeError("permanent")

        journal = RunJournal()
        with pytest.raises(ExecutionError, match="permanent"):
            Executor(
                workers=0, retries=2, journal=journal, task_fn=broken
            ).run([make_cell()])
        assert journal.counts()["failed"] == 1
        assert journal.counts()["retried"] == 2

    def test_unknown_protocol_fails_with_known_names(self):
        cell = ExperimentSpec(
            protocol="nonexistent",
            workload=make_cell().workload,
            config=SystemConfig(n_nodes=4),
        )
        with pytest.raises(ExecutionError, match="two-mode"):
            Executor(workers=0, retries=0).run([cell])


class TestParallel:
    def test_more_workers_than_tasks(self):
        results = Executor(workers=8).run([make_cell(), make_cell(4)])
        assert len(results) == 2

    @fork_only
    def test_worker_exception_is_retried(self, tmp_path):
        sentinel = tmp_path / "already-failed"

        def flaky(spec):
            if not sentinel.exists():
                sentinel.write_text("1")
                raise RuntimeError("first attempt fails")
            return execute_spec(spec)

        journal = RunJournal()
        results = Executor(
            workers=2, retries=1, journal=journal, task_fn=flaky
        ).run([make_cell()])
        assert journal.counts()["retried"] == 1
        assert results[0].report.n_references == 30

    @fork_only
    def test_worker_crash_is_reported(self):
        def crash(spec):
            os._exit(3)

        # Depending on timing the crash surfaces as an EOF on the result
        # pipe or as a dead process with an exit code; both are terminal.
        with pytest.raises(
            ExecutionError,
            match="closed the pipe early|exited with code",
        ):
            Executor(workers=2, retries=0, task_fn=crash).run(
                [make_cell()]
            )

    @fork_only
    def test_timeout_terminates_and_reports(self):
        def hang(spec):
            time.sleep(60)

        started = time.perf_counter()
        with pytest.raises(ExecutionError, match="timed out"):
            Executor(
                workers=2, retries=0, timeout=0.3, task_fn=hang
            ).run([make_cell()])
        assert time.perf_counter() - started < 30

    @fork_only
    def test_cached_cells_skip_the_workers(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = make_cell()
        Executor(workers=0, cache=cache).run([cell])

        def explode(spec):
            raise AssertionError("cache hit must not reach a worker")

        results = Executor(
            workers=2, cache=cache, task_fn=explode
        ).run([cell])
        assert results[0].cached


class TestValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            Executor(workers=-1)

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            Executor(timeout=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            Executor(retries=-1)


class TestCompiledReplay:
    def test_compiled_default_is_bit_identical(self):
        """The ``compiled`` knob changes speed, never results.

        Same cell, with and without the columnar fast path (and with a
        warmup, so the trace-slicing path is exercised too): the reports
        must agree byte for byte.
        """
        from dataclasses import replace

        from repro.runner.executor import execute_spec

        spec = ExperimentSpec(
            protocol="two-mode",
            workload=WorkloadSpec(
                kind="markov",
                n_nodes=8,
                n_references=400,
                write_fraction=0.3,
                seed=21,
                tasks=(0, 1, 2, 3),
            ),
            config=SystemConfig(n_nodes=8),
            warmup=50,
        )
        assert spec.compiled
        compiled_report = execute_spec(spec)
        reference_report = execute_spec(replace(spec, compiled=False))
        assert json.dumps(
            compiled_report.to_dict(), sort_keys=True
        ) == json.dumps(reference_report.to_dict(), sort_keys=True)
