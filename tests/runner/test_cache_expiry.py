"""Disk-tier expiry: byte budgets, age cutoffs, counters, tier agreement."""

import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.runner import ResultCache, TieredResultCache, execute_spec
from repro.runner.spec import ExperimentSpec, WorkloadSpec
from repro.sim.system import SystemConfig


def make_spec(seed=5) -> ExperimentSpec:
    return ExperimentSpec(
        protocol="no-cache",
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=4,
            n_references=50,
            write_fraction=0.3,
            seed=seed,
            tasks=(0, 1),
        ),
        config=SystemConfig(n_nodes=4),
    )


def entry_size(tmp_path) -> int:
    """The on-disk size of one cached entry (all entries are alike)."""
    cache = ResultCache(tmp_path / "probe")
    spec = make_spec(seed=99)
    return cache.put(spec, execute_spec(spec)).stat().st_size


def set_mtime(path, when: float) -> None:
    os.utime(path, (when, when))


class TestByteBudget:
    def test_oldest_mtime_evicted_first(self, tmp_path):
        size = entry_size(tmp_path)
        registry = MetricsRegistry()
        cache = ResultCache(
            tmp_path / "store",
            max_bytes=int(size * 2.5),
            metrics=registry,
        )
        specs = [make_spec(seed=s) for s in (1, 2, 3)]
        now = time.time()
        sizes = []
        for offset, spec in zip((-300, -200, -100), specs):
            path = cache.put(spec, execute_spec(spec))
            sizes.append(path.stat().st_size)
            set_mtime(path, now + offset)
        # Third put pushed the store to 3 entries > 2.5-entry budget:
        # the oldest (seed=1) must be gone, the newer two must survive.
        assert cache.get(specs[0]) is None
        assert cache.get(specs[1]) is not None
        assert cache.get(specs[2]) is not None
        assert cache.size_evictions == 1
        assert cache.evicted_bytes == sizes[0]
        assert registry.counters["result_cache.disk.evictions_size"] == 1
        assert (
            registry.counters["result_cache.disk.evicted_bytes"]
            == sizes[0]
        )
        assert (
            registry.gauges["result_cache.disk.bytes"]
            == sizes[1] + sizes[2]
        )

    def test_hit_refreshes_recency(self, tmp_path):
        size = entry_size(tmp_path)
        cache = ResultCache(tmp_path / "store", max_bytes=int(size * 2.5))
        old, newer = make_spec(seed=1), make_spec(seed=2)
        now = time.time()
        old_path = cache.put(old, execute_spec(old))
        set_mtime(old_path, now - 300)
        newer_path = cache.put(newer, execute_spec(newer))
        set_mtime(newer_path, now - 200)
        assert cache.get(old) is not None  # touch: old is now the MRU
        third = make_spec(seed=3)
        cache.put(third, execute_spec(third))
        assert cache.get(old) is not None
        assert cache.get(newer) is None

    def test_just_written_entry_is_never_evicted(self, tmp_path):
        size = entry_size(tmp_path)
        cache = ResultCache(tmp_path / "store", max_bytes=size // 2)
        spec = make_spec(seed=1)
        cache.put(spec, execute_spec(spec))
        assert cache.get(spec) is not None

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path, max_bytes=0)
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path, max_age=0)

    def test_budget_seeded_from_existing_entries(self, tmp_path):
        size = entry_size(tmp_path)
        root = tmp_path / "store"
        plain = ResultCache(root)
        now = time.time()
        for offset, seed in ((-300, 1), (-200, 2)):
            spec = make_spec(seed=seed)
            set_mtime(plain.put(spec, execute_spec(spec)), now + offset)
        # Reopen with a policy: the pre-existing bytes count against the
        # budget, so the next put evicts the oldest pre-existing entry.
        cache = ResultCache(root, max_bytes=int(size * 2.5))
        third = make_spec(seed=3)
        cache.put(third, execute_spec(third))
        assert cache.get(make_spec(seed=1)) is None
        assert cache.get(make_spec(seed=2)) is not None


class TestMaxAge:
    def test_stale_entry_expires_on_get(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(
            tmp_path / "store", max_age=60.0, metrics=registry
        )
        spec = make_spec()
        path = cache.put(spec, execute_spec(spec))
        assert cache.get(spec) is not None
        set_mtime(path, time.time() - 120)
        assert cache.get(spec) is None
        assert not path.exists()
        assert cache.age_evictions == 1
        assert registry.counters["result_cache.disk.evictions_age"] == 1

    def test_fresh_entry_survives(self, tmp_path):
        cache = ResultCache(tmp_path / "store", max_age=3600.0)
        spec = make_spec()
        cache.put(spec, execute_spec(spec))
        assert cache.get(spec) is not None

    def test_expire_sweep(self, tmp_path):
        cache = ResultCache(tmp_path / "store", max_age=60.0)
        now = time.time()
        stale, fresh = make_spec(seed=1), make_spec(seed=2)
        set_mtime(cache.put(stale, execute_spec(stale)), now - 120)
        cache.put(fresh, execute_spec(fresh))
        assert cache.expire(now=now) == 1
        assert cache.get(stale) is None
        assert cache.get(fresh) is not None


class TestTieredDiskExpiry:
    def test_knobs_forward_and_counters_mirror(self, tmp_path):
        size = entry_size(tmp_path)
        registry = MetricsRegistry()
        tiered = TieredResultCache(
            tmp_path / "store",
            capacity=8,
            metrics=registry,
            disk_max_bytes=int(size * 1.5),
            disk_max_age=3600.0,
        )
        first, second = make_spec(seed=1), make_spec(seed=2)
        now = time.time()
        tiered.put(first, execute_spec(first))
        first_path = tiered.disk._path(first.spec_hash)
        first_size = first_path.stat().st_size
        set_mtime(first_path, now - 300)
        tiered.put(second, execute_spec(second))
        stats = tiered.stats()
        assert stats["disk_size_evictions"] == 1
        assert stats["disk_evicted_bytes"] == first_size
        assert stats["disk_age_evictions"] == 0
        assert registry.counters["result_cache.disk.evictions_size"] == 1

    def test_hot_tier_answers_after_disk_eviction(self, tmp_path):
        size = entry_size(tmp_path)
        tiered = TieredResultCache(
            tmp_path / "store",
            capacity=8,
            disk_max_bytes=int(size * 1.5),
        )
        first, second = make_spec(seed=1), make_spec(seed=2)
        now = time.time()
        report = execute_spec(first)
        tiered.put(first, report)
        set_mtime(tiered.disk._path(first.spec_hash), now - 300)
        tiered.put(second, execute_spec(second))
        # Disk dropped the first entry, but the hot tier still agrees
        # with the original report byte for byte.
        assert tiered.disk.get(first) is None
        cached, tier = tiered.lookup(first)
        assert tier == "hot"
        assert cached.to_dict() == report.to_dict()

    def test_miss_after_both_tiers_drop_the_entry(self, tmp_path):
        size = entry_size(tmp_path)
        tiered = TieredResultCache(
            tmp_path / "store",
            capacity=1,
            disk_max_bytes=int(size * 1.5),
        )
        first, second = make_spec(seed=1), make_spec(seed=2)
        now = time.time()
        tiered.put(first, execute_spec(first))
        set_mtime(tiered.disk._path(first.spec_hash), now - 300)
        tiered.put(second, execute_spec(second))  # evicts hot + disk copy
        report, tier = tiered.lookup(first)
        assert report is None and tier is None

    def test_stats_without_policy_keep_old_shape(self, tmp_path):
        tiered = TieredResultCache(tmp_path / "store", capacity=4)
        assert "disk_size_evictions" not in tiered.stats()
