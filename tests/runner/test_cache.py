"""Result cache: round trips, miss semantics, corruption tolerance."""

import json

from repro.runner import ResultCache, execute_spec
from repro.runner.spec import ExperimentSpec, WorkloadSpec
from repro.sim.system import SystemConfig


def make_spec(seed=5) -> ExperimentSpec:
    return ExperimentSpec(
        protocol="no-cache",
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=4,
            n_references=50,
            write_fraction=0.3,
            seed=seed,
            tasks=(0, 1),
        ),
        config=SystemConfig(n_nodes=4),
    )


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_spec()) is None
        assert make_spec() not in cache

    def test_round_trip_preserves_every_field(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        report = execute_spec(spec)
        cache.put(spec, report)
        restored = cache.get(spec)
        assert restored is not None
        assert restored.to_dict() == report.to_dict()
        assert spec in cache
        assert len(cache) == 1

    def test_entries_are_per_spec(self, tmp_path):
        cache = ResultCache(tmp_path)
        first, second = make_spec(seed=1), make_spec(seed=2)
        cache.put(first, execute_spec(first))
        assert cache.get(second) is None

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        path = cache.put(spec, execute_spec(spec))
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get(spec) is None

    def test_foreign_spec_at_our_path_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec, other = make_spec(seed=1), make_spec(seed=2)
        path = cache.put(spec, execute_spec(spec))
        document = json.loads(path.read_text(encoding="utf-8"))
        document["spec"] = other.to_dict()
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get(spec) is None

    def test_clear_empties_the_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in (1, 2, 3):
            spec = make_spec(seed=seed)
            cache.put(spec, execute_spec(spec))
        assert cache.clear() == 3
        assert len(cache) == 0
