"""Result cache: round trips, miss semantics, corruption tolerance."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.runner import ResultCache, TieredResultCache, execute_spec
from repro.runner.spec import ExperimentSpec, WorkloadSpec
from repro.sim.system import SystemConfig


def make_spec(seed=5) -> ExperimentSpec:
    return ExperimentSpec(
        protocol="no-cache",
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=4,
            n_references=50,
            write_fraction=0.3,
            seed=seed,
            tasks=(0, 1),
        ),
        config=SystemConfig(n_nodes=4),
    )


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_spec()) is None
        assert make_spec() not in cache

    def test_round_trip_preserves_every_field(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        report = execute_spec(spec)
        cache.put(spec, report)
        restored = cache.get(spec)
        assert restored is not None
        assert restored.to_dict() == report.to_dict()
        assert spec in cache
        assert len(cache) == 1

    def test_entries_are_per_spec(self, tmp_path):
        cache = ResultCache(tmp_path)
        first, second = make_spec(seed=1), make_spec(seed=2)
        cache.put(first, execute_spec(first))
        assert cache.get(second) is None

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        path = cache.put(spec, execute_spec(spec))
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get(spec) is None

    def test_foreign_spec_at_our_path_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec, other = make_spec(seed=1), make_spec(seed=2)
        path = cache.put(spec, execute_spec(spec))
        document = json.loads(path.read_text(encoding="utf-8"))
        document["spec"] = other.to_dict()
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get(spec) is None

    def test_clear_empties_the_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in (1, 2, 3):
            spec = make_spec(seed=seed)
            cache.put(spec, execute_spec(spec))
        assert cache.clear() == 3
        assert len(cache) == 0


class TestTieredResultCache:
    def test_memory_only_round_trip(self):
        cache = TieredResultCache()
        spec = make_spec()
        assert cache.lookup(spec) == (None, None)
        report = execute_spec(spec)
        cache.put(spec, report)
        hit, tier = cache.lookup(spec)
        assert tier == "hot"
        assert hit.to_dict() == report.to_dict()
        assert spec in cache and len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TieredResultCache(capacity=0)

    def test_eviction_is_least_recently_used(self):
        cache = TieredResultCache(capacity=2)
        specs = [make_spec(seed=seed) for seed in (1, 2, 3)]
        reports = [execute_spec(spec) for spec in specs]
        cache.put(specs[0], reports[0])
        cache.put(specs[1], reports[1])
        cache.get(specs[0])  # refresh: seed=2 becomes the LRU entry
        cache.put(specs[2], reports[2])
        assert cache.get(specs[1]) is None
        assert cache.get(specs[0]) is not None
        assert cache.get(specs[2]) is not None
        assert cache.evictions == 1 and len(cache) == 2

    def test_disk_copy_survives_eviction_and_promotes(self, tmp_path):
        cache = TieredResultCache(tmp_path, capacity=1)
        first, second = make_spec(seed=1), make_spec(seed=2)
        cache.put(first, execute_spec(first))
        cache.put(second, execute_spec(second))  # evicts seed=1 from hot
        report, tier = cache.lookup(first)
        assert tier == "disk" and report is not None
        _, again = cache.lookup(first)
        assert again == "hot"  # the disk hit promoted it

    def test_fresh_instance_reads_the_disk_tier(self, tmp_path):
        spec = make_spec()
        report = execute_spec(spec)
        TieredResultCache(tmp_path).put(spec, report)
        reopened = TieredResultCache(tmp_path)
        hit, tier = reopened.lookup(spec)
        assert tier == "disk"
        assert hit.to_dict() == report.to_dict()

    def test_stats_and_metrics_mirror_the_counters(self):
        metrics = MetricsRegistry()
        cache = TieredResultCache(capacity=1, metrics=metrics)
        first, second = make_spec(seed=1), make_spec(seed=2)
        cache.put(first, execute_spec(first))
        cache.get(first)
        cache.get(second)  # hot miss (no disk tier configured)
        cache.put(second, execute_spec(second))  # evicts seed=1
        stats = cache.stats()
        assert stats == {
            "capacity": 1,
            "disk_hits": 0,
            "disk_misses": 0,
            "evictions": 1,
            "hot_entries": 1,
            "hot_hits": 1,
            "hot_misses": 1,
        }
        snapshot = metrics.to_dict()
        assert snapshot["counters"]["result_cache.hot_hits"] == 1
        assert snapshot["counters"]["result_cache.evictions"] == 1
        assert snapshot["gauges"]["result_cache.hot_entries"] == 1

    def test_executor_accepts_the_tiered_cache(self, tmp_path):
        from repro.runner import Executor, RunJournal

        spec = make_spec()
        cache = TieredResultCache(tmp_path)
        journal = RunJournal()
        executor = Executor(cache=cache, journal=journal)
        executor.run([spec])
        executor.run([spec])  # second run must be served, not executed
        assert journal.counts()["executed"] == 1
        assert journal.counts()["cached"] == 1
