"""Specs: validation, serialisation round trips, content-hash stability."""

import pytest

from repro.errors import ConfigurationError
from repro.network.multicast import MulticastScheme
from repro.protocol.messages import MessageCosts
from repro.runner.spec import (
    ExperimentSpec,
    SweepSpec,
    WorkloadSpec,
    config_from_dict,
    config_to_dict,
)
from repro.sim.system import SystemConfig


def make_workload(**overrides):
    fields = dict(
        kind="markov",
        n_nodes=8,
        n_references=100,
        write_fraction=0.3,
        seed=5,
        tasks=(0, 1, 2),
    )
    fields.update(overrides)
    return WorkloadSpec(**fields)


def make_spec(**overrides):
    fields = dict(
        protocol="two-mode",
        workload=make_workload(),
        config=SystemConfig(n_nodes=8),
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestWorkloadSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            make_workload(kind="fibonacci")

    def test_markov_without_tasks_rejected(self):
        with pytest.raises(ConfigurationError, match="tasks"):
            make_workload(tasks=())

    def test_tasks_normalised_to_tuple(self):
        workload = make_workload(tasks=[0, 1])
        assert workload.tasks == (0, 1)

    @pytest.mark.parametrize(
        "kind,extra",
        [
            ("markov", {}),
            ("shared-structure", {"n_blocks": 4}),
            ("random", {"tasks": (), "n_blocks": 4, "locality": 0.7}),
        ],
    )
    def test_build_is_deterministic(self, kind, extra):
        workload = make_workload(kind=kind, **extra)
        first = workload.build()
        second = workload.build()
        assert first.references == second.references
        assert len(first) == workload.n_references

    def test_round_trip(self):
        workload = make_workload(kind="random", tasks=())
        assert WorkloadSpec.from_dict(workload.to_dict()) == workload


class TestConfigSerialisation:
    def test_round_trip_non_defaults(self):
        config = SystemConfig(
            n_nodes=32,
            block_size_words=8,
            cache_entries=4,
            associativity=2,
            replacement="fifo",
            costs=MessageCosts.uniform(20),
            multicast_scheme=MulticastScheme.VECTOR,
            seed=9,
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_round_trip_defaults(self):
        config = SystemConfig(n_nodes=8)
        assert config_from_dict(config_to_dict(config)) == config


class TestExperimentSpec:
    def test_round_trip(self):
        spec = make_spec(warmup=10, verify=True, check_invariants_every=5)
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.spec_hash == spec.spec_hash

    def test_hash_is_stable_across_instances(self):
        assert make_spec().spec_hash == make_spec().spec_hash

    def test_hash_sees_every_knob(self):
        base = make_spec()
        variants = [
            make_spec(protocol="no-cache"),
            make_spec(workload=make_workload(seed=6)),
            make_spec(workload=make_workload(write_fraction=0.4)),
            make_spec(config=SystemConfig(n_nodes=16)),
            make_spec(
                config=SystemConfig(
                    n_nodes=8, multicast_scheme=MulticastScheme.UNICAST
                )
            ),
            make_spec(warmup=1),
            make_spec(verify=True),
            make_spec(check_invariants_every=7),
        ]
        hashes = {spec.spec_hash for spec in variants}
        assert base.spec_hash not in hashes
        assert len(hashes) == len(variants)

    def test_empty_protocol_rejected(self):
        with pytest.raises(ConfigurationError, match="protocol"):
            make_spec(protocol="")

    def test_warmup_beyond_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="warmup"):
            make_spec(warmup=101)

    def test_future_version_rejected(self):
        data = make_spec().to_dict()
        data["version"] = 999
        with pytest.raises(ConfigurationError, match="version"):
            ExperimentSpec.from_dict(data)

    def test_describe_names_the_cell(self):
        text = make_spec().describe()
        assert "two-mode" in text
        assert "markov" in text


class TestSweepSpec:
    def test_grid_is_full_cross_product(self):
        sweep = SweepSpec.from_grid(
            "grid",
            protocols=["two-mode", "no-cache"],
            workloads=[make_workload(seed=s) for s in (1, 2, 3)],
            configs=[SystemConfig(n_nodes=8), SystemConfig(n_nodes=16)],
        )
        assert len(sweep) == 2 * 3 * 2
        # Workload-major order: the first two cells share workload+config.
        first, second = sweep.cells[0], sweep.cells[1]
        assert first.workload == second.workload
        assert first.config == second.config
        assert {first.protocol, second.protocol} == {
            "two-mode", "no-cache"
        }

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_grid(
                "empty", protocols=[], workloads=[], configs=[]
            )

    def test_round_trip(self):
        sweep = SweepSpec.from_grid(
            "rt",
            protocols=["two-mode"],
            workloads=[make_workload()],
            configs=[SystemConfig(n_nodes=8)],
        )
        rebuilt = SweepSpec.from_dict(sweep.to_dict())
        assert rebuilt == sweep
        assert rebuilt.spec_hash == sweep.spec_hash

    def test_hash_sees_the_name(self):
        kwargs = dict(
            protocols=["two-mode"],
            workloads=[make_workload()],
            configs=[SystemConfig(n_nodes=8)],
        )
        assert (
            SweepSpec.from_grid("a", **kwargs).spec_hash
            != SweepSpec.from_grid("b", **kwargs).spec_hash
        )


class TestCompiledKnob:
    def test_default_is_compiled_and_hash_neutral(self):
        spec = make_spec()
        assert spec.compiled is True
        assert "compiled" not in spec.to_dict()
        # The knob default must not disturb hashes of pre-existing spec
        # dicts: explicit True serialises identically to the default.
        assert make_spec(compiled=True).spec_hash == spec.spec_hash

    def test_from_dict_defaults_to_compiled(self):
        data = make_spec().to_dict()
        data.pop("compiled", None)
        assert ExperimentSpec.from_dict(data).compiled is True

    def test_disabled_knob_round_trips(self):
        spec = make_spec(compiled=False)
        data = spec.to_dict()
        assert data["compiled"] is False
        rebuilt = ExperimentSpec.from_dict(data)
        assert rebuilt.compiled is False
        assert rebuilt == spec

    def test_build_compiled_matches_build(self):
        workload = make_workload()
        assert workload.build_compiled() == workload.build().compile()
