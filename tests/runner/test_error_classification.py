"""Executor error classification, deterministic backoff, collect mode.

Permanent error classes (bad config, coherence violations, malformed
traces) are a pure function of the spec and must fail fast -- no retry
budget burned.  Transient classes retry with an exponential backoff that
is a pure function of the attempt number, and every attempt's error
class lands in the journal.
"""

import multiprocessing

import pytest

from repro.errors import CoherenceError, ExecutionError
from repro.runner import Executor, RunJournal
from repro.runner.executor import PERMANENT_ERROR_CLASSES

from tests.runner.test_executor import make_cell

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="failure-injection task functions need the fork start method",
)


def raise_coherence(spec):
    raise CoherenceError("block 0 (node 1, mode GLOBAL_READ): forged")


def raise_transient(spec):
    raise OSError("connection reset by peer")


class TestClassification:
    def test_permanent_classes_cover_the_deterministic_failures(self):
        assert "CoherenceError" in PERMANENT_ERROR_CLASSES
        assert "ConfigurationError" in PERMANENT_ERROR_CLASSES
        assert "FaultInjectionError" in PERMANENT_ERROR_CLASSES

    def test_permanent_error_fails_fast_despite_retry_budget(self):
        journal = RunJournal()
        executor = Executor(
            workers=0, retries=5, journal=journal, task_fn=raise_coherence
        )
        with pytest.raises(ExecutionError, match="CoherenceError"):
            executor.run([make_cell()])
        # No retry events: one attempt, one failure.
        assert journal.counts()["retried"] == 0
        failures = [
            event for event in journal.events
            if event["event"] == "task_failed"
        ]
        assert failures[0]["error_class"] == "CoherenceError"
        assert failures[0]["attempts"] == 1

    def test_transient_error_uses_the_retry_budget(self):
        journal = RunJournal()
        executor = Executor(
            workers=0, retries=2, journal=journal, task_fn=raise_transient
        )
        with pytest.raises(ExecutionError, match="OSError"):
            executor.run([make_cell()])
        assert journal.counts()["retried"] == 2

    @fork_only
    def test_parallel_path_classifies_too(self):
        journal = RunJournal()
        executor = Executor(
            workers=2, retries=5, journal=journal, task_fn=raise_coherence
        )
        with pytest.raises(ExecutionError, match="CoherenceError"):
            executor.run([make_cell()])
        assert journal.counts()["retried"] == 0


class TestBackoff:
    def test_schedule_is_a_pure_function_of_the_attempt(self):
        executor = Executor(backoff=0.1)
        assert executor._backoff_for(1) == pytest.approx(0.1)
        assert executor._backoff_for(2) == pytest.approx(0.2)
        assert executor._backoff_for(3) == pytest.approx(0.4)

    def test_zero_backoff_stays_zero(self):
        executor = Executor()
        assert executor._backoff_for(5) == 0.0

    def test_negative_backoff_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="backoff"):
            Executor(backoff=-1.0)

    def test_backoff_recorded_per_retry_in_the_journal(self):
        attempts = []

        def flaky(spec):
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            from repro.runner import execute_spec

            return execute_spec(spec)

        journal = RunJournal()
        executor = Executor(
            workers=0,
            retries=3,
            backoff=0.01,
            journal=journal,
            task_fn=flaky,
        )
        results = executor.run([make_cell()])
        assert results[0].report is not None
        retries = [
            event for event in journal.events
            if event["event"] == "task_retry"
        ]
        assert [event["backoff"] for event in retries] == [
            pytest.approx(0.01),
            pytest.approx(0.02),
        ]
        assert all(
            event["error_class"] == "OSError" for event in retries
        )


class TestCollectMode:
    def test_collected_failure_keeps_the_run_going(self):
        calls = []

        def selective(spec):
            calls.append(spec)
            if spec.workload.seed == 4:
                raise CoherenceError("block 1 (node 0, mode none): forged")
            from repro.runner import execute_spec

            return execute_spec(spec)

        cells = [make_cell(seed=s) for s in (3, 4, 5)]
        executor = Executor(
            workers=0, on_error="collect", task_fn=selective
        )
        results = executor.run(cells)
        assert len(results) == 3
        assert results[0].report is not None
        assert results[1].failed
        assert results[1].error_class == "CoherenceError"
        assert results[2].report is not None

    def test_invalid_on_error_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="on_error"):
            Executor(on_error="ignore")
