"""The §5 'compiler': profile a program, assign each block its mode.

"It should be possible for the compiler to determine both the message size
and the maximum number of tasks and consequently break-even" -- and, for
the two operating modes, §2.1 says the mode is "selected so as to minimize
communication cost and set by the software".

This module is that software.  :func:`profile_trace` extracts each block's
sharing profile (write fraction, reader/writer sets) from a reference
trace -- what a compiler would know from the program's loop structure --
and :func:`recommend_modes` applies the §4 rule: distributed write when
``w <= w1 = 2/(n+2)``, global read otherwise.  The resulting mode map
drives a :class:`~repro.protocol.modes.PerBlockModePolicy`, giving the
static, zero-hardware mode selection the paper envisions, measured against
the runtime selectors in the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.cache.state import Mode
from repro.protocol.modes import write_fraction_threshold
from repro.types import BlockId, NodeId, Reference


@dataclass(frozen=True)
class BlockProfile:
    """Sharing profile of one block over a trace."""

    block: BlockId
    references: int
    writes: int
    readers: frozenset[NodeId]
    writers: frozenset[NodeId]

    @property
    def write_fraction(self) -> float:
        if self.references == 0:
            return 0.0
        return self.writes / self.references

    @property
    def sharers(self) -> frozenset[NodeId]:
        return self.readers | self.writers

    @property
    def single_writer(self) -> bool:
        """The paper's stable-ownership condition (§5)."""
        return len(self.writers) <= 1

    def recommended_mode(self) -> Mode:
        """The §4 rule applied to this block's profile."""
        threshold = write_fraction_threshold(len(self.sharers))
        return (
            Mode.DISTRIBUTED_WRITE
            if self.write_fraction <= threshold
            else Mode.GLOBAL_READ
        )


def profile_trace(
    references: Iterable[Reference],
) -> dict[BlockId, BlockProfile]:
    """Per-block sharing profiles of a reference stream."""
    counts: dict[BlockId, int] = {}
    writes: dict[BlockId, int] = {}
    readers: dict[BlockId, set[NodeId]] = {}
    writers: dict[BlockId, set[NodeId]] = {}
    for ref in references:
        block = ref.address.block
        counts[block] = counts.get(block, 0) + 1
        if ref.is_write:
            writes[block] = writes.get(block, 0) + 1
            writers.setdefault(block, set()).add(ref.node)
        else:
            readers.setdefault(block, set()).add(ref.node)
    return {
        block: BlockProfile(
            block=block,
            references=counts[block],
            writes=writes.get(block, 0),
            readers=frozenset(readers.get(block, set())),
            writers=frozenset(writers.get(block, set())),
        )
        for block in counts
    }


def recommend_modes(
    references: Iterable[Reference],
) -> dict[BlockId, Mode]:
    """Mode per block, by the §4 threshold over the trace's profiles."""
    return {
        block: profile.recommended_mode()
        for block, profile in profile_trace(references).items()
    }


def profile_summary(
    profiles: Mapping[BlockId, BlockProfile]
) -> list[tuple[BlockId, int, float, int, str, str]]:
    """Table rows ``(block, refs, w, sharers, single-writer?, mode)``."""
    rows = []
    for block in sorted(profiles):
        profile = profiles[block]
        rows.append(
            (
                block,
                profile.references,
                round(profile.write_fraction, 3),
                len(profile.sharers),
                "yes" if profile.single_writer else "no",
                profile.recommended_mode().value,
            )
        )
    return rows
