"""End-to-end protocol comparisons on the trace-driven simulator.

Where :mod:`repro.analysis.figures` evaluates the paper's *formulas*, this
module runs the actual protocol machines over traces and measures what the
network carried -- the empirical counterpart of Figure 8 and the basis of
the extension benchmarks (mode policies, multicast-scheme ablation).

The analytic §4 model counts only steady-state consistency traffic; the
simulator also pays cold-start block loads and bookkeeping messages, so
:func:`simulated_cost_curve` runs a warm-up segment before measuring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.analysis.report import render_table
from repro.cache.state import Mode
from repro.errors import ConfigurationError
from repro.protocol.base import CoherenceProtocol
from repro.protocol.costs import one_traversal
from repro.protocol.full_map import FullMapProtocol
from repro.protocol.messages import MessageCosts
from repro.protocol.modes import OracleModePolicy
from repro.protocol.no_cache import NoCacheProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.protocol.write_once import WriteOnceProtocol
from repro.sim.engine import SimulationReport, run_trace
from repro.sim.system import System, SystemConfig
from repro.sim.trace import Trace
from repro.workloads.markov import markov_block_trace

ProtocolFactory = Callable[[System], CoherenceProtocol]


def default_factories() -> dict[str, ProtocolFactory]:
    """The standard comparison set (the §4 protocols plus full-map)."""
    return {
        "no-cache": NoCacheProtocol,
        "write-once": WriteOnceProtocol,
        "full-map": FullMapProtocol,
        "distributed-write": lambda system: StenstromProtocol(
            system, default_mode=Mode.DISTRIBUTED_WRITE
        ),
        "global-read": lambda system: StenstromProtocol(
            system, default_mode=Mode.GLOBAL_READ
        ),
        "two-mode": lambda system: StenstromProtocol(
            system, mode_policy=OracleModePolicy(window=32)
        ),
    }


@dataclass(frozen=True)
class ProtocolComparison:
    """Per-protocol reports for one trace."""

    trace_length: int
    reports: Mapping[str, SimulationReport]

    def cost_per_reference(self) -> dict[str, float]:
        return {
            name: report.cost_per_reference
            for name, report in self.reports.items()
        }

    def winner(self) -> str:
        """Protocol with the least traffic per reference."""
        return min(
            self.reports, key=lambda name: self.reports[name].cost_per_reference
        )

    def render(self) -> str:
        rows = [
            (
                name,
                report.network_total_bits,
                f"{report.cost_per_reference:.1f}",
            )
            for name, report in sorted(
                self.reports.items(),
                key=lambda item: item[1].cost_per_reference,
            )
        ]
        return render_table(
            ("protocol", "total bits", "bits/reference"),
            rows,
            title=f"protocol comparison over {self.trace_length} references",
        )


def compare_protocols(
    trace: Trace,
    config: SystemConfig,
    factories: Mapping[str, ProtocolFactory] | None = None,
    *,
    verify: bool = True,
) -> ProtocolComparison:
    """Run ``trace`` through each protocol on a fresh system and compare."""
    if factories is None:
        factories = default_factories()
    reports = {}
    for name, factory in factories.items():
        system = System(config)
        protocol = factory(system)
        reports[name] = run_trace(protocol, trace, verify=verify)
    return ProtocolComparison(len(trace), reports)


def simulated_cost_curve(
    write_fractions: Sequence[float],
    n_sharers: int,
    *,
    n_nodes: int = 16,
    message_bits: int = 20,
    references: int = 4000,
    warmup: int = 500,
    factories: Mapping[str, ProtocolFactory] | None = None,
    seed: int = 0,
) -> dict[str, list[tuple[float, float]]]:
    """Empirical Figure 8: normalized measured cost vs write fraction.

    For each ``w``, a §4 Markov trace (``n_sharers`` tasks, one writer,
    one shared block) runs through each protocol under the *uniform*
    message-cost model; the measured steady-state traffic per reference is
    divided by ``CC1(1)`` so the curves land on Figure 8's axes.
    """
    if n_sharers < 1 or n_sharers > n_nodes:
        raise ConfigurationError(
            f"need 1 <= n_sharers <= n_nodes, "
            f"got {n_sharers} of {n_nodes}"
        )
    if warmup < 0 or references <= 0:
        raise ConfigurationError(
            f"need warmup >= 0 and references > 0, "
            f"got {warmup} and {references}"
        )
    if factories is None:
        factories = default_factories()
    config = SystemConfig(
        n_nodes=n_nodes,
        costs=MessageCosts.uniform(message_bits),
    )
    unit = one_traversal(n_nodes, message_bits)
    curves: dict[str, list[tuple[float, float]]] = {
        name: [] for name in factories
    }
    tasks = list(range(n_sharers))
    for w in write_fractions:
        trace = markov_block_trace(
            n_nodes,
            tasks,
            w,
            warmup + references,
            block_size_words=config.block_size_words,
            seed=seed,
        )
        for name, factory in factories.items():
            system = System(config)
            protocol = factory(system)
            run_trace(
                protocol,
                trace.references[:warmup],
                verify=False,
                check_invariants_every=0,
            )
            report = run_trace(
                protocol,
                trace.references[warmup:],
                verify=False,
                check_invariants_every=0,
            )
            curves[name].append((w, report.cost_per_reference / unit))
    return curves
