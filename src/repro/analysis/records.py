"""Persist experiment records as JSON.

Sweeps and comparisons produce plain dataclass records; this module gives
them a stable on-disk form so experiment outputs can be archived, diffed
between library versions, and loaded back without re-running simulations.
The format is intentionally boring: a top-level object with a ``format``
tag, the generating parameters echo, and a list of record dicts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.sweep import SweepRecord
from repro.errors import ConfigurationError

_FORMAT = "repro-sweep-records-v1"


def records_to_json(
    records: Sequence[SweepRecord],
    *,
    metadata: Mapping[str, object] | None = None,
) -> str:
    """Serialise sweep records (plus free-form metadata) to JSON text."""
    payload = {
        "format": _FORMAT,
        "metadata": dict(metadata or {}),
        "records": [
            {
                "protocol": record.protocol,
                "parameters": dict(record.parameters),
                "cost_per_reference": record.cost_per_reference,
                "total_bits": record.total_bits,
                "events": dict(record.events),
            }
            for record in records
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def records_from_json(text: str) -> tuple[list[SweepRecord], dict]:
    """Parse JSON text back into records and their metadata."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"malformed record file: {error}") from None
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise ConfigurationError(
            f"not a {_FORMAT} document "
            f"(format={payload.get('format') if isinstance(payload, dict) else None!r})"
        )
    records = []
    for item in payload["records"]:
        records.append(
            SweepRecord(
                protocol=item["protocol"],
                parameters=tuple(sorted(item["parameters"].items())),
                cost_per_reference=float(item["cost_per_reference"]),
                total_bits=int(item["total_bits"]),
                events=tuple(sorted(item["events"].items())),
            )
        )
    return records, dict(payload.get("metadata", {}))


def save_records(
    records: Sequence[SweepRecord],
    path: str | Path,
    *,
    metadata: Mapping[str, object] | None = None,
) -> None:
    """Write records to ``path``."""
    Path(path).write_text(
        records_to_json(records, metadata=metadata) + "\n",
        encoding="utf-8",
    )


def load_records(path: str | Path) -> tuple[list[SweepRecord], dict]:
    """Read records from ``path``."""
    return records_from_json(Path(path).read_text(encoding="utf-8"))
