"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.analysis.figures` -- data builders, one per table/figure,
  each returning plain data structures plus the paper's published values
  for side-by-side comparison;
* :mod:`repro.analysis.compare` -- end-to-end protocol comparisons on the
  trace-driven simulator (the empirical counterpart of Figure 8);
* :mod:`repro.analysis.report` -- ASCII rendering of tables and line
  charts for terminal output.
"""

from repro.analysis.compiler import (
    BlockProfile,
    profile_trace,
    recommend_modes,
)
from repro.analysis.compare import (
    ProtocolComparison,
    compare_protocols,
    simulated_cost_curve,
)
from repro.analysis.fitting import LinearFit, fit_linear
from repro.analysis.latency import (
    LatencyReport,
    latency_comparison,
    trace_latency,
)
from repro.analysis.sweep import run_sweep, series_by_protocol, sharer_sweep
from repro.analysis.figures import (
    fig5_data,
    fig6_data,
    fig8_data,
    state_memory_table,
    table2_data,
    table3_data,
    table4_data,
)
from repro.analysis.records import load_records, save_records
from repro.analysis.replication import (
    ReplicatedMeasurement,
    replicate,
    replicated_cost,
)
from repro.analysis.report import render_series, render_table

__all__ = [
    "BlockProfile",
    "LatencyReport",
    "LinearFit",
    "ProtocolComparison",
    "ReplicatedMeasurement",
    "compare_protocols",
    "fig5_data",
    "fig6_data",
    "fig8_data",
    "fit_linear",
    "latency_comparison",
    "load_records",
    "profile_trace",
    "recommend_modes",
    "render_series",
    "render_table",
    "replicate",
    "replicated_cost",
    "run_sweep",
    "save_records",
    "series_by_protocol",
    "sharer_sweep",
    "simulated_cost_curve",
    "state_memory_table",
    "table2_data",
    "table3_data",
    "table4_data",
    "trace_latency",
]
