"""Terminal rendering of experiment results.

The paper's figures are line charts and its tables small grids; both render
here as plain text so every benchmark can print what it regenerates.  No
plotting dependency is used (the environment is offline); the ASCII charts
are intentionally coarse -- the *data* returned by
:mod:`repro.analysis.figures` is the deliverable, the chart is a preview.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError

Point = tuple[float, float]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """A fixed-width text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, header has {columns}"
            )
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        headers[i].ljust(widths[i]) for i in range(columns)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(row[i].rjust(widths[i]) for i in range(columns))
        )
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[Point]],
    *,
    title: str | None = None,
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
) -> str:
    """A coarse ASCII line chart of one or more ``(x, y)`` series.

    Each series is plotted with its own symbol; a legend follows the grid.
    ``log_x`` spaces the x axis logarithmically (natural for the paper's
    power-of-two destination counts).
    """
    import math

    if width < 8 or height < 4:
        raise ConfigurationError(
            f"chart needs width >= 8 and height >= 4, "
            f"got {width}x{height}"
        )
    points = [
        (label, x, y)
        for label, pts in series.items()
        for x, y in pts
    ]
    if not points:
        return title or "(no data)"

    def x_of(value: float) -> float:
        if log_x:
            if value <= 0:
                raise ConfigurationError(
                    f"log_x chart cannot place x={value}"
                )
            return math.log2(value)
        return value

    xs = [x_of(x) for _, x, _ in points]
    ys = [y for _, _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    symbols = "*o+x#@%&"
    legend = []
    for index, (label, pts) in enumerate(series.items()):
        symbol = symbols[index % len(symbols)]
        legend.append(f"  {symbol} {label}")
        for x, y in pts:
            column = round((x_of(x) - x_min) / x_span * (width - 1))
            row = round((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][column] = symbol

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {y_min:g} .. {y_max:g}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    x_label = "x (log2)" if log_x else "x"
    lines.append(
        f"{x_label}: "
        f"{min(x for _, x, _ in points):g} .. "
        f"{max(x for _, x, _ in points):g}"
    )
    lines.extend(legend)
    return "\n".join(lines)
