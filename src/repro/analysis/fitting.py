"""Statistical cross-validation: fit measured curves to the §4 forms.

The benchmarks already check *who wins where*; this module checks the
measured curves' *functional form*.  Eq. 10 says write-once traffic is
``w(1-w)(n+2)·CC1`` -- linear in ``n``; eq. 11 says distributed-write
traffic is linear in ``w``; eq. 9 says uncached traffic is affine in
``w`` with slope ``-CC1``.  :func:`fit_linear` (ordinary least squares on
numpy) recovers slope, intercept and R², and the tests assert the
simulator's measurements actually fit the predicted lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LinearFit:
    """Ordinary-least-squares line through ``(x, y)`` points."""

    slope: float
    intercept: float
    r_squared: float
    n_points: int

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def fit_linear(points: Sequence[tuple[float, float]]) -> LinearFit:
    """Least-squares line fit with the coefficient of determination."""
    if len(points) < 2:
        raise ConfigurationError(
            f"need at least two points to fit a line, got {len(points)}"
        )
    xs = np.array([x for x, _ in points], dtype=float)
    ys = np.array([y for _, y in points], dtype=float)
    if np.allclose(xs, xs[0]):
        raise ConfigurationError("all x values identical; cannot fit")
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = slope * xs + intercept
    residual = float(np.sum((ys - predicted) ** 2))
    total = float(np.sum((ys - np.mean(ys)) ** 2))
    r_squared = 1.0 if total == 0.0 else 1.0 - residual / total
    return LinearFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r_squared,
        n_points=len(points),
    )


def relative_error(measured: float, predicted: float) -> float:
    """|measured - predicted| / |predicted| (0 when both are 0)."""
    if predicted == 0.0:
        return 0.0 if measured == 0.0 else float("inf")
    return abs(measured - predicted) / abs(predicted)


def max_relative_error(
    measured: Sequence[tuple[float, float]],
    predicted: Sequence[tuple[float, float]],
) -> float:
    """Worst pointwise relative error between two aligned series."""
    lookup = dict(predicted)
    worst = 0.0
    for x, y in measured:
        if x not in lookup:
            raise ConfigurationError(
                f"no predicted value at x={x}"
            )
        worst = max(worst, relative_error(y, lookup[x]))
    return worst
