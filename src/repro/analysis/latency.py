"""Per-reference latency of the protocols (extension exhibit).

The paper evaluates traffic; with the store-and-forward timing model of
:mod:`repro.sim.timing` the same machinery yields a latency view.  For
each memory reference, the protocol messages it triggers form a chain
(request, forward, reply, update ... -- each is caused by the previous),
so the reference's latency is the sum of the per-message completion times
on an otherwise idle network.  This is a *zero-contention* latency --
a lower bound that already separates the protocols sharply:

* a read hit costs 0 cycles;
* a global-read remote read costs two traversals of small messages;
* a distributed write costs one multicast tree;
* a write-once shared write costs a write-through plus an invalidation
  multicast plus, later, block reloads.

:func:`trace_latency` runs a trace with message logging enabled and
aggregates these per-reference latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.protocol.base import CoherenceProtocol
from repro.sim.system import System, SystemConfig
from repro.sim.timing import makespan
from repro.types import Reference


@dataclass(frozen=True)
class LatencyReport:
    """Per-reference latency statistics for one protocol run."""

    protocol_name: str
    n_references: int
    total_cycles: int
    max_cycles: int
    zero_latency_references: int

    @property
    def mean_cycles(self) -> float:
        if self.n_references == 0:
            return 0.0
        return self.total_cycles / self.n_references

    @property
    def hit_fraction(self) -> float:
        """References completing without any network message."""
        if self.n_references == 0:
            return 0.0
        return self.zero_latency_references / self.n_references


def reference_latency(messages) -> int:
    """Cycles for one reference's message chain (messages serialise)."""
    return sum(makespan([message.loads]) for message in messages)


def trace_latency(
    protocol: CoherenceProtocol,
    trace: Sequence[Reference],
) -> LatencyReport:
    """Run ``trace`` and measure the latency of every reference.

    The protocol's message log is enabled (and truncated per reference);
    values are not verified here -- run the verifying engine separately
    for that.
    """
    protocol.enable_message_log()
    total = 0
    worst = 0
    zero = 0
    for ref in trace:
        protocol.message_log.clear()
        if ref.is_write:
            protocol.write(ref.node, ref.address, ref.value)
        else:
            protocol.read(ref.node, ref.address)
        cycles = reference_latency(protocol.message_log)
        total += cycles
        worst = max(worst, cycles)
        if cycles == 0:
            zero += 1
    return LatencyReport(
        protocol_name=protocol.name,
        n_references=len(trace),
        total_cycles=total,
        max_cycles=worst,
        zero_latency_references=zero,
    )


def latency_comparison(
    trace: Sequence[Reference],
    config: SystemConfig,
    factories: Mapping[str, Callable[[System], CoherenceProtocol]],
) -> dict[str, LatencyReport]:
    """Latency reports for several protocols over the same trace."""
    return {
        name: trace_latency(factory(System(config)), trace)
        for name, factory in factories.items()
    }
