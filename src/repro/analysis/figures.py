"""Data builders for every table and figure of the paper's evaluation.

Each ``*_data`` function regenerates one exhibit from the library's cost
models and returns plain data plus, where the paper printed concrete
numbers, the published values for side-by-side comparison
(:class:`TableComparison`).  EXPERIMENTS.md is generated from these.

The paper's tabulated break-even values are *not* all consistent with its
own closed forms (see DESIGN.md §4); the comparisons therefore report both
exact agreement and the qualitative trends the paper proves from eqs. 4
and 7 (break-even falls with ``M``, rises with ``N``; the scheme choice
moves 1 -> 2 -> 3 as ``n`` grows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.report import render_table
from repro.memory.sizing import state_memory_comparison
from repro.network import breakeven, cost
from repro.protocol import costs as pcosts
from repro.types import ilog2


@dataclass(frozen=True)
class TableComparison:
    """One paper table next to our regenerated values."""

    title: str
    row_label: str
    column_label: str
    rows: tuple[int, ...]
    columns: tuple[int, ...]
    paper: Mapping[tuple[int, int], int]
    ours: Mapping[tuple[int, int], int]

    def agreement(self) -> float:
        """Fraction of cells where our value equals the paper's."""
        cells = [(r, c) for r in self.rows for c in self.columns]
        matches = sum(
            1 for cell in cells if self.paper[cell] == self.ours[cell]
        )
        return matches / len(cells)

    def render(self) -> str:
        """Text table with ``ours (paper)`` cells; ``*`` marks mismatches."""
        headers = [f"{self.row_label}\\{self.column_label}"] + [
            str(column) for column in self.columns
        ]
        body = []
        for row in self.rows:
            cells: list[object] = [row]
            for column in self.columns:
                ours = self.ours[(row, column)]
                paper = self.paper[(row, column)]
                marker = "" if ours == paper else "*"
                cells.append(f"{ours} ({paper}){marker}")
            body.append(cells)
        return render_table(
            headers,
            body,
            title=f"{self.title} -- ours (paper), * = mismatch, "
            f"agreement {self.agreement():.0%}",
        )


def _powers_of_two(limit: int, start: int = 1) -> tuple[int, ...]:
    values = []
    value = start
    while value <= limit:
        values.append(value)
        value *= 2
    return tuple(values)


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------


def fig5_data(
    network_size: int = 1024,
    message_bits: int = 20,
    ns: Sequence[int] | None = None,
) -> dict[str, list[tuple[int, int]]]:
    """Figure 5: CC vs ``n`` for scheme 1 and scheme 2 (worst case)."""
    if ns is None:
        ns = _powers_of_two(network_size)
    return {
        "scheme 1 (eq. 2)": [
            (n, cost.cc1(n, network_size, message_bits)) for n in ns
        ],
        "scheme 2 worst (eq. 3)": [
            (n, cost.cc2_worst(n, network_size, message_bits)) for n in ns
        ],
    }


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------

#: Break-even values printed in the paper's Table 2, keyed ``(N, M)``.
PAPER_TABLE2: dict[tuple[int, int], int] = {
    (64, 0): 16, (64, 40): 1, (64, 100): 1,
    (128, 0): 32, (128, 40): 4, (128, 100): 1,
    (256, 0): 32, (256, 40): 8, (256, 100): 4,
    (512, 0): 64, (512, 40): 16, (512, 100): 8,
    (1024, 0): 128, (1024, 40): 32, (1024, 100): 16,
}

TABLE2_NETWORK_SIZES = (64, 128, 256, 512, 1024)
TABLE2_MESSAGE_SIZES = (0, 40, 100)


def table2_data() -> TableComparison:
    """Table 2: break-even ``n`` between schemes 1 and 2 per ``(N, M)``.

    Our break-even is the smallest power-of-two ``n`` at which scheme 2's
    worst case is strictly cheaper than scheme 1 (the decision a hardware
    selector faces); the paper's definition is not stated and several of
    its cells disagree with its own eqs. 2/3 under any definition we tried
    (see DESIGN.md).  The monotone trends hold in both columns and rows.
    """
    ours = {}
    for network_size in TABLE2_NETWORK_SIZES:
        for message_bits in TABLE2_MESSAGE_SIZES:
            point = breakeven.breakeven_scheme2_vs_scheme1(
                network_size, message_bits
            )
            # A never-winning scheme 2 would be reported as N itself.
            ours[(network_size, message_bits)] = (
                point.first_winning_n
                if point.first_winning_n is not None
                else network_size
            )
    return TableComparison(
        title="Table 2: break-even n, scheme 2 vs scheme 1",
        row_label="N",
        column_label="M",
        rows=TABLE2_NETWORK_SIZES,
        columns=TABLE2_MESSAGE_SIZES,
        paper=PAPER_TABLE2,
        ours=ours,
    )


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------


def fig6_data(
    network_size: int = 1024,
    n_partition: int = 128,
    message_bits: int = 20,
    ns: Sequence[int] | None = None,
) -> dict[str, list[tuple[int, int]]]:
    """Figure 6: CC vs ``n`` for schemes 1, 2' and 3.

    Scheme 3 addresses the whole ``n1`` partition, so its cost is flat
    in ``n`` -- the horizontal line the paper plots.
    """
    if ns is None:
        ns = _powers_of_two(n_partition)
    scheme3 = cost.cc3(n_partition, network_size, message_bits)
    return {
        "scheme 1 (eq. 2)": [
            (n, cost.cc1(n, network_size, message_bits)) for n in ns
        ],
        "scheme 2' (eq. 6)": [
            (n, cost.cc2_prime(n, n_partition, network_size, message_bits))
            for n in ns
        ],
        "scheme 3 (eq. 5)": [(n, scheme3) for n in ns],
    }


# ----------------------------------------------------------------------
# Tables 3 and 4
# ----------------------------------------------------------------------

#: Cheapest scheme printed in the paper's Table 3, keyed ``(M, n)``.
PAPER_TABLE3: dict[tuple[int, int], int] = {
    (0, 4): 1, (0, 8): 1, (0, 16): 3, (0, 64): 3, (0, 128): 3,
    (20, 4): 1, (20, 8): 1, (20, 16): 2, (20, 64): 2, (20, 128): 3,
    (40, 4): 1, (40, 8): 2, (40, 16): 2, (40, 64): 2, (40, 128): 3,
    (60, 4): 1, (60, 8): 2, (60, 16): 2, (60, 64): 2, (60, 128): 3,
}

TABLE3_MESSAGE_SIZES = (0, 20, 40, 60)
TABLE3_NS = (4, 8, 16, 64, 128)

#: Cheapest scheme printed in the paper's Table 4, keyed ``(N, n)``.
PAPER_TABLE4: dict[tuple[int, int], int] = {
    (256, 8): 2, (256, 16): 2, (256, 32): 2, (256, 64): 2, (256, 128): 3,
    (512, 8): 2, (512, 16): 2, (512, 32): 2, (512, 64): 2, (512, 128): 3,
    (1024, 8): 1, (1024, 16): 2, (1024, 32): 2, (1024, 64): 2,
    (1024, 128): 3,
    (2048, 8): 1, (2048, 16): 1, (2048, 32): 3, (2048, 64): 3,
    (2048, 128): 3,
}

TABLE4_NETWORK_SIZES = (256, 512, 1024, 2048)
TABLE4_NS = (8, 16, 32, 64, 128)


def table3_data(
    network_size: int = 1024, n_partition: int = 128
) -> TableComparison:
    """Table 3: cheapest scheme per ``(M, n)`` for N=1024, n1=128."""
    ours = {
        (message_bits, n): cost.cheapest_scheme(
            n, n_partition, network_size, message_bits
        )
        for message_bits in TABLE3_MESSAGE_SIZES
        for n in TABLE3_NS
    }
    return TableComparison(
        title="Table 3: cheapest scheme (N=1024, n1=128)",
        row_label="M",
        column_label="n",
        rows=TABLE3_MESSAGE_SIZES,
        columns=TABLE3_NS,
        paper=PAPER_TABLE3,
        ours=ours,
    )


def table4_data(
    message_bits: int = 20, n_partition: int = 128
) -> TableComparison:
    """Table 4: cheapest scheme per ``(N, n)`` for M=20, n1=128."""
    ours = {
        (network_size, n): cost.cheapest_scheme(
            n, n_partition, network_size, message_bits
        )
        for network_size in TABLE4_NETWORK_SIZES
        for n in TABLE4_NS
    }
    return TableComparison(
        title="Table 4: cheapest scheme (M=20, n1=128)",
        row_label="N",
        column_label="n",
        rows=TABLE4_NETWORK_SIZES,
        columns=TABLE4_NS,
        paper=PAPER_TABLE4,
        ours=ours,
    )


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------


def fig8_data(
    n_values: Sequence[int] = (4, 16, 64),
    steps: int = 40,
) -> dict[str, list[tuple[float, float]]]:
    """Figure 8: normalized CC per reference vs write fraction ``w``.

    The bold reference line (no cache), the dashed write-once curves and
    the solid two-mode curves, one of each per sharer count ``n``.
    """
    grid = [step / steps for step in range(steps + 1)]
    series: dict[str, list[tuple[float, float]]] = {
        "no cache": [(w, pcosts.normalized_no_cache(w)) for w in grid],
    }
    for n in n_values:
        series[f"write-once n={n}"] = [
            (w, pcosts.normalized_write_once(w, n)) for w in grid
        ]
        series[f"two-mode n={n}"] = [
            (w, pcosts.normalized_two_mode(w, n)) for w in grid
        ]
    return series


# ----------------------------------------------------------------------
# Extension: the §1 state-memory argument, tabulated
# ----------------------------------------------------------------------


def state_memory_table(
    network_sizes: Sequence[int] = (64, 256, 1024),
    memory_blocks: int = 1 << 20,
    cache_entries: int = 1 << 12,
) -> list[tuple[int, int, int, float]]:
    """Rows ``(N, full-map bits, proposed bits, ratio)``.

    Makes the ``O(N M)`` vs ``O(C (N + log N) + M log N)`` comparison of
    §1 concrete for a 1M-block main memory and 4K-entry caches.
    """
    rows = []
    for network_size in network_sizes:
        comparison = state_memory_comparison(
            network_size, memory_blocks, cache_entries
        )
        rows.append(
            (
                network_size,
                comparison.full_map_bits,
                comparison.stenstrom_bits,
                comparison.ratio,
            )
        )
    return rows


def threshold_table(
    n_values: Sequence[int] = (2, 4, 8, 16, 64, 128),
) -> list[tuple[int, float, float]]:
    """Rows ``(n, w1, two-mode peak)`` -- the §4 threshold landscape."""
    return [
        (
            n,
            2.0 / (n + 2),
            pcosts.two_mode_peak(n),
        )
        for n in n_values
    ]


def fig5_breakeven_note(
    network_size: int = 1024, message_bits: int = 20
) -> str:
    """The crossover Figure 5 visualises, as a sentence."""
    point = breakeven.breakeven_scheme2_vs_scheme1(
        network_size, message_bits
    )
    crossover = (
        f"{point.crossover:.1f}" if point.crossover is not None else "none"
    )
    return (
        f"N={network_size} (m={ilog2(network_size)}), M={message_bits}: "
        f"scheme 2 first beats scheme 1 at n={point.first_winning_n} "
        f"(continuous crossover at n~{crossover})"
    )
