"""Structured parameter sweeps over the trace-driven simulator.

A sweep runs one workload template across a grid of parameters and
protocols and returns flat records -- the long-form data the benchmark
exhibits and any external analysis (numpy/pandas) can consume directly.

The central experiment built on it, :func:`sharer_sweep`, measures the
§4 quantities empirically: cost per reference as the number of sharers
``n`` grows, at fixed write fraction.  Eq. 10 says write-once grows like
``w(1-w)(n+2)``; eq. 11/12 say the two-mode protocol is bounded by
``min(wn, 2(1-w))`` -- so as ``n`` grows at fixed ``w`` the two-mode curve
must flatten at the global-read ceiling while write-once keeps climbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.protocol.base import CoherenceProtocol
from repro.protocol.messages import MessageCosts
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.markov import markov_block_trace


@dataclass(frozen=True)
class SweepRecord:
    """One (parameter point, protocol) measurement."""

    protocol: str
    parameters: tuple[tuple[str, object], ...]
    cost_per_reference: float
    total_bits: int
    events: tuple[tuple[str, int], ...]

    def parameter(self, name: str) -> object:
        for key, value in self.parameters:
            if key == name:
                return value
        raise KeyError(name)


def run_sweep(
    points: Sequence[Mapping[str, object]],
    trace_for: Callable[[Mapping[str, object]], object],
    config_for: Callable[[Mapping[str, object]], SystemConfig],
    factories: Mapping[str, Callable[[System], CoherenceProtocol]],
    *,
    verify: bool = False,
) -> list[SweepRecord]:
    """Run every protocol at every parameter point.

    ``trace_for`` and ``config_for`` build the workload and machine for a
    point; verification is off by default (sweeps are bulk measurement --
    the correctness suite verifies the same machinery separately).
    """
    records = []
    for point in points:
        trace = trace_for(point)
        config = config_for(point)
        for name, factory in factories.items():
            protocol = factory(System(config))
            report = run_trace(
                protocol,
                trace,
                verify=verify,
                check_invariants_every=0 if not verify else None,
            )
            records.append(
                SweepRecord(
                    protocol=name,
                    parameters=tuple(sorted(point.items())),
                    cost_per_reference=report.cost_per_reference,
                    total_bits=report.network_total_bits,
                    events=tuple(sorted(report.stats.events.items())),
                )
            )
    return records


def sharer_sweep(
    sharer_counts: Sequence[int],
    write_fraction: float,
    factories: Mapping[str, Callable[[System], CoherenceProtocol]],
    *,
    n_nodes: int = 64,
    references: int = 2500,
    message_bits: int = 20,
    seed: int = 0,
) -> list[SweepRecord]:
    """Measured cost per reference vs the number of sharers ``n``."""
    for n in sharer_counts:
        if not 1 <= n <= n_nodes:
            raise ConfigurationError(
                f"sharer count {n} outside 1..{n_nodes}"
            )

    def trace_for(point):
        return markov_block_trace(
            n_nodes,
            tasks=list(range(point["n_sharers"])),
            write_fraction=write_fraction,
            n_references=references,
            seed=seed,
        )

    def config_for(point):
        return SystemConfig(
            n_nodes=n_nodes, costs=MessageCosts.uniform(message_bits)
        )

    return run_sweep(
        [{"n_sharers": n} for n in sharer_counts],
        trace_for,
        config_for,
        factories,
    )


def series_by_protocol(
    records: Sequence[SweepRecord], parameter: str
) -> dict[str, list[tuple[object, float]]]:
    """Pivot sweep records into per-protocol ``(x, cost)`` series."""
    series: dict[str, list[tuple[object, float]]] = {}
    for record in records:
        series.setdefault(record.protocol, []).append(
            (record.parameter(parameter), record.cost_per_reference)
        )
    for points in series.values():
        points.sort()
    return series
