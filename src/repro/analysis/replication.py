"""Replication across seeds with confidence intervals.

Single-seed measurements of a stochastic workload are point samples; a
reproduction worth trusting states its uncertainty.  :func:`replicate`
runs any seed-parameterised measurement over several seeds and returns
the mean with a Student-t confidence interval (scipy);
:func:`replicated_cost` packages the common case -- cost per reference of
a protocol on a seeded workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from scipy import stats as scipy_stats

from repro.errors import ConfigurationError
from repro.protocol.base import CoherenceProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig


@dataclass(frozen=True)
class ReplicatedMeasurement:
    """Mean and t-based confidence interval over seed replicates."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    n_replicates: int
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def overlaps(self, other: "ReplicatedMeasurement") -> bool:
        """Whether the two intervals overlap (a quick significance read:
        non-overlap implies a significant difference at this level)."""
        return not (
            self.ci_high < other.ci_low or other.ci_high < self.ci_low
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.2f} ± {self.half_width:.2f} "
            f"({self.confidence:.0%} CI, n={self.n_replicates})"
        )


def replicate(
    measure: Callable[[int], float],
    seeds: Sequence[int],
    *,
    confidence: float = 0.95,
) -> ReplicatedMeasurement:
    """Run ``measure(seed)`` for every seed and summarise."""
    if len(seeds) < 2:
        raise ConfigurationError(
            f"need at least two seeds for an interval, got {len(seeds)}"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    values = [float(measure(seed)) for seed in seeds]
    n = len(values)
    mean = sum(values) / n
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    std = math.sqrt(variance)
    t_critical = float(scipy_stats.t.ppf((1 + confidence) / 2, df=n - 1))
    half = t_critical * std / math.sqrt(n)
    return ReplicatedMeasurement(
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        n_replicates=n,
        confidence=confidence,
    )


def replicated_cost(
    protocol_factory: Callable[[System], CoherenceProtocol],
    trace_factory: Callable[[int], object],
    config: SystemConfig,
    seeds: Sequence[int],
    *,
    confidence: float = 0.95,
) -> ReplicatedMeasurement:
    """Cost per reference, replicated over workload seeds."""

    def measure(seed: int) -> float:
        protocol = protocol_factory(System(config))
        report = run_trace(
            protocol,
            trace_factory(seed),
            verify=False,
            check_invariants_every=0,
        )
        return report.cost_per_reference

    return replicate(measure, seeds, confidence=confidence)
