"""The baseline network, and topology-generic multicast-tree costs.

§3 notes that "several topologies of multistage interconnection networks
have been proposed [Siegel]" and analyses the omega network as a
representative.  This module backs that choice up: it implements a second
classic topology -- the *baseline* network (Wu & Feng), where stage ``i``
inserts destination bit ``d_i`` at the top of the shrinking sub-block
address instead of the bottom -- and a multicast-tree cost function that
works for **any** destination-tag-routed MIN.

The punchline (asserted in the tests): the vector-routed multicast tree
has the same per-level branch counts on both topologies -- branch count at
level ``i`` is the number of distinct ``i``-bit destination prefixes, a
property of the destination set alone -- so scheme 2's communication cost
is *topology-invariant* across the omega/baseline family.  The paper's
eq. 3/eq. 6 analysis carries over unchanged.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.errors import ConfigurationError
from repro.types import NodeId, ilog2, is_power_of_two


class DestinationTagNetwork(Protocol):
    """What the generic cost function needs from a topology."""

    n_ports: int
    n_stages: int

    def route_positions(
        self, source: NodeId, dest: NodeId
    ) -> list[int]:  # pragma: no cover - protocol signature
        ...


class BaselineNetwork:
    """An ``N x N`` baseline network of ``2 x 2`` switches.

    Stage ``i`` pairs positions differing in their lowest unconsumed bit
    and routes on destination bit ``d_i``: the new position keeps the
    ``i`` already-fixed top bits, inserts ``d_i`` below them, and shifts
    the remaining source bits down -- the recursive block structure of
    the baseline topology.
    """

    def __init__(self, n_ports: int) -> None:
        if n_ports < 2 or not is_power_of_two(n_ports):
            raise ConfigurationError(
                f"a baseline network needs a power-of-two port count "
                f">= 2, got {n_ports}"
            )
        self.n_ports = n_ports
        self.n_stages = ilog2(n_ports)

    def route_positions(self, source: NodeId, dest: NodeId) -> list[int]:
        """Positions at link levels ``0 .. m`` (level m equals ``dest``)."""
        for port in (source, dest):
            if not 0 <= port < self.n_ports:
                raise ConfigurationError(
                    f"port {port} outside 0..{self.n_ports - 1}"
                )
        m = self.n_stages
        positions = [source]
        x = source
        for stage in range(m):
            fixed_bits = stage  # destination bits already placed on top
            low_width = m - fixed_bits
            low_mask = (1 << low_width) - 1
            top = x & ~low_mask
            low = x & low_mask
            d_bit = (dest >> (m - 1 - stage)) & 1
            x = top | (d_bit << (low_width - 1)) | (low >> 1)
            positions.append(x)
        return positions


def tree_multicast_cost(
    network: DestinationTagNetwork,
    source: NodeId,
    dests: Iterable[NodeId],
    payload_bits: int,
) -> int:
    """Scheme-2 cost on any destination-tag MIN.

    The multicast tree is the union of the unicast paths; each distinct
    link at level ``i`` carries the payload plus the ``N / 2**i``-bit
    subvector, exactly as in §3.2.  Computed from ``route_positions``
    alone, so it applies to the omega, baseline, or any topology with the
    destination-tag property.
    """
    if payload_bits < 0:
        raise ConfigurationError(
            f"payload must be non-negative, got {payload_bits}"
        )
    dest_set = frozenset(dests)
    if not dest_set:
        return 0
    levels: list[set[int]] = [
        set() for _ in range(network.n_stages + 1)
    ]
    for dest in dest_set:
        for level, position in enumerate(
            network.route_positions(source, dest)
        ):
            levels[level].add(position)
    total = 0
    for level, positions in enumerate(levels):
        vector_bits = network.n_ports >> level
        total += len(positions) * (payload_bits + vector_bits)
    return total
