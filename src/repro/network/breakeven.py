"""Break-even analysis between the multicast schemes (Tables 2-4).

The paper proves three qualitative facts from eq. 4 (and three more from
eq. 7) and tabulates break-even points.  This module computes those points
from the cost functions of :mod:`repro.network.cost`:

* :func:`breakeven_scheme2_vs_scheme1` -- the ``n`` above which the
  present-flag-vector scheme beats repeated unicast (Table 2);
* :func:`breakeven_scheme3_vs_scheme2` -- the ``n`` above which broadcast-bit
  subcube routing beats vector routing within a partition;
* :func:`scheme_choice_table` -- the cheapest scheme per cell (Tables 3, 4).

Two notions of break-even are reported because the paper restricts ``n`` to
powers of two while its proofs treat ``n`` as continuous:

* ``first_winning_n`` -- the smallest power-of-two ``n`` at which the second
  scheme is strictly cheaper (what a hardware mode selector would use);
* ``crossover`` -- the real-valued ``n`` where the two closed forms are
  equal, found by bisection on the formulas with ``log2 n`` real.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.network import cost
from repro.types import ilog2, is_power_of_two


@dataclass(frozen=True)
class BreakEven:
    """Break-even between two schemes for one parameter setting.

    ``first_winning_n`` is ``None`` when the challenger never wins at any
    power-of-two ``n`` in range; ``crossover`` is ``None`` when the cost
    difference never changes sign over the continuous range ``[1, limit]``.
    """

    network_size: int
    message_bits: int
    first_winning_n: int | None
    crossover: float | None


def _first_winning_power(
    challenger: Callable[[int], int],
    incumbent: Callable[[int], int],
    limit: int,
) -> int | None:
    """Smallest power-of-two ``n <= limit`` where challenger < incumbent."""
    n = 1
    while n <= limit:
        if challenger(n) < incumbent(n):
            return n
        n *= 2
    return None


def _crossover(
    difference: Callable[[float], float], limit: float
) -> float | None:
    """Real ``n`` in ``[1, limit]`` where ``difference`` changes sign."""
    lo, f_lo = 1.0, difference(1.0)
    if f_lo == 0.0:
        return lo
    # Bracket the sign change by scanning octaves, then bisect.
    hi = 2.0
    while hi <= limit:
        f_hi = difference(hi)
        if f_lo * f_hi <= 0.0:
            break
        lo, f_lo = hi, f_hi
        hi *= 2.0
    else:
        return None
    hi = min(hi, limit)
    for _ in range(80):
        mid = (lo + hi) / 2.0
        f_mid = difference(mid)
        if f_mid == 0.0:
            return mid
        if f_lo * f_mid < 0.0:
            hi = mid
        else:
            lo, f_lo = mid, f_mid
    return (lo + hi) / 2.0


# ----------------------------------------------------------------------
# Real-valued extensions of the closed forms (n continuous)
# ----------------------------------------------------------------------


def cc1_real(n: float, network_size: int, message_bits: int) -> float:
    """Eq. 2 with ``n`` real."""
    m = ilog2(network_size)
    return n * (m + 1) * (2 * message_bits + m) / 2.0


def cc2_worst_real(n: float, network_size: int, message_bits: int) -> float:
    """Eq. 3 with ``n`` (hence ``log n``) real."""
    m = ilog2(network_size)
    k = math.log2(n)
    big_m = message_bits
    return (
        n * (big_m * m - big_m * k + 2 * big_m - 1)
        + network_size * (k + 2)
        - big_m
    )


def cc2_prime_real(
    n: float, n1: int, network_size: int, message_bits: int
) -> float:
    """Eq. 6 with ``n`` real."""
    m = ilog2(network_size)
    l = ilog2(n1)
    k = math.log2(n)
    big_m = message_bits
    return (
        n * (big_m * l - big_m * k + 2 * big_m - 1)
        + n1 * k
        + big_m * (m - l - 1)
        + 2 * network_size
    )


# ----------------------------------------------------------------------
# Break-even points
# ----------------------------------------------------------------------


def breakeven_scheme2_vs_scheme1(
    network_size: int, message_bits: int
) -> BreakEven:
    """Where scheme 2 (worst case) starts beating scheme 1 (Table 2)."""
    if not is_power_of_two(network_size) or network_size < 4:
        raise ConfigurationError(
            f"Table 2 analysis needs N a power of two >= 4, "
            f"got {network_size}"
        )
    first = _first_winning_power(
        lambda n: cost.cc2_worst(n, network_size, message_bits),
        lambda n: cost.cc1(n, network_size, message_bits),
        network_size,
    )
    crossover = _crossover(
        lambda n: cc2_worst_real(n, network_size, message_bits)
        - cc1_real(n, network_size, message_bits),
        float(network_size),
    )
    return BreakEven(network_size, message_bits, first, crossover)


def breakeven_scheme3_vs_scheme2(
    n1: int, network_size: int, message_bits: int
) -> BreakEven:
    """Where scheme 3 starts beating scheme 2' within an ``n1`` block."""
    first = _first_winning_power(
        lambda n: cost.cc3(n1, network_size, message_bits),
        lambda n: cost.cc2_prime(n, n1, network_size, message_bits),
        n1,
    )
    crossover = _crossover(
        lambda n: cost.cc3(n1, network_size, message_bits)
        - cc2_prime_real(n, n1, network_size, message_bits),
        float(n1),
    )
    return BreakEven(network_size, message_bits, first, crossover)


# ----------------------------------------------------------------------
# Table generators
# ----------------------------------------------------------------------


def table2(
    network_sizes: Sequence[int], message_sizes: Sequence[int]
) -> dict[tuple[int, int], int | None]:
    """Break-even between schemes 1 and 2, per ``(N, M)`` (Table 2)."""
    return {
        (big_n, big_m): breakeven_scheme2_vs_scheme1(
            big_n, big_m
        ).first_winning_n
        for big_n in network_sizes
        for big_m in message_sizes
    }


def scheme_choice_table(
    ns: Sequence[int],
    *,
    network_sizes: Sequence[int] | None = None,
    message_sizes: Sequence[int] | None = None,
    network_size: int = 1024,
    message_bits: int = 20,
    n1: int = 128,
) -> dict[tuple[int, int], int]:
    """Cheapest scheme per cell for Tables 3 and 4.

    Pass ``message_sizes`` to sweep ``M`` at fixed ``N`` (Table 3's layout)
    or ``network_sizes`` to sweep ``N`` at fixed ``M`` (Table 4's layout);
    exactly one of the two must be given.  Keys are ``(row_value, n)``.
    """
    if (network_sizes is None) == (message_sizes is None):
        raise ConfigurationError(
            "pass exactly one of network_sizes / message_sizes"
        )
    table: dict[tuple[int, int], int] = {}
    if message_sizes is not None:
        for big_m in message_sizes:
            for n in ns:
                table[(big_m, n)] = cost.cheapest_scheme(
                    n, n1, network_size, big_m
                )
    else:
        assert network_sizes is not None
        for big_n in network_sizes:
            for n in ns:
                table[(big_n, n)] = cost.cheapest_scheme(
                    n, n1, big_n, message_bits
                )
    return table
