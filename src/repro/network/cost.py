"""Closed-form communication costs for the multicast schemes (eqs. 2-8).

Every closed form from §3 of the paper is implemented twice:

* the *reduced* algebraic expression exactly as printed in the paper
  (:func:`cc1`, :func:`cc2_worst`, :func:`cc3`, :func:`cc2_prime`), and
* an independent *direct* per-stage summation of the cost tables the paper
  derives them from (:func:`cc1_direct`, :func:`cc2_worst_direct`,
  :func:`cc3_direct`, :func:`cc2_prime_direct`).

The test suite checks ``closed form == direct sum`` across the full parameter
space and also checks both against the switch-level simulator of
:mod:`repro.network.multicast` on placements that realise the analysed cases,
so the three layers (paper algebra, cost tables, simulated fabric) vouch for
each other.

Throughout, following the paper's notation:

* ``N`` -- number of caches (network ports), a power of two; ``m = log2 N``;
* ``n`` -- number of destinations of the multicast, a power of two
  (``n = 2**k``);
* ``n1`` -- size of the block of adjacently-placed tasks (``n1 = 2**l``);
* ``M`` -- message (payload) size in bits.

All functions return exact integers.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.types import ilog2, is_power_of_two


def _check(name: str, value: int, *, minimum: int = 1) -> int:
    """Validate a power-of-two parameter and return its exact log2."""
    if value < minimum or not is_power_of_two(value):
        raise ConfigurationError(
            f"{name} must be a power of two >= {minimum}, got {value}"
        )
    return ilog2(value)


def _check_message(message_bits: int) -> None:
    if message_bits < 0:
        raise ConfigurationError(
            f"message size must be non-negative, got {message_bits}"
        )


# ----------------------------------------------------------------------
# Scheme 1 (eq. 2)
# ----------------------------------------------------------------------


def cc1(n: int, network_size: int, message_bits: int) -> int:
    """Eq. 2: ``CC1 = n (log N + 1)(2M + log N) / 2``.

    Scheme 1 sends one destination-tag unicast per destination; the tag
    loses one bit per stage, so a single unicast costs
    ``sum_{i=0}^{m} (M + m - i)``.
    """
    m = _check("network_size", network_size, minimum=2)
    k = _check("n", n)
    _check_message(message_bits)
    if k > m:
        raise ConfigurationError(
            f"cannot multicast to {n} destinations in a {network_size}-port "
            f"network"
        )
    return n * (m + 1) * (2 * message_bits + m) // 2


def cc1_direct(n: int, network_size: int, message_bits: int) -> int:
    """Per-stage summation behind eq. 2 (independent of the reduction)."""
    m = _check("network_size", network_size, minimum=2)
    _check("n", n)
    _check_message(message_bits)
    per_path = sum(message_bits + (m - i) for i in range(m + 1))
    return n * per_path


# ----------------------------------------------------------------------
# Scheme 2, arbitrary placement, worst case (eq. 3)
# ----------------------------------------------------------------------


def cc2_worst(n: int, network_size: int, message_bits: int) -> int:
    """Eq. 3: worst-case cost of present-flag-vector routing.

    ``CC2 = n (M log N - M log n + 2M - 1) + N (log n + 2) - M``.
    The worst case branches to both switch outputs at each of the first
    ``k + 1`` stages (destinations maximally spread).
    """
    m = _check("network_size", network_size, minimum=2)
    k = _check("n", n)
    _check_message(message_bits)
    if k > m:
        raise ConfigurationError(
            f"cannot multicast to {n} destinations in a {network_size}-port "
            f"network"
        )
    big_m = message_bits
    return (
        n * (big_m * m - big_m * k + 2 * big_m - 1)
        + network_size * (k + 2)
        - big_m
    )


def cc2_worst_direct(n: int, network_size: int, message_bits: int) -> int:
    """Per-stage summation behind eq. 3.

    Link level ``i`` carries the payload plus the ``N / 2**i``-bit
    subvector; the branch count doubles through level ``k`` and stays at
    ``n = 2**k`` afterwards.
    """
    m = _check("network_size", network_size, minimum=2)
    k = _check("n", n)
    _check_message(message_bits)
    big_n, big_m = network_size, message_bits
    total = 0
    for i in range(k + 1):
        total += (1 << i) * (big_m + (big_n >> i))
    for i in range(k + 1, m + 1):
        total += (1 << k) * (big_m + (big_n >> i))
    return total


def cc2_minus_cc1(n: int, network_size: int, message_bits: int) -> int:
    """Eq. 4 exactly as printed: ``CC2 - CC1``.

    ``n (M (1 - log n) - log N (1 + log N)/2 - 1) + N (log n + 2) - M``.
    Provided separately so the paper's difference expression can be verified
    against the two cost functions it was reduced from.
    """
    m = _check("network_size", network_size, minimum=2)
    k = _check("n", n)
    _check_message(message_bits)
    big_m = message_bits
    return (
        n * (big_m * (1 - k) - m * (1 + m) // 2 - 1)
        + network_size * (k + 2)
        - big_m
    )


# ----------------------------------------------------------------------
# Scheme 3, adjacent subcube (eq. 5)
# ----------------------------------------------------------------------


def cc3(n1: int, network_size: int, message_bits: int) -> int:
    """Eq. 5: cost of broadcast-bit routing to ``n1 = 2**l`` neighbours.

    ``CC3 = n1 (2M + 4) - log n1 (log n1 + M + 3)
    + log N (log N + M + 1) - M - 4``.
    """
    m = _check("network_size", network_size, minimum=2)
    l = _check("n1", n1)
    _check_message(message_bits)
    if l > m:
        raise ConfigurationError(
            f"cannot multicast to {n1} destinations in a {network_size}-port "
            f"network"
        )
    big_m = message_bits
    return (
        n1 * (2 * big_m + 4)
        - l * (l + big_m + 3)
        + m * (m + big_m + 1)
        - big_m
        - 4
    )


def cc3_direct(n1: int, network_size: int, message_bits: int) -> int:
    """Per-stage summation behind eq. 5.

    The ``2m``-bit tag loses two bits per stage; the path is a single branch
    for the first ``m - l`` stages, then doubles at each of the last ``l``.
    """
    m = _check("network_size", network_size, minimum=2)
    l = _check("n1", n1)
    _check_message(message_bits)
    big_m = message_bits
    total = 0
    for i in range(m - l + 1):
        total += big_m + 2 * (m - i)
    for j in range(1, l + 1):
        total += (1 << j) * (big_m + 2 * (l - j))
    return total


# ----------------------------------------------------------------------
# Scheme 2 within an n1-sized partition, worst case (eq. 6)
# ----------------------------------------------------------------------


def cc2_prime(
    n: int, n1: int, network_size: int, message_bits: int
) -> int:
    """Eq. 6: scheme-2 worst case when destinations lie in one ``n1`` block.

    ``CC2' = n (M log n1 - M log n + 2M - 1) + n1 log n
    + M (log N - log n1 - 1) + 2N``.
    """
    m = _check("network_size", network_size, minimum=2)
    l = _check("n1", n1)
    k = _check("n", n)
    _check_message(message_bits)
    if k > l or l > m:
        raise ConfigurationError(
            f"need n <= n1 <= N, got n={n}, n1={n1}, N={network_size}"
        )
    big_m = message_bits
    return (
        n * (big_m * l - big_m * k + 2 * big_m - 1)
        + n1 * k
        + big_m * (m - l - 1)
        + 2 * network_size
    )


def cc2_prime_direct(
    n: int, n1: int, network_size: int, message_bits: int
) -> int:
    """Per-stage summation behind eq. 6."""
    m = _check("network_size", network_size, minimum=2)
    l = _check("n1", n1)
    k = _check("n", n)
    _check_message(message_bits)
    big_n, big_m = network_size, message_bits
    total = 0
    for i in range(m - l):
        total += big_m + (big_n >> i)
    for i in range(m - l, m - l + k + 1):
        total += (1 << (i - (m - l))) * (big_m + (big_n >> i))
    for i in range(m - l + k + 1, m + 1):
        total += (1 << k) * (big_m + (big_n >> i))
    return total


def cc3_minus_cc2_prime(
    n: int, n1: int, network_size: int, message_bits: int
) -> int:
    """Eq. 7 exactly as printed: ``CC3 - CC2'``."""
    m = _check("network_size", network_size, minimum=2)
    l = _check("n1", n1)
    k = _check("n", n)
    _check_message(message_bits)
    big_m = message_bits
    return (
        big_m * (2 * (n1 - n) + n * (k - l))
        + n1 * (4 - k)
        - l * (l + 3)
        + m * (m + 1)
        + n
        - 2 * network_size
        - 4
    )


# ----------------------------------------------------------------------
# Combined scheme (eq. 8)
# ----------------------------------------------------------------------


def cc_combined(
    n: int, n1: int, network_size: int, message_bits: int
) -> int:
    """Eq. 8: ``CC4 = min(CC1, CC2', CC3)``.

    The cost of multicasting to ``n`` of ``n1`` adjacently placed tasks when
    the sender picks the cheapest applicable scheme (scheme 3 addresses the
    whole ``n1`` block).
    """
    return min(
        cc1(n, network_size, message_bits),
        cc2_prime(n, n1, network_size, message_bits),
        cc3(n1, network_size, message_bits),
    )


def cheapest_scheme(
    n: int, n1: int, network_size: int, message_bits: int
) -> int:
    """Which scheme (1, 2 or 3) achieves eq. 8's minimum.

    Ties break toward the lower scheme number, matching the paper's tables
    which report a single winner per cell.
    """
    costs = {
        1: cc1(n, network_size, message_bits),
        2: cc2_prime(n, n1, network_size, message_bits),
        3: cc3(n1, network_size, message_bits),
    }
    return min(costs, key=lambda scheme: (costs[scheme], scheme))


# ----------------------------------------------------------------------
# Placements realising the analysed cases
# ----------------------------------------------------------------------


def worst_case_placement(network_size: int, n: int) -> tuple[int, ...]:
    """``n`` destinations maximally spread (realises eq. 3's worst case).

    The top ``log2 n`` address bits enumerate all values, so the scheme-2
    tree branches at every one of the first ``k + 1`` stages.
    """
    m = _check("network_size", network_size, minimum=2)
    k = _check("n", n)
    if k > m:
        raise ConfigurationError(f"n={n} exceeds network size {network_size}")
    return tuple(j << (m - k) for j in range(n))


def adjacent_placement(
    network_size: int, n: int, base: int = 0
) -> tuple[int, ...]:
    """``n`` adjacent, aligned destinations starting at ``base``.

    Realises eq. 5 (and scheme 2's best case).  ``base`` must be a multiple
    of ``n`` so the block is a subcube.
    """
    _check("network_size", network_size, minimum=2)
    _check("n", n)
    if base % n != 0 or base + n > network_size:
        raise ConfigurationError(
            f"base {base} must be an in-range multiple of n={n}"
        )
    return tuple(range(base, base + n))


def spread_in_partition_placement(
    network_size: int, n: int, n1: int, base: int = 0
) -> tuple[int, ...]:
    """``n`` destinations maximally spread inside one aligned ``n1`` block.

    Realises eq. 6's worst case (scheme 2 restricted to ``n1`` adjacently
    placed tasks): stride ``n1 / n`` within ``[base, base + n1)``.
    """
    _check("network_size", network_size, minimum=2)
    k = _check("n", n)
    l = _check("n1", n1)
    if k > l:
        raise ConfigurationError(f"need n <= n1, got n={n}, n1={n1}")
    if base % n1 != 0 or base + n1 > network_size:
        raise ConfigurationError(
            f"base {base} must be an in-range multiple of n1={n1}"
        )
    stride = n1 // n
    return tuple(base + j * stride for j in range(n))
