"""Omega multistage interconnection network substrate.

This subpackage provides everything §3 of the paper needs:

* :mod:`repro.network.topology` -- the ``N x N`` omega network of ``2 x 2``
  switches with per-link and per-switch traffic counters;
* :mod:`repro.network.routing` -- Lawrie destination-tag unicast routing
  (the basis of multicast *scheme 1*);
* :mod:`repro.network.multicast` -- the three multicast schemes of the paper
  plus the combined scheme of eq. 8, simulated switch by switch;
* :mod:`repro.network.cost` -- the closed-form communication-cost formulas
  (eqs. 1-8) and independent per-stage summations used to cross-check them;
* :mod:`repro.network.breakeven` -- break-even analysis between the schemes
  (Tables 2, 3 and 4 of the paper);
* :mod:`repro.network.routeplan` -- memoised route plans: the
  switch-by-switch walk of any scheme is computed once per
  ``(scheme, source, destination set)`` and replayed bit-identically
  (see docs/PERF.md).
"""

from repro.network.baseline import BaselineNetwork, tree_multicast_cost
from repro.network.cost import (
    cc1,
    cc2_prime,
    cc2_worst,
    cc3,
    cc_combined,
)
from repro.network.link import Link
from repro.network.message import Message
from repro.network.multicast import (
    MulticastResult,
    MulticastScheme,
    Multicaster,
    multicast,
)
from repro.network.routeplan import RoutePlan, RoutePlanCache
from repro.network.routing import route_path, unicast
from repro.network.selector import (
    BreakEvenRegisters,
    RegisterMulticaster,
    compile_registers,
)
from repro.network.switch import Switch
from repro.network.topology import OmegaNetwork

__all__ = [
    "BaselineNetwork",
    "BreakEvenRegisters",
    "Link",
    "Message",
    "MulticastResult",
    "MulticastScheme",
    "Multicaster",
    "OmegaNetwork",
    "RegisterMulticaster",
    "RoutePlan",
    "RoutePlanCache",
    "Switch",
    "cc1",
    "cc2_prime",
    "cc2_worst",
    "cc3",
    "cc_combined",
    "compile_registers",
    "multicast",
    "route_path",
    "tree_multicast_cost",
    "unicast",
]
