"""Blocking and contention analysis for the omega network.

The paper's opening problem statement is *network traffic caused by several
processors accessing the global shared memory* (it cites the author's own
contention survey for the details).  The communication-cost metric of eq. 1
counts bits, not collisions -- but the same link-level model supports
asking the contention questions too, and they explain *why* reducing link
traffic (schemes 2/3, the two-mode protocol) matters on a blocking network:

* an omega network is **blocking**: two messages whose paths share a link
  cannot proceed simultaneously.  :func:`conflicting_pairs` finds exactly
  which source/destination pairs of a batch collide, and
  :func:`is_conflict_free` decides whether a permutation can be routed in
  one pass;
* :func:`passable_rounds` greedily schedules a batch into conflict-free
  rounds (a lower-is-better congestion measure);
* :func:`link_load_profile` turns accumulated per-link counters into a
  distribution summary, exposing hot spots such as the tree root of a
  scheme-1 multicast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.network.topology import OmegaNetwork
from repro.types import NodeId


Pair = tuple[NodeId, NodeId]


def path_links(
    network: OmegaNetwork, source: NodeId, dest: NodeId
) -> frozenset[tuple[int, int]]:
    """The ``(level, position)`` link keys of one path."""
    return frozenset(
        (level, position)
        for level, position in enumerate(
            network.route_positions(source, dest)
        )
    )


def conflicting_pairs(
    network: OmegaNetwork, pairs: Sequence[Pair]
) -> list[tuple[Pair, Pair]]:
    """All batch-internal collisions: pairs whose paths share a link.

    Sources must be distinct and destinations must be distinct (two
    messages from one port, or to one port, trivially collide at the
    endpoint link; the interesting question is interior blocking).
    """
    _check_batch(network, pairs)
    paths = [(pair, path_links(network, *pair)) for pair in pairs]
    collisions = []
    for index, (first_pair, first_path) in enumerate(paths):
        for second_pair, second_path in paths[index + 1 :]:
            if first_path & second_path:
                collisions.append((first_pair, second_pair))
    return collisions


def is_conflict_free(
    network: OmegaNetwork, pairs: Sequence[Pair]
) -> bool:
    """Whether the batch can be routed simultaneously (no shared link)."""
    return not conflicting_pairs(network, pairs)


def passable_rounds(
    network: OmegaNetwork, pairs: Sequence[Pair]
) -> list[list[Pair]]:
    """Greedy schedule of a batch into conflict-free rounds.

    Each round is a set of pairs whose paths are link-disjoint; every pair
    appears in exactly one round.  The round count is a simple congestion
    measure: 1 means the batch passes like a crossbar, larger values
    quantify the omega network's blocking.
    """
    _check_batch(network, pairs)
    remaining = [(pair, path_links(network, *pair)) for pair in pairs]
    rounds: list[list[Pair]] = []
    while remaining:
        used: set[tuple[int, int]] = set()
        this_round: list[Pair] = []
        deferred = []
        for pair, path in remaining:
            if path & used:
                deferred.append((pair, path))
            else:
                used |= path
                this_round.append(pair)
        rounds.append(this_round)
        remaining = deferred
    return rounds


def identity_is_passable(network: OmegaNetwork) -> bool:
    """The identity permutation routes in one pass on an omega network."""
    pairs = [(port, port) for port in range(network.n_ports)]
    return is_conflict_free(network, pairs)


@dataclass(frozen=True)
class LinkLoadProfile:
    """Distribution summary of per-link bit counters."""

    total_bits: int
    n_links: int
    busiest_bits: int
    busiest_link: tuple[int, int]
    mean_bits: float

    @property
    def imbalance(self) -> float:
        """Busiest-link load over mean load (1.0 = perfectly even)."""
        if self.mean_bits == 0:
            return 0.0
        return self.busiest_bits / self.mean_bits


def link_load_profile(network: OmegaNetwork) -> LinkLoadProfile:
    """Summarise the accumulated per-link traffic of a network."""
    bits = getattr(network, "_link_bits", None)
    if bits is not None:
        # Scan the flat counter buffer directly (slot = level * N + pos,
        # the same level-major order iter_links yields, so ties resolve
        # identically) instead of touching every Link view.
        n_links = len(bits)
        total = sum(bits)
        busiest_slot = max(range(n_links), key=bits.__getitem__)
        n_ports = network.n_ports
        return LinkLoadProfile(
            total_bits=total,
            n_links=n_links,
            busiest_bits=bits[busiest_slot],
            busiest_link=(busiest_slot // n_ports, busiest_slot % n_ports),
            mean_bits=total / n_links if n_links else 0.0,
        )
    links = list(network.iter_links())
    total = sum(link.bits for link in links)
    busiest = max(links, key=lambda link: link.bits)
    return LinkLoadProfile(
        total_bits=total,
        n_links=len(links),
        busiest_bits=busiest.bits,
        busiest_link=busiest.key,
        mean_bits=total / len(links) if links else 0.0,
    )


def _check_batch(network: OmegaNetwork, pairs: Sequence[Pair]) -> None:
    sources = [source for source, _ in pairs]
    dests = [dest for _, dest in pairs]
    for port in (*sources, *dests):
        if not 0 <= port < network.n_ports:
            raise ConfigurationError(
                f"port {port} outside 0..{network.n_ports - 1}"
            )
    if len(set(sources)) != len(sources):
        raise ConfigurationError(
            f"batch has duplicate sources: {sorted(sources)}"
        )
    if len(set(dests)) != len(dests):
        raise ConfigurationError(
            f"batch has duplicate destinations: {sorted(dests)}"
        )
