"""Network links and their traffic counters.

The paper's communication-cost metric (eq. 1) is *the amount of information
that has to pass each link, summed over all links*.  Links are therefore the
unit of accounting in the whole network model: every routing and multicast
function ultimately calls :meth:`Link.carry` with a bit count, and the
aggregate statistics of a simulation are sums over these counters.

For speed the counters themselves live in flat ``array('q')`` buffers --
either a pair owned by an :class:`~repro.network.topology.OmegaNetwork`
(every link of the network indexes one shared slot per array) or, for a
standalone ``Link(level, position)``, a private single-slot pair.  A
:class:`Link` is thus a *view*: reading ``link.bits`` or calling
``link.carry`` always observes the same storage that the network's bulk
accounting (:meth:`~repro.network.topology.OmegaNetwork.apply_plan_traffic`)
writes, so the object facade and the fast path can never disagree.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass


class Link:
    """One unidirectional link in the omega network.

    ``level`` identifies which gap between stages the link spans, following
    the paper's numbering: level ``0`` links connect the source endpoints to
    the first switch stage, level ``i`` (``1 <= i < m``) links connect switch
    stage ``i-1`` to switch stage ``i``, and level ``m`` links connect the
    last switch stage to the destination endpoints.  ``position`` is the
    index of the link within its level (``0 <= position < N``).

    ``counters`` and ``slot`` bind the link to shared ``(bits, messages)``
    arrays at a flat index; omitted, the link owns private counters.
    """

    __slots__ = ("level", "position", "_bits", "_messages", "_slot")

    def __init__(
        self,
        level: int,
        position: int,
        *,
        counters: tuple[array, array] | None = None,
        slot: int = 0,
    ) -> None:
        self.level = level
        self.position = position
        if counters is None:
            self._bits = array("q", (0,))
            self._messages = array("q", (0,))
            self._slot = 0
        else:
            self._bits, self._messages = counters
            self._slot = slot

    @property
    def bits(self) -> int:
        """Bits carried so far (this link's share of eq. 1)."""
        return self._bits[self._slot]

    @property
    def messages(self) -> int:
        """Messages that traversed this link so far."""
        return self._messages[self._slot]

    def carry(self, bits: int) -> None:
        """Account for one message of ``bits`` bits traversing this link."""
        if bits < 0:
            raise ValueError(f"cannot carry a negative bit count ({bits})")
        self._messages[self._slot] += 1
        self._bits[self._slot] += bits

    def reset(self) -> None:
        """Zero the traffic counters (used between experiment runs)."""
        self._messages[self._slot] = 0
        self._bits[self._slot] = 0

    @property
    def key(self) -> tuple[int, int]:
        """Hashable identity ``(level, position)`` of this link."""
        return (self.level, self.position)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Link):
            return NotImplemented
        return self.level == other.level and self.position == other.position

    # Mutable counter semantics, like the dataclass this class replaced.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Link(level={self.level}, position={self.position}, "
            f"messages={self.messages}, bits={self.bits})"
        )


@dataclass(frozen=True, slots=True)
class LinkLoad:
    """Traffic deposited on one link by a single network operation.

    Routing functions return these so callers can inspect exactly which
    links a message touched and with how many bits, without digging through
    the cumulative per-link counters.

    ``parent`` is the index (within the operation's load list) of the load
    this one directly follows: the previous hop of a unicast path, or the
    branch the subvector split off from in a multicast tree.  ``None``
    marks an injection at the source.  The timing model of
    :mod:`repro.sim.timing` uses these dependencies to compute makespans.

    Loads are immutable so memoised route plans can hand the same tuple to
    every caller (see :mod:`repro.network.routeplan`).
    """

    level: int
    position: int
    bits: int
    parent: int | None = None

    @property
    def key(self) -> tuple[int, int]:
        return (self.level, self.position)
