"""Network links and their traffic counters.

The paper's communication-cost metric (eq. 1) is *the amount of information
that has to pass each link, summed over all links*.  Links are therefore the
unit of accounting in the whole network model: every routing and multicast
function ultimately calls :meth:`Link.carry` with a bit count, and the
aggregate statistics of a simulation are sums over these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Link:
    """One unidirectional link in the omega network.

    ``level`` identifies which gap between stages the link spans, following
    the paper's numbering: level ``0`` links connect the source endpoints to
    the first switch stage, level ``i`` (``1 <= i < m``) links connect switch
    stage ``i-1`` to switch stage ``i``, and level ``m`` links connect the
    last switch stage to the destination endpoints.  ``position`` is the
    index of the link within its level (``0 <= position < N``).
    """

    level: int
    position: int
    messages: int = field(default=0, compare=False)
    bits: int = field(default=0, compare=False)

    def carry(self, bits: int) -> None:
        """Account for one message of ``bits`` bits traversing this link."""
        if bits < 0:
            raise ValueError(f"cannot carry a negative bit count ({bits})")
        self.messages += 1
        self.bits += bits

    def reset(self) -> None:
        """Zero the traffic counters (used between experiment runs)."""
        self.messages = 0
        self.bits = 0

    @property
    def key(self) -> tuple[int, int]:
        """Hashable identity ``(level, position)`` of this link."""
        return (self.level, self.position)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Link(level={self.level}, position={self.position}, "
            f"messages={self.messages}, bits={self.bits})"
        )


@dataclass
class LinkLoad:
    """Traffic deposited on one link by a single network operation.

    Routing functions return these so callers can inspect exactly which
    links a message touched and with how many bits, without digging through
    the cumulative per-link counters.

    ``parent`` is the index (within the operation's load list) of the load
    this one directly follows: the previous hop of a unicast path, or the
    branch the subvector split off from in a multicast tree.  ``None``
    marks an injection at the source.  The timing model of
    :mod:`repro.sim.timing` uses these dependencies to compute makespans.
    """

    level: int
    position: int
    bits: int
    parent: int | None = None

    @property
    def key(self) -> tuple[int, int]:
        return (self.level, self.position)
