"""Network-level messages.

A :class:`Message` is what the routing and multicast machinery moves through
the omega network: an opaque payload of ``payload_bits`` bits travelling from
a source port toward one or more destination ports.  Routing *tag* bits are
deliberately **not** part of the payload -- each multicast scheme attaches its
own tag (an ``m``-bit destination address, an ``N``-bit present-flag vector,
or the ``2m``-bit broadcast tag) and the cost accounting adds the tag's
per-stage remainder to every link, exactly as in §3 of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.types import NodeId

_serial = itertools.count()


@dataclass(frozen=True, slots=True)
class Message:
    """An immutable network message.

    Parameters
    ----------
    source:
        Port the message is injected at.
    payload_bits:
        Size of the payload ``M`` in bits (tag bits are accounted separately
        by the routing scheme).
    kind:
        Free-form label used by higher layers (the coherence protocols tag
        messages with their protocol message type); the network does not
        interpret it.
    payload:
        Optional structured content carried for functional simulation (block
        data, state fields); ignored by cost accounting.
    """

    source: NodeId
    payload_bits: int
    kind: str = "data"
    payload: Any = field(default=None, compare=False)
    serial: int = field(default_factory=lambda: next(_serial), compare=False)

    def __post_init__(self) -> None:
        if self.payload_bits < 0:
            raise ValueError(
                f"payload_bits must be non-negative, got {self.payload_bits}"
            )
