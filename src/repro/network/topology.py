"""The omega multistage interconnection network.

An ``N x N`` omega network (Lawrie, 1975) consists of ``m = log2 N``
identical stages; each stage is a perfect-shuffle permutation of the ``N``
positions followed by a column of ``N / 2`` two-by-two switches.  The network
provides a path from every input to every output, selected by the
*destination-tag* property: at stage ``i`` the message leaves the switch on
output ``d_i``, the ``i``-th most significant bit of the destination address.

Figure 3 of the paper views the paths from one source to all destinations as
a binary tree; this module materialises that structure with explicit
:class:`~repro.network.link.Link` and :class:`~repro.network.switch.Switch`
objects so that the communication-cost metric of eq. 1 (bits summed over all
links) can be measured rather than only computed from closed forms.

Port conventions
----------------
The multiprocessor attaches cache ``j`` *and* memory module ``j`` to port
``j`` (a dance-hall arrangement): every message between distinct nodes --
cache to cache, cache to memory, memory to cache -- traverses the full
``m``-stage fabric once.  A message whose source and destination ports are
equal (for example a memory module replying to its local cache, which cannot
happen in this system but is allowed by the API) still traverses the network,
matching the paper's cost model in which every global access crosses the
network.

Accounting layout
-----------------
All traffic counters live in four flat ``array('q')`` buffers owned by the
network (link bits, link messages, switch messages, switch splits); the
:class:`~repro.network.link.Link` and :class:`~repro.network.switch.Switch`
objects are views into them, so per-object reads and the bulk fast path
(:meth:`OmegaNetwork.apply_plan_traffic`, which replays a memoised
:class:`~repro.network.routeplan.RoutePlan`) always agree.  The network
also owns the :class:`~repro.network.routeplan.RoutePlanCache` that the
routing and multicast layers memoise their plans in; plans describe wiring,
not traffic, so :meth:`reset_traffic` clears the counters but not the
plans.
"""

from __future__ import annotations

from array import array
from typing import NamedTuple

from repro.errors import ConfigurationError
from repro.network.link import Link
from repro.network.routeplan import RoutePlan, RoutePlanCache
from repro.network.switch import Switch
from repro.types import NodeId, ilog2, is_power_of_two


class LinkUtilization(NamedTuple):
    """Zero-copy view of the per-link counters, row-major by level.

    ``bits[level * n_positions + position]`` is the bit count of the link
    at ``(level, position)``; likewise ``messages``.  Both are
    :class:`memoryview`\\ s over the network's live ``array('q')``
    buffers -- reading tracks ongoing traffic, and nothing is copied.
    """

    n_levels: int
    n_positions: int
    bits: memoryview
    messages: memoryview


class SwitchUtilization(NamedTuple):
    """Zero-copy view of the per-switch counters, row-major by stage.

    ``messages[stage * n_positions + index]`` is the traversal count of
    the switch at ``(stage, index)``; ``splits`` counts the traversals
    where the multicast tree forked inside that switch.
    """

    n_stages: int
    n_positions: int
    messages: memoryview
    splits: memoryview


class OmegaNetwork:
    """An ``N x N`` omega network of ``2 x 2`` switches with traffic counters.

    Parameters
    ----------
    n_ports:
        Number of input (and output) ports ``N``.  Must be a power of two,
        at least 2.  The paper restricts its analysis to ``2 x 2`` switches;
        so does this model.

    Attributes
    ----------
    n_ports:
        ``N``.
    n_stages:
        ``m = log2 N`` switch stages.  There are ``m + 1`` link levels,
        numbered ``0 .. m`` as in the paper (level ``m`` reaches the
        destination endpoints).
    """

    def __init__(self, n_ports: int) -> None:
        if n_ports < 2 or not is_power_of_two(n_ports):
            raise ConfigurationError(
                f"an omega network needs a power-of-two port count >= 2, "
                f"got {n_ports}"
            )
        self.n_ports = n_ports
        self.n_stages = ilog2(n_ports)
        n_links = (self.n_stages + 1) * n_ports
        n_switches = self.n_stages * (n_ports // 2)
        self._link_bits = array("q", bytes(8 * n_links))
        self._link_messages = array("q", bytes(8 * n_links))
        self._switch_messages = array("q", bytes(8 * n_switches))
        self._switch_splits = array("q", bytes(8 * n_switches))
        link_counters = (self._link_bits, self._link_messages)
        switch_counters = (self._switch_messages, self._switch_splits)
        self._links: list[list[Link]] = [
            [
                Link(
                    level,
                    position,
                    counters=link_counters,
                    slot=level * n_ports + position,
                )
                for position in range(n_ports)
            ]
            for level in range(self.n_stages + 1)
        ]
        self._switches: list[list[Switch]] = [
            [
                Switch(
                    stage,
                    index,
                    counters=switch_counters,
                    slot=stage * (n_ports // 2) + index,
                )
                for index in range(n_ports // 2)
            ]
            for stage in range(self.n_stages)
        ]
        #: Memoised route plans for this topology (see
        #: :mod:`repro.network.routeplan`).  Setting this to ``None``
        #: disables memoisation -- every operation re-walks the fabric --
        #: which the perf harness uses as its cold reference path.
        self.route_plans: RoutePlanCache | None = RoutePlanCache()
        #: Optional :class:`~repro.faults.injector.FaultInjector` attached
        #: by :class:`~repro.sim.system.System` when its fault plan is
        #: non-empty.  The :class:`~repro.network.multicast.Multicaster`
        #: entry points consult it, so the memoised fast path and the
        #: cold path see the exact same faults.  ``None`` = lossless
        #: network, zero overhead.
        self.fault_injector = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def shuffle(self, position: int) -> int:
        """Perfect shuffle: rotate the ``m``-bit position left by one.

        This is the wiring pattern in front of every switch stage.
        """
        self._check_port(position)
        m = self.n_stages
        return ((position << 1) | (position >> (m - 1))) & (self.n_ports - 1)

    def inverse_shuffle(self, position: int) -> int:
        """Inverse perfect shuffle: rotate the ``m``-bit position right."""
        self._check_port(position)
        m = self.n_stages
        return ((position >> 1) | ((position & 1) << (m - 1))) & (
            self.n_ports - 1
        )

    def destination_bit(self, dest: NodeId, stage: int) -> int:
        """Bit of ``dest`` consumed by switch stage ``stage`` (MSB first)."""
        self._check_port(dest)
        self._check_stage(stage)
        return (dest >> (self.n_stages - 1 - stage)) & 1

    def link(self, level: int, position: int) -> Link:
        """The link at ``(level, position)``; levels run ``0 .. m``."""
        if not 0 <= level <= self.n_stages:
            raise ConfigurationError(
                f"link level must be in 0..{self.n_stages}, got {level}"
            )
        self._check_port(position)
        return self._links[level][position]

    def switch(self, stage: int, index: int) -> Switch:
        """The switch at ``(stage, index)``; stages run ``0 .. m-1``."""
        self._check_stage(stage)
        if not 0 <= index < self.n_ports // 2:
            raise ConfigurationError(
                f"switch index must be in 0..{self.n_ports // 2 - 1}, "
                f"got {index}"
            )
        return self._switches[stage][index]

    def switch_for_position(self, stage: int, position: int) -> Switch:
        """The switch whose input ports include stage position ``position``."""
        self._check_port(position)
        return self.switch(stage, position // 2)

    def iter_links(self):
        """Yield every link, level by level."""
        for level_links in self._links:
            yield from level_links

    def iter_switches(self):
        """Yield every switch, stage by stage."""
        for stage_switches in self._switches:
            yield from stage_switches

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def route_positions(self, source: NodeId, dest: NodeId) -> list[int]:
        """Positions occupied by a message at link levels ``0 .. m``.

        Element ``0`` is the source port; element ``i`` (``i >= 1``) is the
        position of the link entering stage ``i`` (or, for ``i == m``, the
        destination port).  The destination-tag property guarantees the last
        element equals ``dest``.
        """
        self._check_port(source)
        self._check_port(dest)
        positions = [source]
        x = source
        for stage in range(self.n_stages):
            x = self.shuffle(x)
            x = (x & ~1) | self.destination_bit(dest, stage)
            positions.append(x)
        return positions

    def route_links(self, source: NodeId, dest: NodeId) -> list[Link]:
        """The ``m + 1`` links traversed from ``source`` to ``dest``."""
        return [
            self._links[level][position]
            for level, position in enumerate(self.route_positions(source, dest))
        ]

    # ------------------------------------------------------------------
    # Traffic accounting
    # ------------------------------------------------------------------

    def reset_traffic(self) -> None:
        """Zero every link and switch counter.

        Memoised route plans survive: they describe the network's wiring,
        which a traffic reset does not change.
        """
        for buffer in (
            self._link_bits,
            self._link_messages,
            self._switch_messages,
            self._switch_splits,
        ):
            buffer[:] = array("q", bytes(8 * len(buffer)))

    def apply_plan_traffic(self, plan: RoutePlan, payload_bits: int) -> None:
        """Account one replay of ``plan`` carrying ``payload_bits`` payload.

        Increments exactly the counters the plan's original switch-by-switch
        walk would have: every link load adds ``payload_bits`` plus its tag
        remainder (and one message), every switch traversal adds one message
        (and one split where the tree forked).
        """
        bits = self._link_bits
        messages = self._link_messages
        for slot, tag in plan.link_ops:
            bits[slot] += payload_bits + tag
            messages[slot] += 1
        switch_messages = self._switch_messages
        for slot in plan.switch_msg_slots:
            switch_messages[slot] += 1
        switch_splits = self._switch_splits
        for slot in plan.switch_split_slots:
            switch_splits[slot] += 1

    def apply_plan_traffic_scaled(
        self, plan: RoutePlan, payload_bits: int, count: int
    ) -> None:
        """Account ``count`` identical replays of ``plan`` in one pass.

        Exactly ``count`` successive :meth:`apply_plan_traffic` calls --
        the increments are linear in ``count``, so batched application is
        bit-identical and callers that know their repeat count up front
        (the replay fast path) skip the per-replay loop.
        """
        bits = self._link_bits
        messages = self._link_messages
        for slot, tag in plan.link_ops:
            bits[slot] += (payload_bits + tag) * count
            messages[slot] += count
        switch_messages = self._switch_messages
        for slot in plan.switch_msg_slots:
            switch_messages[slot] += count
        switch_splits = self._switch_splits
        for slot in plan.switch_split_slots:
            switch_splits[slot] += count

    @property
    def total_bits(self) -> int:
        """Communication cost accumulated so far (eq. 1 over all traffic)."""
        return sum(self._link_bits)

    @property
    def total_messages(self) -> int:
        """Link traversals accumulated so far (each hop of each message)."""
        return sum(self._link_messages)

    def bits_by_level(self) -> list[int]:
        """Bits carried per link level, ``[L_0, L_1, ..., L_m]`` of eq. 1."""
        n = self.n_ports
        return [
            sum(self._link_bits[level * n : (level + 1) * n])
            for level in range(self.n_stages + 1)
        ]

    def link_utilization(self) -> LinkUtilization:
        """The per-link counters as a :class:`LinkUtilization` view.

        This is the supported way to read the flat accounting buffers in
        bulk (heatmaps, exports): it hands out ``memoryview``\\ s, never
        copies, so calling it on the hot path costs nothing.  Layout is
        row-major: slot ``level * n_ports + position``.
        """
        return LinkUtilization(
            self.n_stages + 1,
            self.n_ports,
            memoryview(self._link_bits),
            memoryview(self._link_messages),
        )

    def switch_utilization(self) -> SwitchUtilization:
        """The per-switch counters as a :class:`SwitchUtilization` view.

        Same contract as :meth:`link_utilization`; layout is row-major
        with ``n_ports // 2`` switches per stage.
        """
        return SwitchUtilization(
            self.n_stages,
            self.n_ports // 2,
            memoryview(self._switch_messages),
            memoryview(self._switch_splits),
        )

    def busiest_links(self, count: int = 8) -> list[Link]:
        """The ``count`` links that carried the most bits (load imbalance)."""
        return sorted(self.iter_links(), key=lambda l: l.bits, reverse=True)[
            :count
        ]

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise ConfigurationError(
                f"port {port} outside 0..{self.n_ports - 1}"
            )

    def _check_stage(self, stage: int) -> None:
        if not 0 <= stage < self.n_stages:
            raise ConfigurationError(
                f"stage {stage} outside 0..{self.n_stages - 1}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OmegaNetwork(n_ports={self.n_ports}, "
            f"n_stages={self.n_stages})"
        )
