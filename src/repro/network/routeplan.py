"""Memoised route plans: compute a multicast tree once, replay it forever.

Every multicast scheme in :mod:`repro.network.multicast` (and the unicast
routing of :mod:`repro.network.routing`) walks the omega network switch by
switch to discover *which links carry how many tag bits* and *which switches
forward (and split) the message*.  That walk depends only on
``(scheme, source, destination set, topology)`` -- never on the payload
size, whose contribution to every link is a flat ``+M`` -- so its outcome
can be computed once and replayed.  The paper's §4 Markov model guarantees
the same destination sets recur heavily across a trace (blocks cycle
through a small set of present-flag vectors), which is what makes the
memoisation pay off; precomputed routing tables are likewise the standard
device in the wormhole-routing MIN and NoC multicast literature.

Two classes:

* :class:`RoutePlan` -- the payload-independent outcome of one routing
  operation: an immutable tuple of ``(level, position, tag_bits, parent)``
  entries (one per link load), the switch traversals with their split
  flags, and flat counter indices precomputed for
  :meth:`~repro.network.topology.OmegaNetwork.apply_plan_traffic`.
  ``cost_for(M)`` and ``loads_for(M)`` reconstitute the exact per-payload
  numbers the switch-by-switch walk would have produced.
* :class:`RoutePlanCache` -- a bounded LRU of plans.  Each
  :class:`~repro.network.topology.OmegaNetwork` instance owns one, so plans
  can never leak across topologies: a different network (or port count)
  starts from an empty cache, and :meth:`OmegaNetwork.reset_traffic` zeroes
  counters while leaving the plans -- they describe wiring, not traffic.

Replaying a plan is *bit-identical* to the walk it replaces: the same
``LinkLoad`` tuples (identical values, parents and order), the same
per-link and per-switch counter increments, the same delivered sets.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable, Sequence

from repro.network.link import LinkLoad

#: How many distinct payload sizes one plan memoises results for before
#: starting over; protocols use a handful of message sizes, so this is
#: effectively unbounded while still guarding pathological callers.
_PAYLOAD_MEMO_LIMIT = 32


class RoutePlan:
    """The payload-independent part of one routing or multicast operation.

    Parameters
    ----------
    scheme:
        The :class:`~repro.network.multicast.MulticastScheme` this plan
        replays (``None`` for plain unicast plans).
    source:
        Injection port.
    requested / delivered:
        The destination set asked for and the set actually reached
        (scheme 3 may over-deliver to its enclosing subcube).
    entries:
        One ``(level, position, tag_bits, parent)`` tuple per link load,
        in the exact order the switch-by-switch walk emits them.
    switch_ops:
        One ``(stage, switch_index, split)`` tuple per switch traversal.
    n_ports / n_switches_per_stage:
        Geometry of the network the plan was built for, used to precompute
        the flat counter indices consumed by
        :meth:`~repro.network.topology.OmegaNetwork.apply_plan_traffic`.
    """

    __slots__ = (
        "scheme",
        "source",
        "requested",
        "delivered",
        "entries",
        "switch_ops",
        "link_ops",
        "switch_msg_slots",
        "switch_split_slots",
        "tag_total",
        "n_loads",
        "over_delivers",
        "_memo",
        "_results",
    )

    def __init__(
        self,
        scheme: object,
        source: int,
        requested: frozenset[int],
        delivered: frozenset[int],
        entries: Sequence[tuple[int, int, int, int | None]],
        switch_ops: Sequence[tuple[int, int, bool]],
        *,
        n_ports: int,
        n_switches_per_stage: int,
    ) -> None:
        self.scheme = scheme
        self.source = source
        self.requested = requested
        self.delivered = delivered
        self.entries = tuple(entries)
        self.switch_ops = tuple(switch_ops)
        self.link_ops = tuple(
            (level * n_ports + position, tag)
            for level, position, tag, _ in self.entries
        )
        self.switch_msg_slots = tuple(
            stage * n_switches_per_stage + index
            for stage, index, _ in self.switch_ops
        )
        self.switch_split_slots = tuple(
            stage * n_switches_per_stage + index
            for stage, index, split in self.switch_ops
            if split
        )
        self.tag_total = sum(tag for _, _, tag, _ in self.entries)
        self.n_loads = len(self.entries)
        self.over_delivers = delivered != requested
        # payload_bits -> loads tuple (plus scheme-specific keys); results
        # are attached lazily by the replay layer that owns the result type.
        self._memo: dict[Hashable, object] = {}
        # payload_bits -> replayed result object, on the hottest lookup
        # path (plain int keys, no tuple allocation per send).
        self._results: dict[int, object] = {}

    # ------------------------------------------------------------------

    def cost_for(self, payload_bits: int) -> int:
        """Total bits this operation places on links for payload ``M``.

        Equals ``sum(load.bits for load in loads_for(M))`` by construction:
        every load carries ``M`` payload bits plus its tag remainder.
        """
        return self.n_loads * payload_bits + self.tag_total

    def loads_for(self, payload_bits: int) -> tuple[LinkLoad, ...]:
        """The exact :class:`LinkLoad` tuple the cold path would build.

        Tuples are memoised per payload size; loads are frozen, so sharing
        one tuple across results is safe.
        """
        loads = self._memo.get(payload_bits)
        if loads is None:
            loads = tuple(
                LinkLoad(level, position, payload_bits + tag, parent)
                for level, position, tag, parent in self.entries
            )
            self.remember(payload_bits, loads)
        return loads

    # ------------------------------------------------------------------
    # Per-payload memo (loads and scheme-specific result objects)
    # ------------------------------------------------------------------

    def memo_get(self, key: Hashable) -> object | None:
        """Look up a memoised per-payload value (loads or result)."""
        return self._memo.get(key)

    def remember(self, key: Hashable, value: object) -> None:
        """Memoise a per-payload value, bounding the memo size."""
        if len(self._memo) >= _PAYLOAD_MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = value

    def result_get(self, payload_bits: int) -> object | None:
        """The memoised replayed-result object for this payload size."""
        return self._results.get(payload_bits)

    def result_put(self, payload_bits: int, result: object) -> None:
        """Memoise a replayed result, bounding the memo size."""
        if len(self._results) >= _PAYLOAD_MEMO_LIMIT:
            self._results.clear()
        self._results[payload_bits] = result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutePlan(scheme={self.scheme!r}, source={self.source}, "
            f"loads={self.n_loads}, switches={len(self.switch_ops)})"
        )


class RoutePlanCache:
    """A bounded LRU of :class:`RoutePlan` values keyed by route identity.

    Keys are ``(scheme tag, source, frozen destination set)`` tuples; the
    cache itself is owned by one network instance, so topology is implied
    by ownership and plans can never be replayed against a network with
    different wiring.  ``hits`` / ``misses`` make the cache observable
    (the perf harness reports the hit rate).
    """

    __slots__ = ("maxsize", "hits", "misses", "_plans")

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._plans: OrderedDict[Hashable, object] = OrderedDict()

    def get(self, key: Hashable) -> object | None:
        """The cached plan for ``key``, refreshing its LRU position."""
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: Hashable, plan: object) -> None:
        """Insert ``plan``, evicting the least recently used on overflow."""
        plans = self._plans
        plans[key] = plan
        plans.move_to_end(key)
        while len(plans) > self.maxsize:
            plans.popitem(last=False)

    def clear(self) -> None:
        """Drop every plan (hit/miss counters are kept)."""
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._plans

    def keys(self) -> Iterable[Hashable]:
        """The cached keys, least recently used first."""
        return self._plans.keys()

    def stats(self) -> dict[str, int | float]:
        """Hit/miss counters and the resulting hit rate."""
        lookups = self.hits + self.misses
        return {
            "plans": len(self._plans),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutePlanCache(plans={len(self._plans)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
