"""Destination-tag unicast routing (the basis of multicast scheme 1).

Lawrie's routing scheme for omega networks: the routing tag is the ``m``-bit
destination address ``d_0 d_1 ... d_{m-1}``; switch stage ``i`` forwards to
output ``d_i`` and strips that bit.  A message of ``M`` payload bits therefore
places ``M + (m - i)`` bits on its link at level ``i`` -- the term summed in
eq. 2 of the paper.

Routes are memoised: the ``(level, position)`` path and its tag remainders
depend only on ``(source, dest)``, so :func:`unicast` builds a
:class:`~repro.network.routeplan.RoutePlan` once per pair (stored in the
network's plan cache) and replays it -- identical loads, identical counter
increments -- on every subsequent call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.link import LinkLoad
from repro.network.message import Message
from repro.network.routeplan import RoutePlan
from repro.network.topology import OmegaNetwork
from repro.types import NodeId


@dataclass(frozen=True)
class UnicastResult:
    """Outcome of routing one message to one destination."""

    source: NodeId
    dest: NodeId
    loads: tuple[LinkLoad, ...]

    @property
    def cost(self) -> int:
        """Bits placed on links by this message (its share of eq. 1)."""
        return sum(load.bits for load in self.loads)


def tag_bits_scheme1(network: OmegaNetwork, level: int) -> int:
    """Routing-tag bits still attached at link level ``level`` (scheme 1)."""
    if not 0 <= level <= network.n_stages:
        raise ValueError(
            f"level must be in 0..{network.n_stages}, got {level}"
        )
    return network.n_stages - level


def route_path(
    network: OmegaNetwork, source: NodeId, dest: NodeId
) -> list[tuple[int, int]]:
    """The ``(level, position)`` link keys from ``source`` to ``dest``."""
    return [
        (level, position)
        for level, position in enumerate(
            network.route_positions(source, dest)
        )
    ]


def build_unicast_plan(
    network: OmegaNetwork, source: NodeId, dest: NodeId
) -> RoutePlan:
    """The payload-independent plan of one destination-tag unicast.

    Validates both ports (via :meth:`OmegaNetwork.route_positions`), so a
    plan-cache hit may skip re-validation.
    """
    positions = network.route_positions(source, dest)
    m = network.n_stages
    entries = [
        (level, position, m - level, level - 1 if level > 0 else None)
        for level, position in enumerate(positions)
    ]
    # The switch traversed at stage i only rewrites the low bit of the
    # shuffled position, so it is identified by its *output* position,
    # which is the level-(i+1) link position.
    switch_ops = [
        (stage, positions[stage + 1] // 2, False) for stage in range(m)
    ]
    return RoutePlan(
        None,
        source,
        frozenset((dest,)),
        frozenset((dest,)),
        entries,
        switch_ops,
        n_ports=network.n_ports,
        n_switches_per_stage=network.n_ports // 2,
    )


def unicast_plan(
    network: OmegaNetwork, source: NodeId, dest: NodeId
) -> RoutePlan:
    """The (memoised) route plan from ``source`` to ``dest``."""
    cache = network.route_plans
    if cache is None:
        return build_unicast_plan(network, source, dest)
    key = ("u", source, dest)
    plan = cache.get(key)
    if plan is None:
        plan = build_unicast_plan(network, source, dest)
        cache.put(key, plan)
    return plan


def unicast(
    network: OmegaNetwork,
    message: Message,
    dest: NodeId,
    *,
    commit: bool = True,
) -> UnicastResult:
    """Route ``message`` from its source to ``dest``, accounting traffic.

    With ``commit=True`` (the default) the traversed links and switches
    accumulate the traffic; with ``commit=False`` the result is computed
    without touching any counter (a "what would this cost" probe).
    """
    plan = unicast_plan(network, message.source, dest)
    payload_bits = message.payload_bits
    result = plan.memo_get(("result", payload_bits))
    if result is None:
        result = UnicastResult(
            message.source, dest, plan.loads_for(payload_bits)
        )
        plan.remember(("result", payload_bits), result)
    if commit:
        network.apply_plan_traffic(plan, payload_bits)
    return result
