"""Destination-tag unicast routing (the basis of multicast scheme 1).

Lawrie's routing scheme for omega networks: the routing tag is the ``m``-bit
destination address ``d_0 d_1 ... d_{m-1}``; switch stage ``i`` forwards to
output ``d_i`` and strips that bit.  A message of ``M`` payload bits therefore
places ``M + (m - i)`` bits on its link at level ``i`` -- the term summed in
eq. 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.link import LinkLoad
from repro.network.message import Message
from repro.network.topology import OmegaNetwork
from repro.types import NodeId


@dataclass(frozen=True)
class UnicastResult:
    """Outcome of routing one message to one destination."""

    source: NodeId
    dest: NodeId
    loads: tuple[LinkLoad, ...]

    @property
    def cost(self) -> int:
        """Bits placed on links by this message (its share of eq. 1)."""
        return sum(load.bits for load in self.loads)


def tag_bits_scheme1(network: OmegaNetwork, level: int) -> int:
    """Routing-tag bits still attached at link level ``level`` (scheme 1)."""
    if not 0 <= level <= network.n_stages:
        raise ValueError(
            f"level must be in 0..{network.n_stages}, got {level}"
        )
    return network.n_stages - level


def route_path(
    network: OmegaNetwork, source: NodeId, dest: NodeId
) -> list[tuple[int, int]]:
    """The ``(level, position)`` link keys from ``source`` to ``dest``."""
    return [
        (level, position)
        for level, position in enumerate(
            network.route_positions(source, dest)
        )
    ]


def unicast(
    network: OmegaNetwork,
    message: Message,
    dest: NodeId,
    *,
    commit: bool = True,
) -> UnicastResult:
    """Route ``message`` from its source to ``dest``, accounting traffic.

    With ``commit=True`` (the default) the traversed links and switches
    accumulate the traffic; with ``commit=False`` the result is computed
    without touching any counter (a "what would this cost" probe).
    """
    positions = network.route_positions(message.source, dest)
    loads = []
    for level, position in enumerate(positions):
        bits = message.payload_bits + tag_bits_scheme1(network, level)
        parent = level - 1 if level > 0 else None
        loads.append(LinkLoad(level, position, bits, parent))
        if commit:
            network.link(level, position).carry(bits)
    if commit:
        # The switch traversed at stage i only rewrites the low bit of the
        # shuffled position, so it is identified by its *output* position,
        # which is the level-(i+1) link position.
        for stage in range(network.n_stages):
            network.switch_for_position(stage, positions[stage + 1]).record(
                split=False
            )
    return UnicastResult(message.source, dest, tuple(loads))
