"""The ``2 x 2`` crossbar switches of the omega network.

Switches do two jobs in this model:

* they record how many messages passed through them (and how many of those
  were *split*, i.e. forwarded to both outputs by a multicast), which lets
  experiments study switch load balance and multicast fan-out; and
* they implement the per-stage routing decision used by every scheme in the
  paper -- select output ``0`` or ``1`` (or both) from the routing tag.

The routing decision itself is a pure function (:meth:`Switch.output_for_bit`)
so the multicast simulator can ask "where would this go" without touching the
counters, and then commit traffic explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Switch:
    """One ``2 x 2`` switch: stage ``stage`` (0-based), index within stage.

    The switch occupies positions ``2 * index`` and ``2 * index + 1`` of its
    stage; its output port ``b`` drives position ``2 * index + b``.
    """

    stage: int
    index: int
    messages: int = field(default=0, compare=False)
    splits: int = field(default=0, compare=False)

    @property
    def positions(self) -> tuple[int, int]:
        """The two port positions (within the stage) this switch serves."""
        return (2 * self.index, 2 * self.index + 1)

    def output_position(self, output: int) -> int:
        """Stage-relative position driven by output port ``output`` (0 or 1)."""
        if output not in (0, 1):
            raise ValueError(f"a 2x2 switch has outputs 0 and 1, not {output}")
        return 2 * self.index + output

    def record(self, *, split: bool) -> None:
        """Account one message through this switch.

        ``split`` is true when a multicast forwarded the message to both
        outputs at this switch (the defining action of scheme 2 and of the
        broadcast bits of scheme 3).
        """
        self.messages += 1
        if split:
            self.splits += 1

    def reset(self) -> None:
        """Zero the traffic counters (used between experiment runs)."""
        self.messages = 0
        self.splits = 0

    @property
    def key(self) -> tuple[int, int]:
        """Hashable identity ``(stage, index)`` of this switch."""
        return (self.stage, self.index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Switch(stage={self.stage}, index={self.index}, "
            f"messages={self.messages}, splits={self.splits})"
        )
