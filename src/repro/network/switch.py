"""The ``2 x 2`` crossbar switches of the omega network.

Switches do two jobs in this model:

* they record how many messages passed through them (and how many of those
  were *split*, i.e. forwarded to both outputs by a multicast), which lets
  experiments study switch load balance and multicast fan-out; and
* they implement the per-stage routing decision used by every scheme in the
  paper -- select output ``0`` or ``1`` (or both) from the routing tag.

The routing decision itself is a pure function (:meth:`Switch.output_position`)
so the multicast simulator can ask "where would this go" without touching the
counters, and then commit traffic explicitly.

Like :class:`~repro.network.link.Link`, a switch is a *view* onto flat
``array('q')`` counter buffers -- shared with its owning network, or private
single-slot arrays for a standalone ``Switch(stage, index)`` -- so the
object facade always agrees with the network's bulk accounting.
"""

from __future__ import annotations

from array import array


class Switch:
    """One ``2 x 2`` switch: stage ``stage`` (0-based), index within stage.

    The switch occupies positions ``2 * index`` and ``2 * index + 1`` of its
    stage; its output port ``b`` drives position ``2 * index + b``.

    ``counters`` and ``slot`` bind the switch to shared
    ``(messages, splits)`` arrays at a flat index; omitted, the switch owns
    private counters.
    """

    __slots__ = ("stage", "index", "_messages", "_splits", "_slot")

    def __init__(
        self,
        stage: int,
        index: int,
        *,
        counters: tuple[array, array] | None = None,
        slot: int = 0,
    ) -> None:
        self.stage = stage
        self.index = index
        if counters is None:
            self._messages = array("q", (0,))
            self._splits = array("q", (0,))
            self._slot = 0
        else:
            self._messages, self._splits = counters
            self._slot = slot

    @property
    def messages(self) -> int:
        """Messages routed through this switch so far."""
        return self._messages[self._slot]

    @property
    def splits(self) -> int:
        """Messages forwarded to both outputs (multicast splits) so far."""
        return self._splits[self._slot]

    @property
    def positions(self) -> tuple[int, int]:
        """The two port positions (within the stage) this switch serves."""
        return (2 * self.index, 2 * self.index + 1)

    def output_position(self, output: int) -> int:
        """Stage-relative position driven by output port ``output`` (0 or 1)."""
        if output not in (0, 1):
            raise ValueError(f"a 2x2 switch has outputs 0 and 1, not {output}")
        return 2 * self.index + output

    def record(self, *, split: bool) -> None:
        """Account one message through this switch.

        ``split`` is true when a multicast forwarded the message to both
        outputs at this switch (the defining action of scheme 2 and of the
        broadcast bits of scheme 3).
        """
        self._messages[self._slot] += 1
        if split:
            self._splits[self._slot] += 1

    def reset(self) -> None:
        """Zero the traffic counters (used between experiment runs)."""
        self._messages[self._slot] = 0
        self._splits[self._slot] = 0

    @property
    def key(self) -> tuple[int, int]:
        """Hashable identity ``(stage, index)`` of this switch."""
        return (self.stage, self.index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Switch):
            return NotImplemented
        return self.stage == other.stage and self.index == other.index

    # Mutable counter semantics, like the dataclass this class replaced.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Switch(stage={self.stage}, index={self.index}, "
            f"messages={self.messages}, splits={self.splits})"
        )
