"""The multicast schemes of §3, simulated switch by switch.

Three ways of delivering one message to ``n`` destination caches through the
omega network, plus the combined scheme of eq. 8:

* **Scheme 1** (:func:`multicast_scheme1`) -- one destination-tag unicast per
  destination.  Cost grows linearly in ``n`` (eq. 2) because common links are
  paid once per destination.
* **Scheme 2** (:func:`multicast_scheme2`) -- the ``N``-bit present-flag
  vector itself is the routing tag.  Every switch splits the vector in half
  and forwards each half only if it still names a destination, so common
  links are traversed once.  This is the paper's novel scheme.
* **Scheme 3** (:func:`multicast_scheme3`) -- Wen's broadcast-bit routing:
  a ``2m``-bit tag ``b_0..b_{m-1} d_0..d_{m-1}`` where ``b_i = 1`` makes
  stage ``i`` forward to both outputs.  It can only address a *subcube*
  (``2**l`` destinations whose addresses differ in ``l`` fixed bit
  positions); delivering to an arbitrary set means covering it with the
  minimal enclosing subcube and over-delivering.
* **Combined scheme** (:func:`multicast_combined`, eq. 8) -- probe all three
  and commit whichever is cheapest.

Every function both *measures* (returns the exact per-link loads) and
*accounts* (increments the network's link and switch counters), so closed
forms from :mod:`repro.network.cost` can be validated against what actually
flows through the fabric.

The switch-by-switch walk for a given ``(scheme, source, destination set)``
is performed once per network and memoised as a
:class:`~repro.network.routeplan.RoutePlan` in the network's
:class:`~repro.network.routeplan.RoutePlanCache`; repeat sends -- the
common case, since the §4 Markov workloads cycle blocks through a small
set of present-flag vectors -- replay the plan with bit-identical loads
and counter increments.  Destinations are validated once, when the plan is
built; the memoised fast path skips re-validation (an invalid set can
never hit, because plans are only cached after validating).
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

from repro.errors import MulticastError
from repro.network.link import LinkLoad
from repro.network.message import Message
from repro.network.routeplan import RoutePlan
from repro.network.routing import unicast_plan
from repro.network.topology import OmegaNetwork
from repro.types import NodeId


class MulticastScheme(enum.Enum):
    """Which multicast algorithm moves the message through the network."""

    UNICAST = 1  # scheme 1: one unicast per destination
    VECTOR = 2  # scheme 2: present-flag vector as routing tag
    BROADCAST_TAG = 3  # scheme 3: Wen's broadcast-bit subcube routing
    COMBINED = 4  # eq. 8: cheapest of the three


@dataclass(frozen=True)
class MulticastResult:
    """Outcome of one multicast operation.

    ``delivered`` can be a strict superset of ``requested`` when scheme 3
    covers an arbitrary destination set with its minimal enclosing subcube;
    coherence actions in this system (write updates, invalidations, owner-id
    updates) are idempotent and ignorable by non-holders, so over-delivery
    is functionally harmless and only costs bits.
    """

    scheme: MulticastScheme
    source: NodeId
    requested: frozenset[NodeId]
    delivered: frozenset[NodeId]
    loads: tuple[LinkLoad, ...]

    @cached_property
    def cost(self) -> int:
        """Bits placed on links (this operation's share of eq. 1)."""
        return sum(load.bits for load in self.loads)

    @cached_property
    def links_used(self) -> int:
        """Distinct links touched (scheme 1 may touch one link repeatedly)."""
        # Pack (level, position) into one int per load: counting distinct
        # keys without allocating an intermediate tuple object per load.
        return len({(load.level << 32) | load.position for load in self.loads})


def _freeze(dests: Iterable[NodeId]) -> frozenset[NodeId]:
    """The destination set as a frozenset, without validating members."""
    return dests if type(dests) is frozenset else frozenset(dests)


def _as_destset(network: OmegaNetwork, dests: Iterable[NodeId]) -> frozenset:
    """Validated destination frozenset.

    Called when a plan is *built*; plan-cache hits skip it (only validated
    sets are ever cached, so an invalid set can never hit).
    """
    dest_set = _freeze(dests)
    n_ports = network.n_ports
    for dest in dest_set:
        if not 0 <= dest < n_ports:
            raise MulticastError(
                f"destination {dest} outside 0..{n_ports - 1}"
            )
    return dest_set


def _scheme_plan(
    network: OmegaNetwork,
    scheme: MulticastScheme,
    source: NodeId,
    dest_set: frozenset[NodeId],
    builder,
) -> RoutePlan:
    """Fetch (or build, validate and cache) the plan for one scheme send."""
    cache = getattr(network, "route_plans", None)
    if cache is None:
        _as_destset(network, dest_set)
        return builder(network, source, dest_set)
    key = (scheme, source, dest_set)
    plan = cache.get(key)
    if plan is None:
        _as_destset(network, dest_set)
        plan = builder(network, source, dest_set)
        cache.put(key, plan)
    return plan


def _replay(
    network: OmegaNetwork,
    plan: RoutePlan,
    payload_bits: int,
    commit: bool,
) -> MulticastResult:
    """Replay ``plan`` for one payload size.

    The :class:`MulticastResult` (immutable throughout) is memoised per
    payload size on the plan, so repeat sends allocate nothing.
    """
    result = plan.result_get(payload_bits)
    if result is None:
        result = MulticastResult(
            plan.scheme,
            plan.source,
            plan.requested,
            plan.delivered,
            plan.loads_for(payload_bits),
        )
        plan.result_put(payload_bits, result)
    if commit:
        network.apply_plan_traffic(plan, payload_bits)
    return result


# ----------------------------------------------------------------------
# Scheme 1: repeated unicast
# ----------------------------------------------------------------------


def _build_scheme1_plan(
    network: OmegaNetwork, source: NodeId, dest_set: frozenset[NodeId]
) -> RoutePlan:
    """One destination-tag unicast per destination, concatenated."""
    m = network.n_stages
    entries: list[tuple[int, int, int, int | None]] = []
    switch_ops: list[tuple[int, int, bool]] = []
    for dest in sorted(dest_set):
        base = len(entries)
        positions = network.route_positions(source, dest)
        for level, position in enumerate(positions):
            parent = base + level - 1 if level > 0 else None
            entries.append((level, position, m - level, parent))
        for stage in range(m):
            switch_ops.append((stage, positions[stage + 1] // 2, False))
    return RoutePlan(
        MulticastScheme.UNICAST,
        source,
        dest_set,
        dest_set,
        entries,
        switch_ops,
        n_ports=network.n_ports,
        n_switches_per_stage=network.n_ports // 2,
    )


def _payload_scheme1(
    network: OmegaNetwork,
    source: NodeId,
    payload_bits: int,
    dest_set: frozenset[NodeId],
    commit: bool,
) -> MulticastResult:
    plan = _scheme_plan(
        network, MulticastScheme.UNICAST, source, dest_set, _build_scheme1_plan
    )
    return _replay(network, plan, payload_bits, commit)


def multicast_scheme1(
    network: OmegaNetwork,
    message: Message,
    dests: Iterable[NodeId],
    *,
    commit: bool = True,
) -> MulticastResult:
    """Deliver ``message`` by sending one scheme-1 unicast per destination."""
    return _payload_scheme1(
        network, message.source, message.payload_bits, _freeze(dests), commit
    )


# ----------------------------------------------------------------------
# Scheme 2: present-flag vector routing
# ----------------------------------------------------------------------


def _build_scheme2_plan(
    network: OmegaNetwork, source: NodeId, dest_set: frozenset[NodeId]
) -> RoutePlan:
    """The present-flag vector's split tree, link loads and switch forks."""
    sorted_dests = sorted(dest_set)
    n = network.n_ports
    m = network.n_stages
    entries: list[tuple[int, int, int, int | None]] = []
    switch_ops: list[tuple[int, int, bool]] = []
    if dest_set:
        # A branch is (link position, destination range [lo, hi), index of
        # the entry that fed it); the range always has size N / 2**level
        # and contains >= 1 destination.
        branches: list[tuple[int, int, int, int]] = [(source, 0, n, 0)]
        entries.append((0, source, n, None))
        for stage in range(m):
            next_branches: list[tuple[int, int, int, int]] = []
            half = n >> (stage + 1)  # subvector length after the split
            for position, lo, hi, parent in branches:
                shuffled = network.shuffle(position)
                mid = (lo + hi) // 2
                lo_i = bisect.bisect_left(sorted_dests, lo)
                mid_i = bisect.bisect_left(sorted_dests, mid)
                hi_i = bisect.bisect_left(sorted_dests, hi)
                go_low = mid_i > lo_i
                go_high = hi_i > mid_i
                switch_ops.append(
                    (stage, shuffled // 2, go_low and go_high)
                )
                if go_low:
                    out = shuffled & ~1
                    next_branches.append((out, lo, mid, len(entries)))
                    entries.append((stage + 1, out, half, parent))
                if go_high:
                    out = shuffled | 1
                    next_branches.append((out, mid, hi, len(entries)))
                    entries.append((stage + 1, out, half, parent))
            branches = next_branches
        final_positions = {position for position, _, _, _ in branches}
        if final_positions != dest_set:
            raise MulticastError(
                f"scheme 2 routing reached {sorted(final_positions)} "
                f"instead of {sorted(dest_set)}"
            )
    return RoutePlan(
        MulticastScheme.VECTOR,
        source,
        dest_set,
        dest_set,
        entries,
        switch_ops,
        n_ports=n,
        n_switches_per_stage=n // 2,
    )


def _payload_scheme2(
    network: OmegaNetwork,
    source: NodeId,
    payload_bits: int,
    dest_set: frozenset[NodeId],
    commit: bool,
) -> MulticastResult:
    plan = _scheme_plan(
        network, MulticastScheme.VECTOR, source, dest_set, _build_scheme2_plan
    )
    return _replay(network, plan, payload_bits, commit)


def multicast_scheme2(
    network: OmegaNetwork,
    message: Message,
    dests: Iterable[NodeId],
    *,
    commit: bool = True,
) -> MulticastResult:
    """Deliver ``message`` using the present-flag vector as routing tag.

    The full ``N``-bit vector rides the level-0 link; each switch splits the
    incoming vector into two halves and forwards a half iff it still contains
    a set flag.  The vector shrinks to ``N / 2**i`` bits at link level ``i``,
    which is exactly the per-stage cost the paper tabulates for eq. 3.
    """
    return _payload_scheme2(
        network, message.source, message.payload_bits, _freeze(dests), commit
    )


# ----------------------------------------------------------------------
# Scheme 3: broadcast-bit subcube routing
# ----------------------------------------------------------------------


def enclosing_subcube(
    network: OmegaNetwork, dests: Iterable[NodeId]
) -> tuple[int, int]:
    """Minimal subcube ``(base, varying_mask)`` covering ``dests``.

    The subcube contains every port agreeing with ``base`` on the bits
    *outside* ``varying_mask``; its size is ``2 ** popcount(varying_mask)``.
    """
    dest_list = sorted(_as_destset(network, dests))
    if not dest_list:
        raise MulticastError("cannot compute a subcube for zero destinations")
    base = dest_list[0]
    varying = 0
    for dest in dest_list[1:]:
        varying |= base ^ dest
    return base & ~varying, varying


def subcube_members(
    network: OmegaNetwork, base: int, varying_mask: int
) -> frozenset[NodeId]:
    """All ports of the subcube ``(base, varying_mask)``."""
    bits = [b for b in range(network.n_stages) if (varying_mask >> b) & 1]
    members = []
    for combo in range(1 << len(bits)):
        address = base
        for j, b in enumerate(bits):
            if (combo >> j) & 1:
                address |= 1 << b
        members.append(address)
    return frozenset(members)


def _build_scheme3_plan(
    network: OmegaNetwork, source: NodeId, dest_set: frozenset[NodeId]
) -> RoutePlan:
    """Wen's broadcast-bit tree over the minimal enclosing subcube."""
    base, varying = enclosing_subcube(network, dest_set)
    delivered = subcube_members(network, base, varying)
    m = network.n_stages
    entries: list[tuple[int, int, int, int | None]] = [
        (0, source, 2 * m, None)
    ]
    switch_ops: list[tuple[int, int, bool]] = []
    branches: list[tuple[int, int]] = [(source, 0)]
    for stage in range(m):
        # Stage i consumes b_i and d_i: MSB-first, stage i governs address
        # bit (m - 1 - stage).
        bit_index = m - 1 - stage
        broadcast = (varying >> bit_index) & 1
        tag_left = 2 * (m - stage - 1)
        next_branches: list[tuple[int, int]] = []
        for position, parent in branches:
            shuffled = network.shuffle(position)
            if broadcast:
                outs = [shuffled & ~1, shuffled | 1]
            else:
                outs = [(shuffled & ~1) | ((base >> bit_index) & 1)]
            switch_ops.append((stage, shuffled // 2, bool(broadcast)))
            for out in outs:
                next_branches.append((out, len(entries)))
                entries.append((stage + 1, out, tag_left, parent))
        branches = next_branches
    if frozenset(position for position, _ in branches) != delivered:
        raise MulticastError(
            f"scheme 3 routing reached "
            f"{sorted(position for position, _ in branches)} "
            f"instead of {sorted(delivered)}"
        )
    return RoutePlan(
        MulticastScheme.BROADCAST_TAG,
        source,
        dest_set,
        delivered,
        entries,
        switch_ops,
        n_ports=network.n_ports,
        n_switches_per_stage=network.n_ports // 2,
    )


def _payload_scheme3(
    network: OmegaNetwork,
    source: NodeId,
    payload_bits: int,
    dest_set: frozenset[NodeId],
    commit: bool,
    exact: bool,
) -> MulticastResult:
    if not dest_set:
        raise MulticastError("scheme 3 needs at least one destination")
    plan = _scheme_plan(
        network,
        MulticastScheme.BROADCAST_TAG,
        source,
        dest_set,
        _build_scheme3_plan,
    )
    if exact and plan.over_delivers:
        raise MulticastError(
            f"destinations {sorted(dest_set)} do not form a subcube "
            f"(minimal cover has {len(plan.delivered)} members); "
            f"pass exact=False to over-deliver"
        )
    return _replay(network, plan, payload_bits, commit)


def multicast_scheme3(
    network: OmegaNetwork,
    message: Message,
    dests: Iterable[NodeId],
    *,
    exact: bool = True,
    commit: bool = True,
) -> MulticastResult:
    """Deliver ``message`` with Wen's ``2m``-bit broadcast-bit routing tag.

    With ``exact=True`` the destination set must itself be a subcube (the
    restriction stated in §3.3); with ``exact=False`` the minimal enclosing
    subcube is used and the message is over-delivered.
    """
    return _payload_scheme3(
        network,
        message.source,
        message.payload_bits,
        _freeze(dests),
        commit,
        exact,
    )


# ----------------------------------------------------------------------
# Combined scheme (eq. 8)
# ----------------------------------------------------------------------


def _combined_plans(
    network: OmegaNetwork,
    source: NodeId,
    dest_set: frozenset[NodeId],
) -> tuple[RoutePlan, RoutePlan, RoutePlan]:
    """The three candidate plans of eq. 8, cached as one tuple."""
    cache = getattr(network, "route_plans", None)
    key = (MulticastScheme.COMBINED, source, dest_set)
    plans = cache.get(key) if cache is not None else None
    if plans is None:
        plans = (
            _scheme_plan(
                network,
                MulticastScheme.UNICAST,
                source,
                dest_set,
                _build_scheme1_plan,
            ),
            _scheme_plan(
                network,
                MulticastScheme.VECTOR,
                source,
                dest_set,
                _build_scheme2_plan,
            ),
            _scheme_plan(
                network,
                MulticastScheme.BROADCAST_TAG,
                source,
                dest_set,
                _build_scheme3_plan,
            ),
        )
        if cache is not None:
            cache.put(key, plans)
    return plans


def _payload_combined(
    network: OmegaNetwork,
    source: NodeId,
    payload_bits: int,
    dest_set: frozenset[NodeId],
    commit: bool,
) -> MulticastResult:
    if not dest_set:
        return MulticastResult(
            MulticastScheme.COMBINED, source, dest_set, dest_set, ()
        )
    plans = _combined_plans(network, source, dest_set)
    best = min(plans, key=lambda plan: plan.cost_for(payload_bits))
    return _replay(network, best, payload_bits, commit)


def multicast_combined(
    network: OmegaNetwork,
    message: Message,
    dests: Iterable[NodeId],
    *,
    commit: bool = True,
) -> MulticastResult:
    """Probe schemes 1, 2 and 3 and commit the cheapest (eq. 8).

    Scheme 3 competes with its minimal enclosing subcube (over-delivering
    where the destination set is not itself a subcube), mirroring §3.4 where
    it addresses the whole block of ``n1`` adjacently-placed tasks.

    With memoised plans the probe is O(1) arithmetic per candidate
    (``n_loads * M + tag_total``), not three fabric walks; ties break in
    scheme order 1, 2, 3, exactly like the original probe-all-three path.
    """
    return _payload_combined(
        network, message.source, message.payload_bits, _freeze(dests), commit
    )


_DISPATCH = {
    MulticastScheme.UNICAST: multicast_scheme1,
    MulticastScheme.VECTOR: multicast_scheme2,
    MulticastScheme.COMBINED: multicast_combined,
}

_PAYLOAD_DISPATCH = {
    MulticastScheme.UNICAST: _payload_scheme1,
    MulticastScheme.VECTOR: _payload_scheme2,
    MulticastScheme.COMBINED: _payload_combined,
}


def multicast(
    network: OmegaNetwork,
    message: Message,
    dests: Iterable[NodeId],
    scheme: MulticastScheme = MulticastScheme.COMBINED,
    *,
    commit: bool = True,
) -> MulticastResult:
    """Deliver ``message`` to ``dests`` using ``scheme``.

    For :data:`MulticastScheme.BROADCAST_TAG` the enclosing subcube is used
    (over-delivery allowed), since protocol destination sets are arbitrary.
    """
    if scheme is MulticastScheme.BROADCAST_TAG:
        return multicast_scheme3(
            network, message, dests, exact=False, commit=commit
        )
    return _DISPATCH[scheme](network, message, dests, commit=commit)


def _payload_unicast_result(
    network: OmegaNetwork,
    source: NodeId,
    payload_bits: int,
    dest: NodeId,
    commit: bool,
) -> MulticastResult:
    plan = unicast_plan(network, source, dest)
    result = plan.result_get(payload_bits)
    if result is None:
        result = MulticastResult(
            MulticastScheme.UNICAST,
            source,
            plan.requested,
            plan.delivered,
            plan.loads_for(payload_bits),
        )
        plan.result_put(payload_bits, result)
    if commit:
        network.apply_plan_traffic(plan, payload_bits)
    return result


def unicast_result(
    network: OmegaNetwork,
    message: Message,
    dest: NodeId,
    *,
    commit: bool = True,
) -> MulticastResult:
    """A single-destination send as a :class:`MulticastResult`.

    This is the :class:`Multicaster` degenerate path: plain unicast under
    every scheme, memoised on the unicast plan so repeat sends allocate
    nothing.
    """
    return _payload_unicast_result(
        network, message.source, message.payload_bits, dest, commit
    )


def multicast_plan_for(
    network: OmegaNetwork,
    scheme: MulticastScheme,
    source: NodeId,
    dest_set: frozenset[NodeId],
    payload_bits: int,
) -> RoutePlan:
    """The exact plan :meth:`Multicaster.send_payload` would commit.

    This is the memoisation hook for the stable-state fast path: a
    ``(source, present-vector)`` pair fully determines the plan -- the
    scheme-2 split tree in particular is a pure function of it -- so a
    caller can fetch the plan once and replay it with
    :meth:`~repro.network.topology.OmegaNetwork.apply_plan_traffic_scaled`
    for bit-identical traffic without re-running scheme selection per
    send.  ``payload_bits`` only matters under the combined scheme, where
    it picks the eq. 8 winner (ties break in scheme order 1, 2, 3, like
    the send path).
    """
    if not dest_set:
        raise MulticastError("plan lookup needs at least one destination")
    if len(dest_set) == 1:
        # A single destination is plain unicast under every scheme.
        (dest,) = dest_set
        return unicast_plan(network, source, dest)
    if scheme is MulticastScheme.BROADCAST_TAG:
        # The send path over-delivers (exact=False) for arbitrary sets.
        return _scheme_plan(
            network,
            MulticastScheme.BROADCAST_TAG,
            source,
            dest_set,
            _build_scheme3_plan,
        )
    if scheme is MulticastScheme.COMBINED:
        plans = _combined_plans(network, source, dest_set)
        return min(plans, key=lambda plan: plan.cost_for(payload_bits))
    if scheme is MulticastScheme.UNICAST:
        return _scheme_plan(
            network,
            MulticastScheme.UNICAST,
            source,
            dest_set,
            _build_scheme1_plan,
        )
    return _scheme_plan(
        network,
        MulticastScheme.VECTOR,
        source,
        dest_set,
        _build_scheme2_plan,
    )


class Multicaster:
    """A network bound to a multicast scheme choice.

    The coherence protocols talk to the network exclusively through this
    object, so switching the protocol between schemes (for the ablation
    benchmarks) is a one-argument change.

    The :class:`~repro.network.message.Message`-free ``send_payload`` /
    ``send_payload_one`` entry points carry the two fields the fabric
    actually routes on (source port, payload size) and skip one object
    construction per protocol message -- the protocols' hot path.

    When the network carries a fault injector (``network.fault_injector``
    is not ``None``), every entry point first checks that the unique
    omega route to each destination is alive and raises
    :class:`~repro.errors.UnreachableRouteError` otherwise, *before* any
    traffic is accounted.  Both the memoised route-plan fast path and the
    cold re-walk path pass through these same entry points, so they see
    identical faults.
    """

    def __init__(
        self,
        network: OmegaNetwork,
        scheme: MulticastScheme = MulticastScheme.COMBINED,
        *,
        recorder=None,
    ) -> None:
        self.network = network
        self.scheme = scheme
        #: Optional :class:`~repro.obs.recorder.TraceRecorder` for
        #: network-only studies (no protocol in front): every payload
        #: entry point emits one ``net_send`` event when set.  Protocols
        #: trace at their own layer instead (``message`` events), so a
        #: protocol-driven multicaster keeps this ``None``.
        self.recorder = recorder

    def send(
        self, message: Message, dests: Sequence[NodeId] | frozenset[NodeId]
    ) -> MulticastResult:
        """Deliver ``message`` to ``dests`` and account its traffic."""
        return self.send_payload(message.source, message.payload_bits, dests)

    def send_one(self, message: Message, dest: NodeId) -> MulticastResult:
        """Unicast convenience wrapper with the same result type."""
        return self.send_payload_one(
            message.source, message.payload_bits, dest
        )

    def send_payload(
        self,
        source: NodeId,
        payload_bits: int,
        dests: Sequence[NodeId] | frozenset[NodeId],
    ) -> MulticastResult:
        """Deliver ``payload_bits`` from ``source`` to ``dests``."""
        dest_set = _freeze(dests)
        if not dest_set:
            return MulticastResult(
                self.scheme, source, dest_set, dest_set, ()
            )
        injector = self.network.fault_injector
        if injector is not None:
            for dest in dest_set:
                injector.check_route(source, dest)
        if len(dest_set) == 1:
            # A single destination is plain unicast under every scheme.
            (dest,) = dest_set
            result = _payload_unicast_result(
                self.network, source, payload_bits, dest, True
            )
        elif self.scheme is MulticastScheme.BROADCAST_TAG:
            result = _payload_scheme3(
                self.network, source, payload_bits, dest_set, True, False
            )
        else:
            result = _PAYLOAD_DISPATCH[self.scheme](
                self.network, source, payload_bits, dest_set, True
            )
        if self.recorder is not None:
            self.recorder.net_send(source, payload_bits, result)
        return result

    def send_payload_one(
        self, source: NodeId, payload_bits: int, dest: NodeId
    ) -> MulticastResult:
        """Unicast ``payload_bits`` from ``source`` to ``dest``."""
        injector = self.network.fault_injector
        if injector is not None:
            injector.check_route(source, dest)
        result = _payload_unicast_result(
            self.network, source, payload_bits, dest, True
        )
        if self.recorder is not None:
            self.recorder.net_send(source, payload_bits, result)
        return result
