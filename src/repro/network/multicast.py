"""The multicast schemes of §3, simulated switch by switch.

Three ways of delivering one message to ``n`` destination caches through the
omega network, plus the combined scheme of eq. 8:

* **Scheme 1** (:func:`multicast_scheme1`) -- one destination-tag unicast per
  destination.  Cost grows linearly in ``n`` (eq. 2) because common links are
  paid once per destination.
* **Scheme 2** (:func:`multicast_scheme2`) -- the ``N``-bit present-flag
  vector itself is the routing tag.  Every switch splits the vector in half
  and forwards each half only if it still names a destination, so common
  links are traversed once.  This is the paper's novel scheme.
* **Scheme 3** (:func:`multicast_scheme3`) -- Wen's broadcast-bit routing:
  a ``2m``-bit tag ``b_0..b_{m-1} d_0..d_{m-1}`` where ``b_i = 1`` makes
  stage ``i`` forward to both outputs.  It can only address a *subcube*
  (``2**l`` destinations whose addresses differ in ``l`` fixed bit
  positions); delivering to an arbitrary set means covering it with the
  minimal enclosing subcube and over-delivering.
* **Combined scheme** (:func:`multicast_combined`, eq. 8) -- probe all three
  and commit whichever is cheapest.

Every function both *measures* (returns the exact per-link loads) and
*accounts* (increments the network's link and switch counters), so closed
forms from :mod:`repro.network.cost` can be validated against what actually
flows through the fabric.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import MulticastError
from repro.network.link import LinkLoad
from repro.network.message import Message
from repro.network.routing import unicast
from repro.network.topology import OmegaNetwork
from repro.types import NodeId


class MulticastScheme(enum.Enum):
    """Which multicast algorithm moves the message through the network."""

    UNICAST = 1  # scheme 1: one unicast per destination
    VECTOR = 2  # scheme 2: present-flag vector as routing tag
    BROADCAST_TAG = 3  # scheme 3: Wen's broadcast-bit subcube routing
    COMBINED = 4  # eq. 8: cheapest of the three


@dataclass(frozen=True)
class MulticastResult:
    """Outcome of one multicast operation.

    ``delivered`` can be a strict superset of ``requested`` when scheme 3
    covers an arbitrary destination set with its minimal enclosing subcube;
    coherence actions in this system (write updates, invalidations, owner-id
    updates) are idempotent and ignorable by non-holders, so over-delivery
    is functionally harmless and only costs bits.
    """

    scheme: MulticastScheme
    source: NodeId
    requested: frozenset[NodeId]
    delivered: frozenset[NodeId]
    loads: tuple[LinkLoad, ...]

    @property
    def cost(self) -> int:
        """Bits placed on links (this operation's share of eq. 1)."""
        return sum(load.bits for load in self.loads)

    @property
    def links_used(self) -> int:
        """Distinct links touched (scheme 1 may touch one link repeatedly)."""
        return len({load.key for load in self.loads})


def _as_destset(network: OmegaNetwork, dests: Iterable[NodeId]) -> frozenset:
    dest_set = frozenset(dests)
    for dest in dest_set:
        if not 0 <= dest < network.n_ports:
            raise MulticastError(
                f"destination {dest} outside 0..{network.n_ports - 1}"
            )
    return dest_set


# ----------------------------------------------------------------------
# Scheme 1: repeated unicast
# ----------------------------------------------------------------------


def multicast_scheme1(
    network: OmegaNetwork,
    message: Message,
    dests: Iterable[NodeId],
    *,
    commit: bool = True,
) -> MulticastResult:
    """Deliver ``message`` by sending one scheme-1 unicast per destination."""
    dest_set = _as_destset(network, dests)
    loads: list[LinkLoad] = []
    for dest in sorted(dest_set):
        base = len(loads)
        for load in unicast(network, message, dest, commit=commit).loads:
            parent = None if load.parent is None else load.parent + base
            loads.append(
                LinkLoad(load.level, load.position, load.bits, parent)
            )
    return MulticastResult(
        MulticastScheme.UNICAST,
        message.source,
        dest_set,
        dest_set,
        tuple(loads),
    )


# ----------------------------------------------------------------------
# Scheme 2: present-flag vector routing
# ----------------------------------------------------------------------


def multicast_scheme2(
    network: OmegaNetwork,
    message: Message,
    dests: Iterable[NodeId],
    *,
    commit: bool = True,
) -> MulticastResult:
    """Deliver ``message`` using the present-flag vector as routing tag.

    The full ``N``-bit vector rides the level-0 link; each switch splits the
    incoming vector into two halves and forwards a half iff it still contains
    a set flag.  The vector shrinks to ``N / 2**i`` bits at link level ``i``,
    which is exactly the per-stage cost the paper tabulates for eq. 3.
    """
    dest_set = _as_destset(network, dests)
    sorted_dests = sorted(dest_set)
    n = network.n_ports
    m = network.n_stages
    loads: list[LinkLoad] = []
    if dest_set:
        # A branch is (link position, destination range [lo, hi), index of
        # the load that fed it); the range always has size N / 2**level
        # and contains >= 1 destination.
        branches: list[tuple[int, int, int, int]] = [
            (message.source, 0, n, 0)
        ]
        loads.append(LinkLoad(0, message.source, message.payload_bits + n))
        for stage in range(m):
            next_branches: list[tuple[int, int, int, int]] = []
            half = n >> (stage + 1)  # subvector length after the split
            for position, lo, hi, parent in branches:
                shuffled = network.shuffle(position)
                mid = (lo + hi) // 2
                lo_i = bisect.bisect_left(sorted_dests, lo)
                mid_i = bisect.bisect_left(sorted_dests, mid)
                hi_i = bisect.bisect_left(sorted_dests, hi)
                go_low = mid_i > lo_i
                go_high = hi_i > mid_i
                if commit:
                    network.switch_for_position(stage, shuffled).record(
                        split=go_low and go_high
                    )
                if go_low:
                    out = shuffled & ~1
                    next_branches.append((out, lo, mid, len(loads)))
                    loads.append(
                        LinkLoad(
                            stage + 1,
                            out,
                            message.payload_bits + half,
                            parent,
                        )
                    )
                if go_high:
                    out = shuffled | 1
                    next_branches.append((out, mid, hi, len(loads)))
                    loads.append(
                        LinkLoad(
                            stage + 1,
                            out,
                            message.payload_bits + half,
                            parent,
                        )
                    )
            branches = next_branches
        final_positions = {position for position, _, _, _ in branches}
        if final_positions != dest_set:
            raise MulticastError(
                f"scheme 2 routing reached {sorted(final_positions)} "
                f"instead of {sorted(dest_set)}"
            )
    if commit:
        for load in loads:
            network.link(load.level, load.position).carry(load.bits)
    return MulticastResult(
        MulticastScheme.VECTOR,
        message.source,
        dest_set,
        dest_set,
        tuple(loads),
    )


# ----------------------------------------------------------------------
# Scheme 3: broadcast-bit subcube routing
# ----------------------------------------------------------------------


def enclosing_subcube(
    network: OmegaNetwork, dests: Iterable[NodeId]
) -> tuple[int, int]:
    """Minimal subcube ``(base, varying_mask)`` covering ``dests``.

    The subcube contains every port agreeing with ``base`` on the bits
    *outside* ``varying_mask``; its size is ``2 ** popcount(varying_mask)``.
    """
    dest_list = sorted(_as_destset(network, dests))
    if not dest_list:
        raise MulticastError("cannot compute a subcube for zero destinations")
    base = dest_list[0]
    varying = 0
    for dest in dest_list[1:]:
        varying |= base ^ dest
    return base & ~varying, varying


def subcube_members(
    network: OmegaNetwork, base: int, varying_mask: int
) -> frozenset[NodeId]:
    """All ports of the subcube ``(base, varying_mask)``."""
    bits = [b for b in range(network.n_stages) if (varying_mask >> b) & 1]
    members = []
    for combo in range(1 << len(bits)):
        address = base
        for j, b in enumerate(bits):
            if (combo >> j) & 1:
                address |= 1 << b
        members.append(address)
    return frozenset(members)


def multicast_scheme3(
    network: OmegaNetwork,
    message: Message,
    dests: Iterable[NodeId],
    *,
    exact: bool = True,
    commit: bool = True,
) -> MulticastResult:
    """Deliver ``message`` with Wen's ``2m``-bit broadcast-bit routing tag.

    With ``exact=True`` the destination set must itself be a subcube (the
    restriction stated in §3.3); with ``exact=False`` the minimal enclosing
    subcube is used and the message is over-delivered.
    """
    dest_set = _as_destset(network, dests)
    if not dest_set:
        raise MulticastError("scheme 3 needs at least one destination")
    base, varying = enclosing_subcube(network, dest_set)
    delivered = subcube_members(network, base, varying)
    if exact and delivered != dest_set:
        raise MulticastError(
            f"destinations {sorted(dest_set)} do not form a subcube "
            f"(minimal cover has {len(delivered)} members); "
            f"pass exact=False to over-deliver"
        )

    m = network.n_stages
    loads: list[LinkLoad] = [
        LinkLoad(0, message.source, message.payload_bits + 2 * m)
    ]
    branches: list[tuple[int, int]] = [(message.source, 0)]
    for stage in range(m):
        # Stage i consumes b_i and d_i: MSB-first, stage i governs address
        # bit (m - 1 - stage).
        bit_index = m - 1 - stage
        broadcast = (varying >> bit_index) & 1
        tag_left = 2 * (m - stage - 1)
        next_branches: list[tuple[int, int]] = []
        for position, parent in branches:
            shuffled = network.shuffle(position)
            if broadcast:
                outs = [shuffled & ~1, shuffled | 1]
            else:
                outs = [(shuffled & ~1) | ((base >> bit_index) & 1)]
            if commit:
                network.switch_for_position(stage, shuffled).record(
                    split=bool(broadcast)
                )
            for out in outs:
                next_branches.append((out, len(loads)))
                loads.append(
                    LinkLoad(
                        stage + 1,
                        out,
                        message.payload_bits + tag_left,
                        parent,
                    )
                )
        branches = next_branches
    if frozenset(position for position, _ in branches) != delivered:
        raise MulticastError(
            f"scheme 3 routing reached "
            f"{sorted(position for position, _ in branches)} "
            f"instead of {sorted(delivered)}"
        )
    if commit:
        for load in loads:
            network.link(load.level, load.position).carry(load.bits)
    return MulticastResult(
        MulticastScheme.BROADCAST_TAG,
        message.source,
        dest_set,
        delivered,
        tuple(loads),
    )


# ----------------------------------------------------------------------
# Combined scheme (eq. 8)
# ----------------------------------------------------------------------


def multicast_combined(
    network: OmegaNetwork,
    message: Message,
    dests: Iterable[NodeId],
    *,
    commit: bool = True,
) -> MulticastResult:
    """Probe schemes 1, 2 and 3 and commit the cheapest (eq. 8).

    Scheme 3 competes with its minimal enclosing subcube (over-delivering
    where the destination set is not itself a subcube), mirroring §3.4 where
    it addresses the whole block of ``n1`` adjacently-placed tasks.
    """
    dest_set = _as_destset(network, dests)
    if not dest_set:
        return MulticastResult(
            MulticastScheme.COMBINED,
            message.source,
            dest_set,
            dest_set,
            (),
        )
    candidates = [
        multicast_scheme1(network, message, dest_set, commit=False),
        multicast_scheme2(network, message, dest_set, commit=False),
        multicast_scheme3(
            network, message, dest_set, exact=False, commit=False
        ),
    ]
    best = min(candidates, key=lambda result: result.cost)
    if not commit:
        return best
    if best.scheme is MulticastScheme.UNICAST:
        return multicast_scheme1(network, message, dest_set, commit=True)
    if best.scheme is MulticastScheme.VECTOR:
        return multicast_scheme2(network, message, dest_set, commit=True)
    return multicast_scheme3(
        network, message, dest_set, exact=False, commit=True
    )


_DISPATCH = {
    MulticastScheme.UNICAST: multicast_scheme1,
    MulticastScheme.VECTOR: multicast_scheme2,
    MulticastScheme.COMBINED: multicast_combined,
}


def multicast(
    network: OmegaNetwork,
    message: Message,
    dests: Iterable[NodeId],
    scheme: MulticastScheme = MulticastScheme.COMBINED,
    *,
    commit: bool = True,
) -> MulticastResult:
    """Deliver ``message`` to ``dests`` using ``scheme``.

    For :data:`MulticastScheme.BROADCAST_TAG` the enclosing subcube is used
    (over-delivery allowed), since protocol destination sets are arbitrary.
    """
    if scheme is MulticastScheme.BROADCAST_TAG:
        return multicast_scheme3(
            network, message, dests, exact=False, commit=commit
        )
    return _DISPATCH[scheme](network, message, dests, commit=commit)


class Multicaster:
    """A network bound to a multicast scheme choice.

    The coherence protocols talk to the network exclusively through this
    object, so switching the protocol between schemes (for the ablation
    benchmarks) is a one-argument change.
    """

    def __init__(
        self,
        network: OmegaNetwork,
        scheme: MulticastScheme = MulticastScheme.COMBINED,
    ) -> None:
        self.network = network
        self.scheme = scheme

    def send(
        self, message: Message, dests: Sequence[NodeId] | frozenset[NodeId]
    ) -> MulticastResult:
        """Deliver ``message`` to ``dests`` and account its traffic."""
        dest_set = frozenset(dests)
        if not dest_set:
            return MulticastResult(
                self.scheme, message.source, dest_set, dest_set, ()
            )
        if len(dest_set) == 1:
            # A single destination is plain unicast under every scheme.
            (dest,) = dest_set
            result = unicast(self.network, message, dest, commit=True)
            return MulticastResult(
                MulticastScheme.UNICAST,
                message.source,
                dest_set,
                dest_set,
                result.loads,
            )
        return multicast(self.network, message, dest_set, self.scheme)

    def send_one(self, message: Message, dest: NodeId) -> MulticastResult:
        """Unicast convenience wrapper with the same result type."""
        return self.send(message, (dest,))
