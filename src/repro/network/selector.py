"""The §5 hardware scheme selector: break-even registers.

The combined scheme of eq. 8 needs to know which of schemes 1, 2 and 3 is
cheapest for the current destination count.  Probing all three per message
(what :func:`~repro.network.multicast.multicast_combined` does) is the
oracle; §5 sketches the hardware realisation:

    "It should be possible for the compiler to determine both the message
    size and the maximum number of tasks and consequently break-even.
    Break-even for a whole data structure could be stored in some
    registers.  Hardware mechanisms could then use the contents of these
    registers together with the number of present flag bits that are set
    to determine which of the schemes to use."

:class:`BreakEvenRegisters` is that mechanism: two thresholds computed
once per data structure (from ``N``, ``n1`` and ``M``), consulted at send
time with nothing but a popcount of the present-flag vector.  The ablation
benchmark measures how close this O(1) decision gets to the probing
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network import cost
from repro.network.message import Message
from repro.network.multicast import (
    MulticastResult,
    MulticastScheme,
    _freeze,
    _payload_scheme1,
    _payload_scheme2,
    _payload_scheme3,
)
from repro.network.topology import OmegaNetwork
from repro.types import NodeId, is_power_of_two


@dataclass(frozen=True)
class BreakEvenRegisters:
    """The two per-data-structure registers of §5.

    ``scheme2_threshold`` -- smallest destination count at which scheme 2
    beats scheme 1; ``scheme3_threshold`` -- smallest count at which
    scheme 3 (addressing the whole ``n1`` partition) beats scheme 2.
    Either may exceed ``n_partition``, meaning the later scheme never
    wins for this structure.
    """

    network_size: int
    n_partition: int
    message_bits: int
    scheme2_threshold: int
    scheme3_threshold: int

    def choose(self, n_destinations: int) -> MulticastScheme:
        """O(1) scheme choice from a present-flag popcount."""
        if n_destinations < 1:
            raise ConfigurationError(
                f"need at least one destination, got {n_destinations}"
            )
        if n_destinations >= self.scheme3_threshold:
            return MulticastScheme.BROADCAST_TAG
        if n_destinations >= self.scheme2_threshold:
            return MulticastScheme.VECTOR
        return MulticastScheme.UNICAST


def compile_registers(
    network_size: int, n_partition: int, message_bits: int
) -> BreakEvenRegisters:
    """What the §5 compiler does: precompute the two break-even registers.

    Thresholds are computed from the closed forms at power-of-two
    destination counts (the costs are compared through eq. 2, eq. 6 and
    eq. 5 -- destinations are assumed to lie in the ``n1`` partition).
    """
    if not is_power_of_two(network_size) or network_size < 4:
        raise ConfigurationError(
            f"network size must be a power of two >= 4, got {network_size}"
        )
    if not is_power_of_two(n_partition) or n_partition > network_size:
        raise ConfigurationError(
            f"n_partition must be a power of two <= N, got {n_partition}"
        )
    if message_bits < 0:
        raise ConfigurationError(
            f"message size must be non-negative, got {message_bits}"
        )

    never = n_partition + 1  # sentinel: the scheme never takes over

    scheme2 = never
    n = 1
    while n <= n_partition:
        if cost.cc2_prime(
            n, n_partition, network_size, message_bits
        ) < cost.cc1(n, network_size, message_bits):
            scheme2 = n
            break
        n *= 2

    scheme3 = never
    n = 1
    while n <= n_partition:
        in_front = min(
            cost.cc1(n, network_size, message_bits),
            cost.cc2_prime(n, n_partition, network_size, message_bits),
        )
        if cost.cc3(n_partition, network_size, message_bits) < in_front:
            scheme3 = n
            break
        n *= 2

    return BreakEvenRegisters(
        network_size=network_size,
        n_partition=n_partition,
        message_bits=message_bits,
        scheme2_threshold=scheme2,
        scheme3_threshold=max(scheme3, scheme2),
    )


class RegisterMulticaster:
    """A multicaster that decides by registers instead of probing.

    Drop-in alternative to
    :class:`~repro.network.multicast.Multicaster`: the protocol hands it
    a destination set; it popcounts, consults the registers, and commits
    one scheme.  Scheme 3 addresses the destination set's minimal
    enclosing subcube (over-delivering, as in §3.4).
    """

    def __init__(
        self, network: OmegaNetwork, registers: BreakEvenRegisters
    ) -> None:
        if registers.network_size != network.n_ports:
            raise ConfigurationError(
                f"registers compiled for N={registers.network_size}, "
                f"network has {network.n_ports} ports"
            )
        self.network = network
        self.registers = registers

    def send(
        self, message: Message, dests
    ) -> MulticastResult:
        return self.send_payload(message.source, message.payload_bits, dests)

    def send_one(self, message: Message, dest: NodeId) -> MulticastResult:
        return self.send_payload(message.source, message.payload_bits, (dest,))

    def send_payload(
        self, source: NodeId, payload_bits: int, dests
    ) -> MulticastResult:
        """Deliver ``payload_bits`` from ``source``, deciding by registers."""
        # Already-frozen destination sets pass through unchanged, so
        # repeated sends to the same copy-set hit the network's plan cache
        # without re-hashing a rebuilt set.
        dest_set = _freeze(dests)
        if not dest_set:
            return MulticastResult(
                MulticastScheme.COMBINED, source, dest_set, dest_set, ()
            )
        scheme = self.registers.choose(len(dest_set))
        if scheme is MulticastScheme.UNICAST:
            return _payload_scheme1(
                self.network, source, payload_bits, dest_set, True
            )
        if scheme is MulticastScheme.VECTOR:
            return _payload_scheme2(
                self.network, source, payload_bits, dest_set, True
            )
        return _payload_scheme3(
            self.network, source, payload_bits, dest_set, True, False
        )

    def send_payload_one(
        self, source: NodeId, payload_bits: int, dest: NodeId
    ) -> MulticastResult:
        return self.send_payload(source, payload_bits, (dest,))


def register_table(
    network_size: int,
    partitions: tuple[int, ...] = (16, 64, 128),
    message_sizes: tuple[int, ...] = (0, 20, 60),
) -> list[tuple[int, int, int, int]]:
    """Rows ``(n1, M, scheme2_threshold, scheme3_threshold)``.

    The per-data-structure register file a §5 compiler would emit; the
    ``log2`` of each threshold is what the hardware actually stores
    (``2 log2 n1`` bits per structure).
    """
    rows = []
    for n_partition in partitions:
        for message_bits in message_sizes:
            registers = compile_registers(
                network_size, n_partition, message_bits
            )
            rows.append(
                (
                    n_partition,
                    message_bits,
                    registers.scheme2_threshold,
                    registers.scheme3_threshold,
                )
            )
    return rows
