"""Generalisation to ``a x a`` switches (the §3 remark, made concrete).

"Given an N x N network composed of a x a switches, the number of stages
is m = log_a N ...  we shall restrict the discussion of possible multicast
schemes to omega networks composed of 2 x 2 switches even if the results
can be generalized to other topologies of multistage networks with other
switches."

This module is that generalisation: a radix-``a`` omega network (base-``a``
perfect shuffle, ``m = log_a N`` stages of ``a x a`` switches) with the
three multicast schemes carried over:

* scheme 1 -- the routing tag is ``m`` base-``a`` digits, one consumed per
  stage (``ceil(log2 a)`` bits each);
* scheme 2 -- the ``N``-bit present vector splits into ``a`` parts at each
  switch, shrinking to ``N / a**level`` bits;
* scheme 3 -- per stage, a broadcast flag plus a digit: flagged stages
  forward to all ``a`` outputs (so it addresses ``a**l``-sized aligned
  blocks).

Costs are computed both by per-stage summation
(:func:`cc1_radix` ... :func:`cc3_radix`) and by routing messages through
the simulated fabric; the tests check they coincide, and that radix 2
reproduces the 2 x 2 closed forms of :mod:`repro.network.cost` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, MulticastError
from repro.network.link import Link, LinkLoad
from repro.network.message import Message
from repro.types import NodeId


def digit_bits(radix: int) -> int:
    """Bits to encode one base-``radix`` routing digit."""
    if radix < 2:
        raise ConfigurationError(f"radix must be >= 2, got {radix}")
    return (radix - 1).bit_length()


def _check_geometry(n_ports: int, radix: int) -> int:
    """Validate ``n_ports == radix**m`` and return ``m``."""
    if radix < 2:
        raise ConfigurationError(f"radix must be >= 2, got {radix}")
    if n_ports < radix:
        raise ConfigurationError(
            f"need at least {radix} ports, got {n_ports}"
        )
    m = 0
    value = 1
    while value < n_ports:
        value *= radix
        m += 1
    if value != n_ports:
        raise ConfigurationError(
            f"{n_ports} is not a power of radix {radix}"
        )
    return m


class RadixOmegaNetwork:
    """An ``N x N`` omega network of ``a x a`` switches.

    Mirrors :class:`~repro.network.topology.OmegaNetwork` (which is the
    hand-optimised ``a = 2`` case) with the same link-level accounting:
    ``m + 1`` link levels of ``N`` links each.
    """

    def __init__(self, n_ports: int, radix: int) -> None:
        self.n_ports = n_ports
        self.radix = radix
        self.n_stages = _check_geometry(n_ports, radix)
        self._links: list[list[Link]] = [
            [Link(level, position) for position in range(n_ports)]
            for level in range(self.n_stages + 1)
        ]

    # ------------------------------------------------------------------

    def shuffle(self, position: int) -> int:
        """Base-``a`` perfect shuffle: rotate the digit string left."""
        self._check_port(position)
        top_weight = self.n_ports // self.radix
        return (
            position % top_weight
        ) * self.radix + position // top_weight

    def digit(self, port: int, stage: int) -> int:
        """Base-``a`` digit of ``port`` consumed at ``stage`` (MSD first)."""
        self._check_port(port)
        if not 0 <= stage < self.n_stages:
            raise ConfigurationError(
                f"stage {stage} outside 0..{self.n_stages - 1}"
            )
        weight = self.radix ** (self.n_stages - 1 - stage)
        return (port // weight) % self.radix

    def route_positions(self, source: NodeId, dest: NodeId) -> list[int]:
        """Link positions at levels ``0 .. m`` from ``source`` to ``dest``."""
        self._check_port(source)
        self._check_port(dest)
        positions = [source]
        x = source
        for stage in range(self.n_stages):
            x = self.shuffle(x)
            x = (x - x % self.radix) + self.digit(dest, stage)
            positions.append(x)
        return positions

    def link(self, level: int, position: int) -> Link:
        if not 0 <= level <= self.n_stages:
            raise ConfigurationError(
                f"link level must be in 0..{self.n_stages}, got {level}"
            )
        self._check_port(position)
        return self._links[level][position]

    def iter_links(self):
        for level_links in self._links:
            yield from level_links

    @property
    def total_bits(self) -> int:
        return sum(link.bits for link in self.iter_links())

    def reset_traffic(self) -> None:
        for link in self.iter_links():
            link.reset()

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise ConfigurationError(
                f"port {port} outside 0..{self.n_ports - 1}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RadixOmegaNetwork(n_ports={self.n_ports}, "
            f"radix={self.radix})"
        )


@dataclass(frozen=True)
class RadixMulticastResult:
    """Outcome of a radix multicast (cost + delivery set)."""

    source: NodeId
    delivered: frozenset[NodeId]
    loads: tuple[LinkLoad, ...]

    @property
    def cost(self) -> int:
        return sum(load.bits for load in self.loads)


def _commit(network: RadixOmegaNetwork, loads, commit: bool) -> None:
    if commit:
        for load in loads:
            network.link(load.level, load.position).carry(load.bits)


# ----------------------------------------------------------------------
# Scheme 1 (radix)
# ----------------------------------------------------------------------


def radix_unicast(
    network: RadixOmegaNetwork,
    message: Message,
    dest: NodeId,
    *,
    commit: bool = True,
) -> RadixMulticastResult:
    """Digit-tag unicast: ``m`` digits, one stripped per stage."""
    bits = digit_bits(network.radix)
    loads = []
    for level, position in enumerate(
        network.route_positions(message.source, dest)
    ):
        tag = (network.n_stages - level) * bits
        loads.append(LinkLoad(level, position, message.payload_bits + tag))
    _commit(network, loads, commit)
    return RadixMulticastResult(
        message.source, frozenset((dest,)), tuple(loads)
    )


def radix_multicast_scheme1(
    network: RadixOmegaNetwork,
    message: Message,
    dests,
    *,
    commit: bool = True,
) -> RadixMulticastResult:
    """One digit-tag unicast per destination."""
    loads: list[LinkLoad] = []
    dest_set = frozenset(dests)
    for dest in sorted(dest_set):
        loads.extend(
            radix_unicast(network, message, dest, commit=commit).loads
        )
    return RadixMulticastResult(message.source, dest_set, tuple(loads))


def cc1_radix(
    n: int, n_ports: int, radix: int, message_bits: int
) -> int:
    """Generalised eq. 2: ``n * sum_{i=0}^{m} (M + (m - i) b)``."""
    m = _check_geometry(n_ports, radix)
    bits = digit_bits(radix)
    per_path = sum(message_bits + (m - i) * bits for i in range(m + 1))
    return n * per_path


# ----------------------------------------------------------------------
# Scheme 2 (radix)
# ----------------------------------------------------------------------


def radix_multicast_scheme2(
    network: RadixOmegaNetwork,
    message: Message,
    dests,
    *,
    commit: bool = True,
) -> RadixMulticastResult:
    """Present-vector routing: the vector splits ``a`` ways per switch."""
    dest_set = frozenset(dests)
    if not dest_set:
        return RadixMulticastResult(message.source, dest_set, ())
    sorted_dests = sorted(dest_set)
    import bisect

    n = network.n_ports
    a = network.radix
    loads = [LinkLoad(0, message.source, message.payload_bits + n)]
    branches: list[tuple[int, int, int]] = [(message.source, 0, n)]
    for stage in range(network.n_stages):
        next_branches: list[tuple[int, int, int]] = []
        part = n // a ** (stage + 1)
        for position, lo, hi in branches:
            shuffled = network.shuffle(position)
            base = shuffled - shuffled % a
            for way in range(a):
                part_lo = lo + way * part
                part_hi = part_lo + part
                start = bisect.bisect_left(sorted_dests, part_lo)
                if start == len(sorted_dests) or (
                    sorted_dests[start] >= part_hi
                ):
                    continue
                out = base + way
                next_branches.append((out, part_lo, part_hi))
                loads.append(
                    LinkLoad(
                        stage + 1, out, message.payload_bits + part
                    )
                )
        branches = next_branches
    reached = frozenset(position for position, _, _ in branches)
    if reached != dest_set:
        raise MulticastError(
            f"radix scheme 2 reached {sorted(reached)} "
            f"instead of {sorted(dest_set)}"
        )
    _commit(network, loads, commit)
    return RadixMulticastResult(message.source, dest_set, tuple(loads))


def cc2_worst_radix(
    n: int, n_ports: int, radix: int, message_bits: int
) -> int:
    """Generalised eq. 3 for ``n = a**k`` maximally spread destinations.

    Branch count multiplies by ``a`` through level ``k``, then stays at
    ``n``; link level ``i`` carries ``M + N / a**i`` bits.
    """
    m = _check_geometry(n_ports, radix)
    k = 0
    value = 1
    while value < n:
        value *= radix
        k += 1
    if value != n or k > m:
        raise ConfigurationError(
            f"n={n} must be a power of radix {radix} at most {n_ports}"
        )
    total = 0
    for i in range(k + 1):
        total += radix**i * (message_bits + n_ports // radix**i)
    for i in range(k + 1, m + 1):
        total += n * (message_bits + n_ports // radix**i)
    return total


# ----------------------------------------------------------------------
# Scheme 3 (radix)
# ----------------------------------------------------------------------


def radix_multicast_scheme3(
    network: RadixOmegaNetwork,
    message: Message,
    dests,
    *,
    commit: bool = True,
) -> RadixMulticastResult:
    """Broadcast-digit routing to an aligned block of ``a**l`` ports.

    The tag holds, per stage, a broadcast flag and a digit
    (``1 + ceil(log2 a)`` bits), stripped stage by stage.
    """
    dest_set = frozenset(dests)
    if not dest_set:
        raise MulticastError("scheme 3 needs at least one destination")
    lo, hi = min(dest_set), max(dest_set) + 1
    size = hi - lo
    a = network.radix
    l = 0
    value = 1
    while value < size:
        value *= a
        l += 1
    if (
        value != size
        or lo % size != 0
        or dest_set != frozenset(range(lo, hi))
    ):
        raise MulticastError(
            f"radix scheme 3 needs an aligned block of a**l ports, "
            f"got {sorted(dest_set)}"
        )
    bits = 1 + digit_bits(a)
    m = network.n_stages
    loads = [LinkLoad(0, message.source, message.payload_bits + m * bits)]
    branches = [message.source]
    for stage in range(m):
        broadcast = stage >= m - l
        tag_left = (m - stage - 1) * bits
        next_branches = []
        for position in branches:
            shuffled = network.shuffle(position)
            base = shuffled - shuffled % a
            ways = (
                range(a)
                if broadcast
                else (network.digit(lo, stage),)
            )
            for way in ways:
                out = base + way
                next_branches.append(out)
                loads.append(
                    LinkLoad(
                        stage + 1, out, message.payload_bits + tag_left
                    )
                )
        branches = next_branches
    if frozenset(branches) != dest_set:
        raise MulticastError(
            f"radix scheme 3 reached {sorted(frozenset(branches))} "
            f"instead of {sorted(dest_set)}"
        )
    _commit(network, loads, commit)
    return RadixMulticastResult(message.source, dest_set, tuple(loads))


def cc3_radix(
    n1: int, n_ports: int, radix: int, message_bits: int
) -> int:
    """Generalised eq. 5 for an aligned block of ``n1 = a**l`` ports."""
    m = _check_geometry(n_ports, radix)
    l = 0
    value = 1
    while value < n1:
        value *= radix
        l += 1
    if value != n1 or l > m:
        raise ConfigurationError(
            f"n1={n1} must be a power of radix {radix} at most {n_ports}"
        )
    bits = 1 + digit_bits(radix)
    total = 0
    for i in range(m - l + 1):
        total += message_bits + (m - i) * bits
    for j in range(1, l + 1):
        total += radix**j * (message_bits + (l - j) * bits)
    return total
