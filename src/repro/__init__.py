"""repro -- a reproduction of Stenström's two-mode cache consistency
protocol for multiprocessors with multistage networks (ISCA 1989).

The package provides, from the bottom up:

* :mod:`repro.network` -- an omega-network simulator with per-link traffic
  accounting, the three multicast schemes of §3 and all of the paper's
  closed-form communication costs (eqs. 1-8);
* :mod:`repro.cache` / :mod:`repro.memory` -- the cache and memory-module
  substrate, including the distributed state field and the block store;
* :mod:`repro.protocol` -- the two-mode protocol itself (§2), the mode
  selection policies (§4/§5), and the baseline protocols it is compared
  against (write-once, full-map directory, no cache);
* :mod:`repro.sim` -- a verifying trace-driven simulation engine;
* :mod:`repro.workloads` -- reference-trace generators;
* :mod:`repro.analysis` -- the harness regenerating every table and figure
  of the paper's evaluation;
* :mod:`repro.runner` -- parallel, cached, observable execution of
  declarative experiment grids (specs, worker fan-out, result cache,
  run journal);
* :mod:`repro.faults` -- deterministic fault injection (message drops,
  duplicates, delays, dead links/switches) with protocol-level recovery
  and chaos campaigns;
* :mod:`repro.obs` -- structured tracing (virtual-clock trace records,
  JSONL / Chrome-trace exporters), a metrics registry, and per-link /
  per-switch utilization heatmaps.

Quickstart::

    from repro import (
        Mode, StenstromProtocol, System, SystemConfig, run_trace,
    )
    from repro.workloads import markov_block_trace

    system = System(SystemConfig(n_nodes=8))
    protocol = StenstromProtocol(system)
    trace = markov_block_trace(
        8, tasks=range(4), write_fraction=0.1, n_references=500
    )
    report = run_trace(protocol, trace)
    print(report.summary())
"""

from repro.cache import Cache, CacheState, Mode, StateField
from repro.errors import (
    CoherenceError,
    ConfigurationError,
    ExecutionError,
    FaultInjectionError,
    MulticastError,
    NetworkError,
    ProtocolError,
    ReproError,
    TraceError,
    TransientNetworkError,
    UnreachableRouteError,
)
from repro.faults import FaultPlan
from repro.memory import BlockStore, MemoryModule
from repro.obs import MetricsRegistry, TraceRecorder
from repro.network import (
    Multicaster,
    MulticastScheme,
    OmegaNetwork,
)
from repro.protocol import (
    AdaptiveModePolicy,
    CoherenceProtocol,
    FullMapProtocol,
    LimitedPointerProtocol,
    MessageCosts,
    NoCacheProtocol,
    OracleModePolicy,
    StaticModePolicy,
    StenstromProtocol,
    WriteOnceProtocol,
    write_fraction_threshold,
)
from repro.sim import (
    SimulationReport,
    System,
    SystemConfig,
    Trace,
    load_trace,
    run_trace,
    save_trace,
)
from repro.types import Address, Op, Reference

__version__ = "1.0.0"

__all__ = [
    "AdaptiveModePolicy",
    "Address",
    "BlockStore",
    "Cache",
    "CacheState",
    "CoherenceError",
    "CoherenceProtocol",
    "ConfigurationError",
    "ExecutionError",
    "FaultInjectionError",
    "FaultPlan",
    "FullMapProtocol",
    "LimitedPointerProtocol",
    "MemoryModule",
    "MessageCosts",
    "MetricsRegistry",
    "Mode",
    "MulticastError",
    "MulticastScheme",
    "Multicaster",
    "NetworkError",
    "NoCacheProtocol",
    "OmegaNetwork",
    "Op",
    "OracleModePolicy",
    "ProtocolError",
    "Reference",
    "ReproError",
    "SimulationReport",
    "StateField",
    "StaticModePolicy",
    "StenstromProtocol",
    "System",
    "SystemConfig",
    "Trace",
    "TraceError",
    "TraceRecorder",
    "TransientNetworkError",
    "UnreachableRouteError",
    "WriteOnceProtocol",
    "load_trace",
    "run_trace",
    "save_trace",
    "write_fraction_threshold",
]
