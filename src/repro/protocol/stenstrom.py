"""The paper's two-mode cache consistency protocol (§2).

Ownership-based, with the state information *distributed to the caches*:
the owner of a block holds the present-flag vector and the mode (DW) bit;
the memory module's block store only remembers who the owner is.  Every
behaviour of §2.2 is implemented:

1. read hit -- local;
2. read miss -- via the memory module (copy nonexistent) or directly via
   the OWNER field (invalid placeholder), served with a block copy in
   distributed-write mode or a single datum in global-read mode;
3. write hit -- local for exclusive/global-read owners, multicast update
   for non-exclusive distributed-write owners, ownership acquisition for
   UnOwned copies;
4. write miss -- load-with-ownership via the memory module;
5. block replacement -- write-back / block-store exclusion for exclusive
   owners, ownership hand-off for non-exclusive owners, present-flag
   clearing for UnOwned copies and placeholders;
6./7. mode switching (``set_mode``), including the invalidation multicast
   when leaving distributed-write mode.

Deviations from the paper's letter, all in corners the paper leaves
unspecified, are documented inline:

* modified exclusive owners fold the block-store exclusion into the
  write-back message (one message instead of two);
* a replacing non-exclusive owner whose every hand-off candidate NAKs
  falls back to the exclusive replacement path;
* switching a block from global-read to distributed-write mode resets the
  present vector to the owner alone, since the placeholders it tracked
  hold no copies.  Their stale OWNER fields are repaired lazily: a direct
  load arriving at a non-owner follows that cache's own OWNER field
  (transfer history forms a pointer chain that always leads to the current
  owner) and falls back to the memory module at a dead end.
"""

from __future__ import annotations

from repro.cache.cache import Cache
from repro.cache.entry import CacheEntry
from repro.cache.state import CacheState, Mode, StateField
from repro.errors import (
    FaultInjectionError,
    ProtocolError,
    TransientNetworkError,
    UnreachableRouteError,
)
from repro.protocol.base import CoherenceProtocol
from repro.protocol.fastpath import FastPathTable
from repro.protocol.invariants import check_stenstrom
from repro.protocol.messages import MsgKind
from repro.protocol.modes import ModePolicy
from repro.sim import stats as ev
from repro.sim.kernel import BatchedKernel
from repro.sim.system import System
from repro.types import Address, BlockId, NodeId, Op


class StenstromProtocol(CoherenceProtocol):
    """The two-mode protocol over a :class:`~repro.sim.system.System`.

    Parameters
    ----------
    system:
        The machine to drive.
    default_mode:
        Mode a block enters on first load.  The paper loads blocks in
        global-read mode and lets software switch them; pinning the default
        to distributed-write turns the protocol into the pure
        distributed-write comparison point of §4.
    mode_policy:
        Optional :class:`~repro.protocol.modes.ModePolicy` consulted after
        every reference; when it asks for a switch the owner executes
        ``set_mode`` (§5's hardware selector).
    """

    name = "stenstrom-two-mode"

    def __init__(
        self,
        system: System,
        *,
        default_mode: Mode = Mode.GLOBAL_READ,
        mode_policy: ModePolicy | None = None,
    ) -> None:
        super().__init__(system)
        self.default_mode = default_mode
        self.mode_policy = mode_policy
        #: Blocks degraded to memory-direct service after a dead route
        #: made their owner (or a sharer) unreachable.  Only ever grows;
        #: empty for the lifetime of a fault-free system.
        self._uncacheable: set[BlockId] = set()
        self._fastpath: FastPathTable | None = None
        self._batched_kernel: BatchedKernel | None = None
        # Hot message costs, precomputed once; each is a pure function of
        # the (immutable) system configuration.
        costs = system.costs
        words = system.config.block_size_words
        self._cost_request = costs.request()
        self._cost_ack = costs.ack()
        self._cost_word = costs.word_data()
        self._cost_block = costs.block_data(words)
        self._cost_word_owner = costs.word_and_owner(system.n_nodes)

    # ------------------------------------------------------------------
    # Small accessors
    # ------------------------------------------------------------------

    def _cache(self, node: NodeId) -> Cache:
        return self.system.caches[node]

    def _block_words(self) -> int:
        return self.system.config.block_size_words

    def _owner_of(self, block: BlockId) -> NodeId | None:
        return self.system.memory_for(block).block_store.owner_of(block)

    def _classify_miss(self, block: BlockId) -> None:
        """Cold (no cached copy anywhere) vs coherence miss accounting."""
        self.stats.count(
            ev.COLD_MISSES
            if self._owner_of(block) is None
            else ev.COHERENCE_MISSES
        )

    def _owner_entry(self, block: BlockId) -> tuple[NodeId, CacheEntry]:
        """The current owner and its entry; raises if bookkeeping broke."""
        owner = self._owner_of(block)
        if owner is None:
            raise ProtocolError(f"block {block} has no recorded owner")
        entry = self._cache(owner).find(block)
        if entry is None or not entry.state_field.owned:
            raise ProtocolError(
                f"block store says cache {owner} owns block {block}, "
                f"but it does not"
            )
        return owner, entry

    # ------------------------------------------------------------------
    # Stable-state fast path
    # ------------------------------------------------------------------

    def fastpath(self) -> FastPathTable | None:
        """The replay fast-path table, when the shortcut is sound.

        Fault injection can degrade blocks and kill routes mid-reference,
        an attached recorder must see every reference as a span, and the
        message log must receive a ``LoggedMessage`` per send; each makes
        the memoised per-reference answer incomplete, so those
        configurations replay entirely on the slow path.
        """
        if (
            self.system.fault_injector is not None
            or self.recorder is not None
            or self.message_log is not None
        ):
            return None
        if self._fastpath is None:
            self._fastpath = FastPathTable(self)
        return self._fastpath

    def batched_kernel(self) -> BatchedKernel | None:
        """The batched columnar kernel, when chunked replay is sound.

        Everything that gates :meth:`fastpath` gates this too.  On top of
        that, a chunk validates its records once and then skips the
        per-reference policy consultation, so a mode policy must declare
        itself ``batchable`` (observe a no-op, decide pure); the counting
        policies are order-dependent and force the per-reference table.
        """
        table = self.fastpath()
        if table is None:
            return None
        policy = self.mode_policy
        if policy is not None and not policy.batchable:
            return None
        if self._batched_kernel is None:
            self._batched_kernel = BatchedKernel(self, table)
        return self._batched_kernel

    # ------------------------------------------------------------------
    # Processor interface
    # ------------------------------------------------------------------

    def read(self, node: NodeId, address: Address) -> int:
        """§2.2 items 1 and 2."""
        self.system.check_address(address)
        self.stats.count(ev.READS)
        if self.system.fault_injector is None:
            return self._read_body(node, address)
        while True:
            try:
                return self._read_body(node, address)
            except UnreachableRouteError as exc:
                self._recover_dead_route(exc, address.block)
            except TransientNetworkError as exc:
                self._recover_retry_exhaustion(exc, address.block)

    def _read_body(self, node: NodeId, address: Address) -> int:
        block, offset = address
        if block in self._uncacheable:
            return self._memory_direct_read(node, address)
        self._active_block = block
        entry = self._cache(node).find(block)
        if entry is not None and entry.state_field.valid:
            self.stats.count(ev.READ_HITS)
            self._cache(node).touch(block)
            value = entry.read_word(offset)
        else:
            self.stats.count(ev.READ_MISSES)
            self._classify_miss(block)
            if entry is not None:
                value = self._read_miss_direct(node, address, entry)
            else:
                value = self._read_miss_via_memory(node, address)
        self._consult_mode_policy(node, block, Op.READ)
        return value

    def write(self, node: NodeId, address: Address, value: int) -> None:
        """§2.2 items 3 and 4."""
        self.system.check_address(address)
        self.stats.count(ev.WRITES)
        if self.system.fault_injector is None:
            self._write_body(node, address, value)
            return
        while True:
            try:
                self._write_body(node, address, value)
                return
            except UnreachableRouteError as exc:
                self._recover_dead_route(exc, address.block)
            except TransientNetworkError as exc:
                self._recover_retry_exhaustion(exc, address.block)

    def _write_body(
        self, node: NodeId, address: Address, value: int
    ) -> None:
        block, offset = address
        if block in self._uncacheable:
            self._memory_direct_write(node, address, value)
            return
        self._active_block = block
        entry = self._cache(node).find(block)
        if entry is not None and entry.state_field.valid:
            self.stats.count(ev.WRITE_HITS)
            self._cache(node).touch(block)
            if not entry.state_field.owned:
                # Write hit on an UnOwned copy: acquire ownership (3d).
                self._acquire_ownership(node, block)
        else:
            self.stats.count(ev.WRITE_MISSES)
            self._classify_miss(block)
            entry = self._miss_acquire_ownership(node, block)
        self._perform_owner_write(node, entry, offset, value)
        self._consult_mode_policy(node, block, Op.WRITE)

    # ------------------------------------------------------------------
    # Graceful degradation under dead routes (fault injection only)
    # ------------------------------------------------------------------
    #
    # A dead link or switch makes some (source, dest) pairs permanently
    # unreachable -- the omega network has exactly one path per pair.  The
    # protocol cannot keep distributed state for a block whose sharers can
    # no longer all talk, so it retreats to the one agent every port can
    # still be served by deterministically: home memory.  Degrading a
    # block writes back the freshest copy, purges every cache entry and
    # the block-store record, and marks the block uncacheable; from then
    # on reads and writes are served memory-direct (the no-cache idiom).
    # All six structural invariants hold trivially for a degraded block
    # (no copies, no owner), and the shadow-memory value check holds
    # because the freshest data reached memory before the purge.

    @property
    def uncacheable_blocks(self) -> frozenset[BlockId]:
        """Blocks degraded to memory-direct service (empty without faults)."""
        return frozenset(self._uncacheable)

    def _recover_dead_route(
        self, exc: UnreachableRouteError, fallback_block: BlockId
    ) -> None:
        """Reference-level recovery: degrade the block that hit the fault."""
        block = exc.block if exc.block is not None else fallback_block
        if block in self._uncacheable:
            # Degraded blocks never route through the recovering send
            # paths, so reaching this means recovery is not making
            # progress; refuse to loop forever.
            raise FaultInjectionError(
                f"recovery loop: block {block} hit a dead route after "
                f"it was already degraded"
            ) from exc
        self._degrade_block(
            block, cause="dead_route", source=exc.source, dest=exc.dest
        )

    def _recover_retry_exhaustion(
        self, exc: TransientNetworkError, fallback_block: BlockId
    ) -> None:
        """Reference-level recovery from an exhausted *multicast* budget.

        A unicast send that exhausts its retry budget leaves every
        protocol data structure exactly as it was, so the exception
        propagates to the caller unchanged (the historical contract).  A
        *multicast re-send* budget exhausting is different: the update
        was partially delivered and the owner's copy already mutated, so
        aborting would strand incoherent state.  The block is degraded to
        memory-direct service instead -- the same retreat used for dead
        routes -- and the reference retries against memory.  Both the
        exhaustion and the degradation land in the structured fault log
        as *distinct* events naming the destinations that starved.
        """
        if not exc.multicast:
            raise exc
        block = exc.block if exc.block is not None else fallback_block
        if block in self._uncacheable:
            raise FaultInjectionError(
                f"recovery loop: block {block} exhausted a multicast "
                f"retry budget after it was already degraded"
            ) from exc
        dests = list(exc.dests)
        self.stats.record_fault(
            ev.FAULT_RETRY_EXHAUSTED,
            block=block,
            kind=exc.kind,
            dests=dests,
        )
        if self.recorder is not None:
            self.recorder.fault(
                ev.FAULT_RETRY_EXHAUSTED,
                exc.source if exc.source is not None else self.home(block),
                block=block,
                dests=dests,
            )
        self._degrade_block(
            block, cause="retry_exhausted", dests=tuple(exc.dests)
        )

    def _degrade_block(
        self,
        block: BlockId,
        *,
        cause: str | None = None,
        source: NodeId | None = None,
        dest: NodeId | None = None,
        dests: tuple[NodeId, ...] = (),
    ) -> None:
        system = self.system
        memory = system.memory_for(block)
        home = self.home(block)
        # Write back the freshest data first.  At every point a dead
        # route can surface, at most one cache holds a valid modified
        # entry (the owner, possibly mid-transfer), and in DW mode all
        # valid copies are identical -- so the first modified entry in
        # node order is the freshest copy, deterministically.
        for cache in system.caches:
            entry = cache.find(block)
            if (
                entry is not None
                and entry.state_field.valid
                and entry.state_field.modified
            ):
                self._send_unguarded(
                    MsgKind.WRITEBACK,
                    cache.node_id,
                    home,
                    system.costs.block_data(self._block_words()),
                )
                memory.write_block(block, list(entry.data))
                self.stats.count(ev.WRITEBACKS)
                break
        for cache in system.caches:
            if cache.find(block) is not None:
                cache.drop(block)
        memory.block_store.clear(block)
        self._uncacheable.add(block)
        self.stats.record_fault(
            ev.FAULT_DEGRADED_BLOCKS,
            block=block,
            cause=cause,
            source=source,
            dest=dest,
            dests=list(dests) if dests else None,
        )
        self.fastpath_epoch += 1
        if self.recorder is not None:
            self.recorder.fault(ev.FAULT_DEGRADED_BLOCKS, home, block=block)

    def _memory_direct_read(self, node: NodeId, address: Address) -> int:
        """Serve a degraded block like the no-cache baseline would."""
        block, offset = address
        home = self.home(block)
        costs = self.system.costs
        self.stats.count(ev.FAULT_DIRECT_READS)
        if self.recorder is not None:
            self.recorder.fault(ev.FAULT_DIRECT_READS, node, block=block)
        self._send_unguarded(MsgKind.MEM_READ, node, home, costs.request())
        self._send_unguarded(
            MsgKind.WORD_REPLY, home, node, costs.word_data()
        )
        return self.system.memory_for(block).read_word(block, offset)

    def _memory_direct_write(
        self, node: NodeId, address: Address, value: int
    ) -> None:
        block, offset = address
        home = self.home(block)
        self.stats.count(ev.FAULT_DIRECT_WRITES)
        if self.recorder is not None:
            self.recorder.fault(ev.FAULT_DIRECT_WRITES, node, block=block)
        self._send_unguarded(
            MsgKind.MEM_WRITE, node, home, self.system.costs.word_data()
        )
        self.system.memory_for(block).write_word(block, offset, value)

    # ------------------------------------------------------------------
    # Mode switching (items 6 and 7)
    # ------------------------------------------------------------------

    def set_mode(self, node: NodeId, block: BlockId, mode: Mode) -> None:
        """Switch ``block`` to ``mode``, acquiring ownership first.

        Under fault injection the switch carries the same reference-level
        recovery as :meth:`read` / :meth:`write`: a dead route or an
        exhausted multicast re-send budget degrades the affected block
        and the request retries -- becoming the degraded no-op below.
        """
        if self.system.fault_injector is None:
            self._set_mode_body(node, block, mode)
            return
        while True:
            try:
                self._set_mode_body(node, block, mode)
                return
            except UnreachableRouteError as exc:
                self._recover_dead_route(exc, block)
            except TransientNetworkError as exc:
                self._recover_retry_exhaustion(exc, block)

    def _set_mode_body(
        self, node: NodeId, block: BlockId, mode: Mode
    ) -> None:
        if block in self._uncacheable:
            # A degraded block has no owner and no modes; the request is
            # meaningless and must not re-cache the block.
            return
        self._active_block = block
        entry = self._ensure_owner(node, block)
        field = entry.state_field
        if mode is Mode.DISTRIBUTED_WRITE and not field.distributed_write:
            self.stats.count(ev.MODE_SWITCHES)
            self.fastpath_epoch += 1
            if self.recorder is not None:
                self.recorder.mode_switch(block, node, "distributed-write")
            # The present vector tracked invalid placeholders; they hold no
            # copies, so in DW mode they must leave the vector (see module
            # docstring).  They re-register on their next read miss.
            field.present = {node}
            field.distributed_write = True
        elif mode is Mode.GLOBAL_READ and field.distributed_write:
            self.stats.count(ev.MODE_SWITCHES)
            self.fastpath_epoch += 1
            if self.recorder is not None:
                self.recorder.mode_switch(block, node, "global-read")
            copies = field.others(node)
            if copies:
                self._multicast(
                    MsgKind.INVALIDATE,
                    node,
                    copies,
                    self.system.costs.request(),
                )
                self.stats.count(ev.INVALIDATIONS, len(copies))
                for other in copies:
                    other_entry = self._cache(other).find(block)
                    if other_entry is None:
                        raise ProtocolError(
                            f"present vector of block {block} names cache "
                            f"{other}, which has no entry"
                        )
                    other_entry.state_field.valid = False
                    other_entry.state_field.owner = node
            # The vector now records exactly the invalid copies: the
            # global-read meaning of the present flags.
            field.distributed_write = False

    def mode_of(self, block: BlockId) -> Mode | None:
        """Current operating mode of ``block`` (``None`` if uncached)."""
        owner = self._owner_of(block)
        if owner is None:
            return None
        entry = self._cache(owner).find(block)
        if entry is None:
            return None
        return entry.state_field.mode

    # ------------------------------------------------------------------
    # Read misses
    # ------------------------------------------------------------------

    def _read_miss_via_memory(self, node: NodeId, address: Address) -> int:
        """Read miss, copy nonexistent: request the home module (2a/2b)."""
        block, offset = address
        home = self.home(block)
        self._send(MsgKind.LOAD_REQ, node, home, self._cost_request)
        owner = self._owner_of(block)
        if owner is None:
            # 2(a): no cached copy anywhere; load from memory and own it
            # exclusively in the default mode.
            memory = self.system.memory_for(block)
            self._send(MsgKind.BLOCK_REPLY, home, node, self._cost_block)
            entry = self._reuse_or_allocate(node, block)
            entry.data = memory.read_block(block)
            entry.state_field = StateField(
                valid=True,
                owned=True,
                modified=False,
                distributed_write=(
                    self.default_mode is Mode.DISTRIBUTED_WRITE
                ),
                present={node},
                owner=node,
            )
            memory.block_store.set_owner(block, node)
            return entry.read_word(offset)
        # 2(b): forward to the owner, which serves per its mode.
        self._send(MsgKind.LOAD_FWD, home, owner, self._cost_request)
        return self._serve_read_at_owner(node, address, owner)

    def _read_miss_direct(
        self, node: NodeId, address: Address, placeholder: CacheEntry
    ) -> int:
        """Read miss on an invalid placeholder: bypass via the OWNER field.

        The pointed-at cache may have lost ownership since the placeholder
        was written (possible only across mode switches); OWNER fields of
        past owners form a chain toward the current owner, so the request
        is forwarded along it, falling back to the home module at a dead
        end or after touring ``N`` caches.
        """
        block, _ = address
        target = placeholder.state_field.owner
        if target is None:
            raise ProtocolError(
                f"invalid placeholder for block {block} at cache {node} "
                f"has no OWNER field"
            )
        self._send(MsgKind.LOAD_DIRECT, node, target, self._cost_request)
        # Steady state: the placeholder's OWNER field points straight at
        # the current owner, so no chain bookkeeping is needed.
        entry = self._cache(target).find(block)
        if (
            entry is not None
            and entry.state_field.valid
            and entry.state_field.owned
        ):
            return self._serve_read_at_owner(node, address, target, entry)
        visited: set[NodeId] = {target}
        while True:
            next_hop = (
                entry.state_field.owner if entry is not None else None
            )
            if next_hop is None or next_hop in visited:
                # Dead end: answer with a NAK and retry through memory.
                self._send(MsgKind.NAK, target, node, self._cost_ack)
                return self._read_miss_via_memory(node, address)
            self._send(
                MsgKind.LOAD_FWD, target, next_hop, self._cost_request
            )
            target = next_hop
            visited.add(target)
            entry = self._cache(target).find(block)
            if (
                entry is not None
                and entry.state_field.valid
                and entry.state_field.owned
            ):
                return self._serve_read_at_owner(node, address, target, entry)

    def _serve_read_at_owner(
        self,
        node: NodeId,
        address: Address,
        owner: NodeId,
        owner_entry: CacheEntry | None = None,
    ) -> int:
        """Owner-side service of a remote read miss (2b i/ii).

        ``owner_entry`` may be passed by a caller that already located the
        owner's entry (the direct-load path); ``None`` looks it up here.
        """
        block, offset = address
        if owner_entry is None:
            owner_entry = self._cache(owner).find(block)
        if owner_entry is None or not owner_entry.state_field.owned:
            raise ProtocolError(
                f"cache {owner} asked to serve block {block} it does not own"
            )
        owner_field = owner_entry.state_field
        if node not in owner_field.present:
            owner_field.present.add(node)
            self.present_epoch += 1
        if owner_field.distributed_write:
            # 2(b)i: ship a whole copy; requester becomes UnOwned.
            self._send(MsgKind.BLOCK_REPLY, owner, node, self._cost_block)
            entry = self._reuse_or_allocate(node, block)
            entry.data = list(owner_entry.data)
            entry.state_field = StateField(
                valid=True, owned=False, owner=owner
            )
            return entry.read_word(offset)
        # 2(b)ii: global read -- only the datum and the owner id travel;
        # the requester keeps (or creates) an invalid placeholder.
        self.stats.count(ev.GLOBAL_READS)
        self._send(MsgKind.WORD_REPLY, owner, node, self._cost_word_owner)
        entry = self._reuse_or_allocate(node, block)
        entry.state_field = StateField(valid=False, owner=owner)
        return owner_entry.read_word(offset)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _perform_owner_write(
        self, node: NodeId, entry: CacheEntry, offset: int, value: int
    ) -> None:
        """Write at an owning cache (3a/3b/3c), distributing if needed."""
        field = entry.state_field
        if not (field.valid and field.owned):
            raise ProtocolError(
                f"cache {node} performing an owner write without ownership"
            )
        entry.write_word(offset, value)
        field.modified = True
        copies = field.others(node)
        if field.distributed_write and copies:
            # 3(b): distribute the write to every cache with a copy.
            self._multicast(
                MsgKind.WRITE_UPDATE, node, copies, self._cost_word
            )
            self.stats.count(ev.WRITE_UPDATES)
            block = entry.tag
            assert block is not None
            for other in copies:
                other_entry = self._cache(other).find(block)
                if other_entry is None or not other_entry.state_field.valid:
                    raise ProtocolError(
                        f"present vector of block {block} names cache "
                        f"{other}, which holds no valid copy"
                    )
                other_entry.write_word(offset, value)

    def _acquire_ownership(self, node: NodeId, block: BlockId) -> None:
        """Ownership request from a cache holding a valid UnOwned copy (3d).

        Also reused for the hand-off in replacement (5b), where in
        global-read mode the requester may hold only an invalid
        placeholder; the data rides along with the state field then.
        """
        home = self.home(block)
        costs = self.system.costs
        self._send(MsgKind.OWN_REQ, node, home, costs.request())
        old_owner, old_entry = self._owner_entry(block)
        if old_owner == node:
            raise ProtocolError(
                f"cache {node} requested ownership of block {block} "
                f"it already owns"
            )
        self._send(MsgKind.OWN_FWD, home, old_owner, costs.request())
        self.system.memory_for(block).block_store.set_owner(block, node)
        self.stats.count(ev.OWNERSHIP_TRANSFERS)
        self.fastpath_epoch += 1
        if self.recorder is not None:
            self.recorder.ownership_transfer(block, old_owner, node)

        old_field = old_entry.state_field
        old_field.present.add(node)
        transferred = old_field.copy()
        entry = self._cache(node).find(block)
        if entry is None:
            raise ProtocolError(
                f"cache {node} acquiring ownership of block {block} "
                f"without an entry for it"
            )
        n_nodes = self.system.n_nodes
        if old_field.distributed_write:
            # 3(d)i: only the state field moves; the requester's copy is
            # already current (it received every distributed write).
            self._send(
                MsgKind.STATE_XFER,
                old_owner,
                node,
                costs.state_field(n_nodes),
            )
            old_entry.state_field = StateField(
                valid=True, owned=False, owner=node
            )
        else:
            # 3(d)ii: copy + state field move; the old owner repoints the
            # invalid placeholders at the new owner and invalidates itself.
            self._send(
                MsgKind.DATA_STATE_XFER,
                old_owner,
                node,
                costs.block_and_state(self._block_words(), n_nodes),
            )
            entry.data = list(old_entry.data)
            placeholders = frozenset(
                transferred.present - {old_owner, node}
            )
            if placeholders:
                self._multicast(
                    MsgKind.OWNER_UPDATE,
                    old_owner,
                    placeholders,
                    costs.owner_id(n_nodes),
                )
                for other in placeholders:
                    other_entry = self._cache(other).find(block)
                    if other_entry is not None:
                        other_entry.state_field.owner = node
            old_entry.state_field = StateField(valid=False, owner=node)
        entry.state_field = StateField(
            valid=True,
            owned=True,
            modified=transferred.modified,
            distributed_write=transferred.distributed_write,
            present=set(transferred.present),
            owner=node,
        )

    def _miss_acquire_ownership(
        self, node: NodeId, block: BlockId
    ) -> CacheEntry:
        """Write miss: load with ownership (4a/4b)."""
        home = self.home(block)
        costs = self.system.costs
        self._send(MsgKind.OWN_REQ, node, home, costs.request())
        old_owner = self._owner_of(block)
        memory = self.system.memory_for(block)
        n_nodes = self.system.n_nodes
        if old_owner is None:
            # 4(a): no cached copy; load from memory, own exclusively.
            self._send(MsgKind.BLOCK_REPLY, home, node, self._cost_block)
            entry = self._reuse_or_allocate(node, block)
            entry.data = memory.read_block(block)
            entry.state_field = StateField(
                valid=True,
                owned=True,
                modified=False,
                distributed_write=(
                    self.default_mode is Mode.DISTRIBUTED_WRITE
                ),
                present={node},
                owner=node,
            )
            memory.block_store.set_owner(block, node)
            return entry
        if old_owner == node:
            raise ProtocolError(
                f"cache {node} write-missed block {block} it owns"
            )
        # 4(b): forward to the old owner; copy + state field move.
        self._send(MsgKind.OWN_FWD, home, old_owner, costs.request())
        memory.block_store.set_owner(block, node)
        self.stats.count(ev.OWNERSHIP_TRANSFERS)
        self.fastpath_epoch += 1
        if self.recorder is not None:
            self.recorder.ownership_transfer(block, old_owner, node)
        old_entry = self._cache(old_owner).find(block)
        if old_entry is None or not old_entry.state_field.owned:
            raise ProtocolError(
                f"block store names cache {old_owner} as owner of block "
                f"{block}, but it is not"
            )
        old_field = old_entry.state_field
        old_field.present.add(node)
        transferred = old_field.copy()
        self._send(
            MsgKind.DATA_STATE_XFER,
            old_owner,
            node,
            costs.block_and_state(self._block_words(), n_nodes),
        )
        data = list(old_entry.data)
        if old_field.distributed_write:
            old_entry.state_field = StateField(
                valid=True, owned=False, owner=node
            )
        else:
            placeholders = frozenset(
                transferred.present - {old_owner, node}
            )
            if placeholders:
                self._multicast(
                    MsgKind.OWNER_UPDATE,
                    old_owner,
                    placeholders,
                    costs.owner_id(n_nodes),
                )
                for other in placeholders:
                    other_entry = self._cache(other).find(block)
                    if other_entry is not None:
                        other_entry.state_field.owner = node
            old_entry.state_field = StateField(valid=False, owner=node)
        entry = self._reuse_or_allocate(node, block)
        entry.data = data
        entry.state_field = StateField(
            valid=True,
            owned=True,
            modified=transferred.modified,
            distributed_write=transferred.distributed_write,
            present=set(transferred.present),
            owner=node,
        )
        return entry

    def _ensure_owner(self, node: NodeId, block: BlockId) -> CacheEntry:
        """Make ``node`` the owner of ``block`` (for ``set_mode``)."""
        entry = self._cache(node).find(block)
        if entry is not None and entry.state_field.valid:
            if not entry.state_field.owned:
                self._acquire_ownership(node, block)
            return entry
        return self._miss_acquire_ownership(node, block)

    # ------------------------------------------------------------------
    # Replacement (item 5)
    # ------------------------------------------------------------------

    def _allocate(self, node: NodeId, block: BlockId) -> CacheEntry:
        """Two-phase allocation: replace the victim, then claim the slot."""
        cache = self._cache(node)
        slot = cache.slot_for(block)
        if slot.needs_eviction(block):
            self._replace_entry(node, slot.entry)
        return cache.install(slot, block)

    def _reuse_or_allocate(self, node: NodeId, block: BlockId) -> CacheEntry:
        """``block``'s existing entry at ``node``, or a fresh allocation.

        Reinstalling over the block's own entry (typically an invalid
        placeholder being refreshed) would clear and re-zero data the
        caller immediately overwrites or never exposes -- an invalid
        entry's data is unreadable by construction.  Reusing the entry
        skips that work; the replacement-policy effect is identical
        (``install`` touches the slot, and so does this), and every
        caller overwrites ``state_field`` before the entry is next seen.
        """
        cache = self._cache(node)
        entry = cache.find(block)
        if entry is not None:
            cache.touch(block)
            return entry
        return self._allocate(node, block)

    def evict(self, node: NodeId, block: BlockId) -> None:
        """Explicitly replace ``block`` at ``node`` (protocol actions + drop).

        Not triggered by the reference stream (that happens through
        :meth:`_allocate`); exposed for experiments that force evictions.

        Under fault injection the eviction carries reference-level
        recovery: a dead route or an exhausted multicast budget hit while
        retiring the entry degrades the block -- which purges the entry
        everywhere, completing the eviction by a harder road.
        """
        entry = self._cache(node).find(block)
        if entry is None:
            raise ProtocolError(
                f"cache {node} has no entry for block {block} to evict"
            )
        if self.system.fault_injector is None:
            self._replace_entry(node, entry)
            self._cache(node).drop(block)
            return
        while True:
            try:
                self._replace_entry(node, entry)
                self._cache(node).drop(block)
                return
            except UnreachableRouteError as exc:
                self._recover_dead_route(exc, block)
            except TransientNetworkError as exc:
                self._recover_retry_exhaustion(exc, block)
            # Recovery degraded a block.  If it was this one the entry is
            # gone from every cache and the eviction is complete; if it
            # was another block (impossible today -- retirement pins
            # ``_active_block`` to the victim -- but cheap to guard), the
            # retirement retries with the still-present entry.
            if block in self._uncacheable:
                return
            entry = self._cache(node).find(block)
            if entry is None:
                return

    def _replace_entry(self, node: NodeId, entry: CacheEntry) -> None:
        """§2.2 item 5, dispatched on the victim's state."""
        block = entry.tag
        assert block is not None
        self.stats.count(ev.REPLACEMENTS)
        self.fastpath_epoch += 1
        # A dead route hit while retiring the victim must degrade the
        # *victim's* block, not the block being allocated for.
        outer_block = self._active_block
        self._active_block = block
        try:
            state = entry.state(node)
            if state in (CacheState.INVALID, CacheState.UNOWNED):
                self._replace_unowned(node, block)
            elif state.is_exclusive:
                self._replace_exclusive_owner(node, entry)
            else:
                self._replace_nonexclusive_owner(node, entry)
        finally:
            self._active_block = outer_block
        # The protocol actions are complete; whatever remains in the slot
        # is dead state awaiting overwrite (or drop).
        entry.state_field = StateField()

    def _replace_unowned(self, node: NodeId, block: BlockId) -> None:
        """5(c): tell the owner, via the home module, to clear our P flag."""
        home = self.home(block)
        costs = self.system.costs
        self._send(MsgKind.REPLACE_NOTIFY, node, home, costs.request())
        owner = self._owner_of(block)
        if owner is None:
            # The placeholder outlived every copy (possible after mode
            # switches); nothing to clear.
            return
        self._send(MsgKind.PRESENT_CLEAR, home, owner, costs.request())
        owner_entry = self._cache(owner).find(block)
        if owner_entry is not None and node in owner_entry.state_field.present:
            owner_entry.state_field.present.discard(node)
            self.present_epoch += 1

    def _replace_exclusive_owner(
        self, node: NodeId, entry: CacheEntry
    ) -> None:
        """5(a): exclude from the block store; write back if modified.

        A modified block's write-back message carries the exclusion, so
        only one message is sent (the paper charges a message plus the
        write-back; folding them is noted in the module docstring).
        """
        block = entry.tag
        assert block is not None
        home = self.home(block)
        costs = self.system.costs
        memory = self.system.memory_for(block)
        if entry.state_field.modified:
            self._send(
                MsgKind.WRITEBACK,
                node,
                home,
                costs.block_data(self._block_words()),
            )
            memory.write_block(block, entry.data)
            self.stats.count(ev.WRITEBACKS)
        else:
            self._send(MsgKind.REPLACE_NOTIFY, node, home, costs.request())
        memory.block_store.clear(block)

    def _replace_nonexclusive_owner(
        self, node: NodeId, entry: CacheEntry
    ) -> None:
        """5(b): hand ownership to a cache named in the present vector."""
        block = entry.tag
        assert block is not None
        costs = self.system.costs
        for candidate in sorted(entry.state_field.others(node)):
            self._send(MsgKind.XFER_OFFER, node, candidate, costs.request())
            candidate_entry = self._cache(candidate).find(block)
            if candidate_entry is None:
                # Candidate replaced its copy in the meantime: NAK.
                self._send(MsgKind.NAK, candidate, node, costs.ack())
                continue
            self._send(MsgKind.ACK, candidate, node, costs.ack())
            # "It requests the ownership according to the protocol": the
            # candidate acquires ownership through the home module, after
            # which our entry is UnOwned (DW) or an invalid placeholder
            # (GR) and retires through the 5(c) path.
            self._acquire_ownership(candidate, block)
            self._replace_unowned(node, block)
            return
        # Every candidate NAKed: no other copy actually exists, so retire
        # as an exclusive owner (fallback documented in module docstring).
        self._replace_exclusive_owner(node, entry)

    # ------------------------------------------------------------------
    # Mode policy hook
    # ------------------------------------------------------------------

    def _consult_mode_policy(
        self, node: NodeId, block: BlockId, op: Op
    ) -> None:
        if self.mode_policy is None:
            return
        owner = self._owner_of(block)
        if owner is None:
            return
        owner_entry = self._cache(owner).find(block)
        if owner_entry is None:
            return
        mode = owner_entry.state_field.mode
        n_sharers = len(owner_entry.state_field.present)
        owner_visible = (
            node == owner or op is Op.WRITE or mode is Mode.GLOBAL_READ
        )
        self.mode_policy.observe(
            block,
            op,
            owner_visible=owner_visible,
            mode=mode,
            n_sharers=n_sharers,
        )
        desired = self.mode_policy.decide(block, mode, n_sharers)
        if desired is not None and desired is not mode:
            self.set_mode(owner, block, desired)

    # ------------------------------------------------------------------
    # Invariants and abstraction
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural coherence invariants (see :mod:`..invariants`)."""
        check_stenstrom(self)

    def abstract_state(self, blocks):
        """Canonical observable-state snapshot for ``blocks``.

        Returns a tuple of
        :class:`~repro.protocol.abstract.BlockAbstract` (sorted by block
        id), the projection the model-checking differential fuzzer
        compares against the abstract transition system of
        :mod:`repro.mc` after every operation.  Read-only; safe to call
        at any quiescent point.
        """
        from repro.protocol.abstract import snapshot_stenstrom

        return snapshot_stenstrom(self, blocks)
