"""The uncached baseline of eq. 9: every reference crosses the network.

"In case the block is stored at memory, the mean communication cost for
each reference to this block is ``CC_NC = (1 - w) 2 CC1 + w CC1``" -- a
read is a request plus a word reply (two traversals), a write is a single
word message (one traversal, the §4 simplification that a read costs twice
a write).
"""

from __future__ import annotations

from repro.protocol.base import CoherenceProtocol
from repro.protocol.messages import MsgKind
from repro.sim import stats as ev
from repro.types import Address, NodeId


class NoCacheProtocol(CoherenceProtocol):
    """Shared memory without caches: all data lives at the home modules."""

    name = "no-cache"

    def read(self, node: NodeId, address: Address) -> int:
        self.system.check_address(address)
        self.stats.count(ev.READS)
        block, offset = address
        home = self.home(block)
        costs = self.system.costs
        self._send(MsgKind.MEM_READ, node, home, costs.request())
        self._send(MsgKind.WORD_REPLY, home, node, costs.word_data())
        return self.system.memory_for(block).read_word(block, offset)

    def write(self, node: NodeId, address: Address, value: int) -> None:
        self.system.check_address(address)
        self.stats.count(ev.WRITES)
        self.stats.count(ev.REMOTE_WORD_WRITES)
        block, offset = address
        home = self.home(block)
        self._send(
            MsgKind.MEM_WRITE, node, home, self.system.costs.word_data()
        )
        self.system.memory_for(block).write_word(block, offset, value)
