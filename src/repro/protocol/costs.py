"""Analytic per-reference communication costs (§4, eqs. 9-12, Figure 8).

The paper's model: ``n`` tasks share a read-write data structure, exactly
one task writes each block, the write fraction is ``w``, a read costs two
network traversals and a write one, and only consistency-related traffic
counts (the cache holds the whole structure, so there are no capacity
misses).  The global reference string is a two-state Markov chain
(Figure 7) for the write-once analysis.

Every cost is expressed through ``CC1(1)`` (one scheme-1 network traversal
of an ``M``-bit message, eq. 2 with ``n = 1``); the *normalized* variants
divide it out, which is exactly the y-axis of Figure 8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network import cost as netcost


def _check_w(write_fraction: float) -> None:
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError(
            f"write fraction must be in [0, 1], got {write_fraction}"
        )


def one_traversal(network_size: int, message_bits: int) -> int:
    """``CC1`` with one destination: the unit every §4 formula is built on."""
    return netcost.cc1(1, network_size, message_bits)


# ----------------------------------------------------------------------
# Eqs. 9-12 (absolute costs)
# ----------------------------------------------------------------------


def cc_no_cache(
    write_fraction: float, network_size: int, message_bits: int
) -> float:
    """Eq. 9: ``(1 - w) 2 CC1 + w CC1`` -- the block lives at memory."""
    _check_w(write_fraction)
    unit = one_traversal(network_size, message_bits)
    return (2.0 - write_fraction) * unit


def cc_write_once(
    write_fraction: float,
    n_sharers: int,
    n_partition: int,
    network_size: int,
    message_bits: int,
) -> float:
    """Eq. 10: ``w (1 - w) (CC4(n) + 2 CC1)``.

    Each shared-to-exclusive transition of the Figure 7 chain multicasts an
    invalidation to the ``n`` caches (cost ``CC4``, eq. 8) and each
    exclusive-to-shared transition reloads the block (two traversals).
    """
    _check_w(write_fraction)
    invalidation = netcost.cc_combined(
        n_sharers, n_partition, network_size, message_bits
    )
    reload = 2 * one_traversal(network_size, message_bits)
    return write_fraction * (1.0 - write_fraction) * (invalidation + reload)


def cc_write_once_bound(
    write_fraction: float,
    n_sharers: int,
    network_size: int,
    message_bits: int,
) -> float:
    """Eq. 10's stated bound ``w (1 - w) (n + 2) CC1`` (scheme 1 only)."""
    _check_w(write_fraction)
    unit = one_traversal(network_size, message_bits)
    return (
        write_fraction * (1.0 - write_fraction) * (n_sharers + 2) * unit
    )


def cc_distributed_write(
    write_fraction: float,
    n_sharers: int,
    n_partition: int,
    network_size: int,
    message_bits: int,
) -> float:
    """Eq. 11: ``w CC4(n)`` -- reads are local, writes are multicast."""
    _check_w(write_fraction)
    return write_fraction * netcost.cc_combined(
        n_sharers, n_partition, network_size, message_bits
    )


def cc_global_read(
    write_fraction: float, network_size: int, message_bits: int
) -> float:
    """Eq. 12: ``(1 - w) 2 CC1`` -- writes are local, reads are remote."""
    _check_w(write_fraction)
    return (
        (1.0 - write_fraction)
        * 2
        * one_traversal(network_size, message_bits)
    )


def cc_two_mode(
    write_fraction: float,
    n_sharers: int,
    n_partition: int,
    network_size: int,
    message_bits: int,
) -> float:
    """The proposed protocol: each block runs in its cheaper mode."""
    return min(
        cc_distributed_write(
            write_fraction, n_sharers, n_partition, network_size,
            message_bits,
        ),
        cc_global_read(write_fraction, network_size, message_bits),
    )


# ----------------------------------------------------------------------
# Normalized costs (Figure 8's y-axis; scheme 1, the §4 simplification)
# ----------------------------------------------------------------------


def normalized_no_cache(write_fraction: float) -> float:
    """``2 - w`` (the bold reference line of Figure 8)."""
    _check_w(write_fraction)
    return 2.0 - write_fraction


def normalized_write_once(write_fraction: float, n_sharers: int) -> float:
    """``w (1 - w) (n + 2)`` (the dashed curves of Figure 8)."""
    _check_w(write_fraction)
    return write_fraction * (1.0 - write_fraction) * (n_sharers + 2)


def normalized_distributed_write(
    write_fraction: float, n_sharers: int
) -> float:
    """``w n`` (eq. 11 with scheme-1 multicast)."""
    _check_w(write_fraction)
    return write_fraction * n_sharers


def normalized_global_read(write_fraction: float) -> float:
    """``2 (1 - w)`` (eq. 12)."""
    _check_w(write_fraction)
    return 2.0 * (1.0 - write_fraction)


def normalized_two_mode(write_fraction: float, n_sharers: int) -> float:
    """``min(w n, 2 (1 - w))`` (the solid curves of Figure 8).

    The modes cross exactly at ``w1 = 2 / (n + 2)``; §4 proves the
    resulting upper bound ``2 n / (n + 2) < 2`` never exceeds the
    uncached cost.
    """
    return min(
        normalized_distributed_write(write_fraction, n_sharers),
        normalized_global_read(write_fraction),
    )


def two_mode_peak(n_sharers: int) -> float:
    """The two-mode curve's maximum ``2 n / (n + 2)``, reached at ``w1``."""
    if n_sharers < 0:
        raise ConfigurationError(
            f"sharer count must be non-negative, got {n_sharers}"
        )
    return 2.0 * n_sharers / (n_sharers + 2)


# ----------------------------------------------------------------------
# The Figure 7 Markov chain
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WriteOnceChain:
    """The two-state (exclusive/shared) chain modelling write-once.

    From *exclusive*, a read (probability ``1 - w``) moves to *shared*
    (the block is reloaded by a reader); from *shared*, a write
    (probability ``w``) moves to *exclusive* (other copies invalidated).
    """

    write_fraction: float

    def __post_init__(self) -> None:
        _check_w(self.write_fraction)

    def stationary(self) -> tuple[float, float]:
        """Stationary ``(P(exclusive), P(shared))``: ``(w, 1 - w)``."""
        return (self.write_fraction, 1.0 - self.write_fraction)

    def transition_rate(self) -> float:
        """Per-reference rate of *each* transition direction: ``w (1 - w)``.

        Both directions occur equally often in steady state; this rate times
        the per-transition cost gives eq. 10.
        """
        return self.write_fraction * (1.0 - self.write_fraction)

    def simulate(
        self, steps: int, seed: int = 0
    ) -> tuple[int, int]:
        """Monte-Carlo transition counts ``(shared_to_exclusive,
        exclusive_to_shared)`` over ``steps`` references."""
        if steps <= 0:
            raise ConfigurationError(
                f"need a positive step count, got {steps}"
            )
        rng = random.Random(seed)
        exclusive = True
        to_exclusive = 0
        to_shared = 0
        for _ in range(steps):
            is_write = rng.random() < self.write_fraction
            if exclusive and not is_write:
                exclusive = False
                to_shared += 1
            elif not exclusive and is_write:
                exclusive = True
                to_exclusive += 1
        return (to_exclusive, to_shared)
