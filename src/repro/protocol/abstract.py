"""Machine-comparable abstract snapshots of two-mode protocol state.

The model checker (:mod:`repro.mc`) and its differential fuzzer compare
the concrete simulator against an abstract transition system.  The
comparison needs a *canonical, hashable* projection of everything the
protocol considers observable for a block: who owns it, its mode, the
present vector, every cache's entry (kind, OWNER pointer, data), the
memory image, and whether the block was degraded to memory-direct
service.  :func:`snapshot_stenstrom` builds that projection straight
from the live data structures without mutating anything.

This is deliberately distinct from :mod:`repro.sim.snapshot`, which
renders *human-readable* block reports; here every field is a plain
tuple so snapshots can be compared with ``==`` and used as dict keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.types import BlockId, NodeId

if TYPE_CHECKING:  # pragma: no cover - import for typing only
    from repro.protocol.stenstrom import StenstromProtocol

#: Entry kinds, as the abstract model names them.
OWNER = "owner"
COPY = "copy"  # valid UnOwned copy (distributed-write mode)
PLACEHOLDER = "placeholder"  # invalid entry with an OWNER pointer


@dataclass(frozen=True)
class CopyAbstract:
    """One cache's entry for a block, projected to observable fields.

    ``data`` is only meaningful for valid entries (``kind`` is ``owner``
    or ``copy``); an invalid placeholder's words are unreadable by
    construction, so they are projected to ``None`` rather than leaking
    stale bytes into comparisons.
    """

    node: NodeId
    kind: str
    modified: bool
    ptr: NodeId | None
    data: tuple[int, ...] | None


@dataclass(frozen=True)
class BlockAbstract:
    """Everything observable about one block, at a quiescent point."""

    block: BlockId
    owner: NodeId | None
    #: ``"DISTRIBUTED_WRITE"`` / ``"GLOBAL_READ"`` when an owner defines
    #: a mode, else ``None``.
    mode: str | None
    present: tuple[NodeId, ...]
    modified: bool
    degraded: bool
    copies: tuple[CopyAbstract, ...]
    memory: tuple[int, ...]


def snapshot_stenstrom(
    protocol: "StenstromProtocol", blocks: Iterable[BlockId]
) -> tuple[BlockAbstract, ...]:
    """Project ``protocol``'s state for ``blocks``, sorted by block id."""
    system = protocol.system
    out = []
    for block in sorted(set(blocks)):
        owner = protocol._owner_of(block)
        mode = None
        present: tuple[NodeId, ...] = ()
        modified = False
        if owner is not None:
            owner_entry = system.caches[owner].find(block)
            if owner_entry is not None:
                field = owner_entry.state_field
                mode = field.mode.name
                present = tuple(sorted(field.present))
                modified = field.modified
        copies = []
        for cache in system.caches:
            entry = cache.find(block)
            if entry is None:
                continue
            field = entry.state_field
            if field.valid:
                kind = OWNER if field.owned else COPY
                data: tuple[int, ...] | None = tuple(entry.data)
            else:
                kind = PLACEHOLDER
                data = None
            copies.append(
                CopyAbstract(
                    node=cache.node_id,
                    kind=kind,
                    modified=field.modified,
                    ptr=field.owner,
                    data=data,
                )
            )
        memory = tuple(system.memory_for(block).read_block(block))
        out.append(
            BlockAbstract(
                block=block,
                owner=owner,
                mode=mode,
                present=present,
                modified=modified,
                degraded=block in protocol.uncacheable_blocks,
                copies=tuple(copies),
                memory=memory,
            )
        )
    return tuple(out)
