"""Cache consistency protocols.

* :mod:`repro.protocol.stenstrom` -- **the paper's contribution**: the
  two-mode (distributed-write / global-read), ownership-based protocol with
  cache-resident state (§2);
* :mod:`repro.protocol.modes` -- per-block operating-mode selection policies,
  including the ``w1 = 2/(n+2)`` threshold of §4 and the counter-based
  adaptive selector sketched in §5;
* :mod:`repro.protocol.write_once` -- Goodman's write-once protocol adapted
  to a directory setting (the paper's main comparison point);
* :mod:`repro.protocol.full_map` -- a Censier-Feautrier full-map
  write-invalidate directory (the ``O(N M)`` state baseline of §1);
* :mod:`repro.protocol.no_cache` -- the uncached baseline of eq. 9;
* :mod:`repro.protocol.costs` -- the analytic per-reference cost models of
  §4 (eqs. 9-12, Figure 8);
* :mod:`repro.protocol.invariants` -- structural coherence invariants,
  checked by the verifying simulator and the property-based tests.
"""

from repro.protocol.base import CoherenceProtocol
from repro.protocol.full_map import FullMapProtocol
from repro.protocol.limited_pointer import LimitedPointerProtocol
from repro.protocol.messages import MessageCosts, MsgKind
from repro.protocol.modes import (
    AdaptiveModePolicy,
    ModePolicy,
    PerBlockModePolicy,
    OracleModePolicy,
    StaticModePolicy,
    write_fraction_threshold,
)
from repro.protocol.no_cache import NoCacheProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.protocol.write_once import WriteOnceProtocol

__all__ = [
    "AdaptiveModePolicy",
    "CoherenceProtocol",
    "FullMapProtocol",
    "LimitedPointerProtocol",
    "MessageCosts",
    "ModePolicy",
    "MsgKind",
    "NoCacheProtocol",
    "OracleModePolicy",
    "PerBlockModePolicy",
    "StaticModePolicy",
    "StenstromProtocol",
    "WriteOnceProtocol",
    "write_fraction_threshold",
]
