"""Protocol message kinds and their size model.

The paper measures everything in message bits on network links, so the one
modelling decision that matters here is *how many payload bits each protocol
message carries*.  :class:`MessageCosts` makes that decision explicit and
configurable:

* the default *component* model derives each message size from word,
  address and control field widths plus, for state transfers, the actual
  ``N + log2 N + 4``-bit state field;
* the *uniform* model (``MessageCosts.uniform(M)``) gives every message
  exactly ``M`` payload bits -- the simplification §4 of the paper uses
  ("the communication cost for a read is twice of that for a write", both
  built from the same ``CC1`` with one message size), which lets the
  simulator reproduce Figure 8 exactly.

Routing-tag bits are *not* included here; the network layer adds them per
link according to the multicast scheme in use (§3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cache.state import StateField
from repro.errors import ConfigurationError
from repro.types import ilog2


class MsgKind(enum.Enum):
    """Protocol message kinds (the stats ledger keys).

    The first group is the proposed protocol's vocabulary (§2.2); the
    ``DIR_*`` group serves the directory-based baseline protocols.
    """

    LOAD_REQ = "load_request"  # cache -> memory: read/write miss
    LOAD_FWD = "load_forward"  # memory -> owner: forwarded request
    LOAD_DIRECT = "load_direct"  # cache -> owner: bypass via OWNER field
    BLOCK_REPLY = "block_reply"  # block copy delivered to a cache
    WORD_REPLY = "word_reply"  # single datum (global read mode)
    OWN_REQ = "ownership_request"  # cache -> memory: want ownership
    OWN_FWD = "ownership_forward"  # memory -> owner
    STATE_XFER = "state_transfer"  # old owner -> new owner: state field
    DATA_STATE_XFER = "data_state_transfer"  # block + state field
    WRITE_UPDATE = "write_update"  # owner -> copies: distributed write
    INVALIDATE = "invalidate"  # owner -> copies: mode switch to GR
    OWNER_UPDATE = "owner_update"  # new owner id -> invalid copies
    REPLACE_NOTIFY = "replace_notify"  # cache -> memory: replacement
    PRESENT_CLEAR = "present_clear"  # memory/cache -> owner: clear P bit
    WRITEBACK = "writeback"  # owner -> memory: modified block
    XFER_OFFER = "transfer_offer"  # replacing owner -> candidate
    ACK = "ack"
    NAK = "nak"
    MEM_READ = "memory_read"  # uncached baseline: word request
    MEM_WRITE = "memory_write"  # uncached baseline: word write
    DIR_INVALIDATE = "dir_invalidate"  # directory -> copies
    DIR_RECALL = "dir_recall"  # directory -> dirty holder
    DIR_WRITE_THROUGH = "dir_write_through"  # write-once first write

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MessageCosts:
    """Payload sizes (bits) of protocol messages.

    With ``uniform_bits`` set, every message carries exactly that many
    payload bits regardless of kind -- the §4 model.  Otherwise sizes are
    composed from the field widths.
    """

    control_bits: int = 4
    address_bits: int = 16
    word_bits: int = 16
    uniform_bits: int | None = None

    def __post_init__(self) -> None:
        for name in ("control_bits", "address_bits", "word_bits"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.uniform_bits is not None and self.uniform_bits < 0:
            raise ConfigurationError("uniform_bits must be non-negative")

    @staticmethod
    def uniform(message_bits: int) -> "MessageCosts":
        """Every message costs exactly ``message_bits`` (the §4 model)."""
        return MessageCosts(uniform_bits=message_bits)

    # ------------------------------------------------------------------

    def _or_uniform(self, computed: int) -> int:
        return self.uniform_bits if self.uniform_bits is not None else computed

    def request(self) -> int:
        """A request carrying an address and a command."""
        return self._or_uniform(self.control_bits + self.address_bits)

    def word_data(self) -> int:
        """A reply or update carrying one word (plus address + command)."""
        return self._or_uniform(
            self.control_bits + self.address_bits + self.word_bits
        )

    def block_data(self, block_words: int) -> int:
        """A whole block of data (plus address + command)."""
        if block_words <= 0:
            raise ConfigurationError(
                f"block_words must be positive, got {block_words}"
            )
        return self._or_uniform(
            self.control_bits
            + self.address_bits
            + block_words * self.word_bits
        )

    def state_field(self, n_caches: int) -> int:
        """An ownership state-field transfer (plus address + command)."""
        return self._or_uniform(
            self.control_bits
            + self.address_bits
            + StateField.size_bits(n_caches)
        )

    def block_and_state(self, block_words: int, n_caches: int) -> int:
        """Block copy and state field in one message."""
        if block_words <= 0:
            raise ConfigurationError(
                f"block_words must be positive, got {block_words}"
            )
        return self._or_uniform(
            self.control_bits
            + self.address_bits
            + block_words * self.word_bits
            + StateField.size_bits(n_caches)
        )

    def word_and_owner(self, n_caches: int) -> int:
        """A global-read reply: the datum plus the owner identification."""
        return self._or_uniform(
            self.control_bits
            + self.address_bits
            + self.word_bits
            + ilog2(n_caches)
        )

    def owner_id(self, n_caches: int) -> int:
        """A new-owner notification (plus address + command)."""
        return self._or_uniform(
            self.control_bits + self.address_bits + ilog2(n_caches)
        )

    def ack(self) -> int:
        """A bare acknowledgement."""
        return self._or_uniform(self.control_bits + self.address_bits)
