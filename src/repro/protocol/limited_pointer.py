"""A limited-pointer directory (Dir_i-B), the era's other storage fix.

The paper attacks the full map's ``O(N M)`` state by moving it into the
caches; the contemporaneous alternative (Agarwal et al., ISCA 1988) keeps
the directory at memory but caps it at ``i`` *pointers* of ``log2 N`` bits
each plus a broadcast bit: when an ``i+1``-th sharer arrives the directory
overflows, sets the broadcast bit, and subsequent invalidations go to
*every* cache.  Implemented here as a comparison point: same
write-invalidate semantics as :class:`~repro.protocol.full_map.FullMapProtocol`,
different directory representation, and a broadcast penalty the full map
never pays.

State per block at the home module: up to ``i`` pointers, or broadcast
mode; per cached block the same Invalid / Shared / Dirty states, encoded
in the generic state field exactly as the full map does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.entry import CacheEntry
from repro.cache.state import StateField
from repro.errors import ConfigurationError, ProtocolError
from repro.protocol.base import CoherenceProtocol
from repro.protocol.full_map import FullMapState, decode_state
from repro.protocol.messages import MsgKind
from repro.sim import stats as ev
from repro.types import Address, BlockId, NodeId


@dataclass
class _DirectoryEntry:
    """``i`` pointers or broadcast; plus the dirty bit."""

    pointers: set[NodeId] = field(default_factory=set)
    broadcast: bool = False
    dirty: bool = False


class LimitedPointerProtocol(CoherenceProtocol):
    """``Dir_i B``: a directory of ``n_pointers`` per block."""

    name = "limited-pointer-directory"

    def __init__(self, system, *, n_pointers: int = 2) -> None:
        super().__init__(system)
        if n_pointers < 1:
            raise ConfigurationError(
                f"need at least one pointer, got {n_pointers}"
            )
        self.n_pointers = n_pointers
        self._directory: dict[BlockId, _DirectoryEntry] = {}

    def _dir(self, block: BlockId) -> _DirectoryEntry:
        entry = self._directory.get(block)
        if entry is None:
            entry = _DirectoryEntry()
            self._directory[block] = entry
        return entry

    def directory_state(
        self, block: BlockId
    ) -> tuple[frozenset[NodeId], bool]:
        """``(pointers, broadcast)`` for tests."""
        entry = self._dir(block)
        return frozenset(entry.pointers), entry.broadcast

    # ------------------------------------------------------------------

    def read(self, node: NodeId, address: Address) -> int:
        self.system.check_address(address)
        self.stats.count(ev.READS)
        block, offset = address
        entry = self.system.caches[node].find(block)
        if decode_state(entry) is not FullMapState.INVALID:
            assert entry is not None
            self.stats.count(ev.READ_HITS)
            self.system.caches[node].touch(block)
            return entry.read_word(offset)
        self.stats.count(ev.READ_MISSES)
        entry = self._fetch_block(node, block)
        return entry.read_word(offset)

    def write(self, node: NodeId, address: Address, value: int) -> None:
        self.system.check_address(address)
        self.stats.count(ev.WRITES)
        block, offset = address
        entry = self.system.caches[node].find(block)
        state = decode_state(entry)
        if state is FullMapState.DIRTY:
            assert entry is not None
            self.stats.count(ev.WRITE_HITS)
            self.system.caches[node].touch(block)
            entry.write_word(offset, value)
            return
        if state is FullMapState.SHARED:
            assert entry is not None
            self.stats.count(ev.WRITE_HITS)
            self.system.caches[node].touch(block)
            self._send(
                MsgKind.OWN_REQ,
                node,
                self.home(block),
                self.system.costs.request(),
            )
            self._invalidate_others(node, block)
        else:
            self.stats.count(ev.WRITE_MISSES)
            entry = self._fetch_block(node, block)
            self._invalidate_others(node, block)
        directory = self._dir(block)
        directory.dirty = True
        entry.write_word(offset, value)
        entry.state_field.modified = True
        entry.state_field.owned = True

    # ------------------------------------------------------------------

    def _track_sharer(self, block: BlockId, node: NodeId) -> None:
        """Record a new copy holder; overflow flips to broadcast mode."""
        directory = self._dir(block)
        if directory.broadcast:
            return
        directory.pointers.add(node)
        if len(directory.pointers) > self.n_pointers:
            directory.pointers.clear()
            directory.broadcast = True
            self.stats.count("directory_overflows")

    def _fetch_block(self, node: NodeId, block: BlockId) -> CacheEntry:
        home = self.home(block)
        costs = self.system.costs
        memory = self.system.memory_for(block)
        directory = self._dir(block)
        self._send(MsgKind.LOAD_REQ, node, home, costs.request())
        if directory.dirty:
            if directory.broadcast or len(directory.pointers) != 1:
                raise ProtocolError(
                    f"limited-pointer block {block} dirty without a "
                    f"single pointer"
                )
            (holder,) = directory.pointers
            holder_entry = self.system.caches[holder].find(block)
            if holder_entry is None:
                raise ProtocolError(
                    f"directory says cache {holder} holds block {block} "
                    f"dirty, but it has no entry"
                )
            self._send(MsgKind.DIR_RECALL, home, holder, costs.request())
            self._send(
                MsgKind.WRITEBACK,
                holder,
                home,
                costs.block_data(self.system.config.block_size_words),
            )
            self.stats.count(ev.WRITEBACKS)
            memory.write_block(block, holder_entry.data)
            holder_entry.state_field.modified = False
            holder_entry.state_field.owned = False
            directory.dirty = False
        self._send(
            MsgKind.BLOCK_REPLY,
            home,
            node,
            costs.block_data(self.system.config.block_size_words),
        )
        entry = self._allocate(node, block)
        entry.data = memory.read_block(block)
        entry.state_field = StateField(valid=True)
        self._track_sharer(block, node)
        return entry

    def _invalidate_others(self, node: NodeId, block: BlockId) -> None:
        """Invalidate every other copy; broadcast mode pays for everyone."""
        home = self.home(block)
        directory = self._dir(block)
        if directory.broadcast:
            # The directory no longer knows who holds copies: invalidate
            # every cache except the writer (the Dir_i B overflow cost).
            targets = frozenset(range(self.system.n_nodes)) - {node}
        else:
            targets = frozenset(directory.pointers - {node})
        if targets:
            self._multicast(
                MsgKind.DIR_INVALIDATE,
                home,
                targets,
                self.system.costs.request(),
            )
            invalidated = 0
            for other in targets:
                other_entry = self.system.caches[other].find(block)
                if other_entry is not None and (
                    other_entry.state_field.valid
                ):
                    other_entry.state_field = StateField(valid=False)
                    invalidated += 1
            self.stats.count(ev.INVALIDATIONS, invalidated)
        directory.pointers = {node}
        directory.broadcast = False
        directory.dirty = True

    # ------------------------------------------------------------------

    def _allocate(self, node: NodeId, block: BlockId) -> CacheEntry:
        cache = self.system.caches[node]
        slot = cache.slot_for(block)
        if slot.needs_eviction(block):
            self._replace_entry(node, slot.entry)
        return cache.install(slot, block)

    def _replace_entry(self, node: NodeId, entry: CacheEntry) -> None:
        block = entry.tag
        assert block is not None
        self.stats.count(ev.REPLACEMENTS)
        state = decode_state(entry)
        home = self.home(block)
        costs = self.system.costs
        directory = self._dir(block)
        if state is FullMapState.INVALID:
            directory.pointers.discard(node)
            return
        if state is FullMapState.DIRTY:
            self._send(
                MsgKind.WRITEBACK,
                node,
                home,
                costs.block_data(self.system.config.block_size_words),
            )
            self.stats.count(ev.WRITEBACKS)
            self.system.memory_for(block).write_block(block, entry.data)
            directory.dirty = False
        else:
            self._send(MsgKind.REPLACE_NOTIFY, node, home, costs.request())
        directory.pointers.discard(node)
        entry.state_field = StateField()

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Pointer accuracy (when not overflowed) + single dirty copy."""
        for block, directory in self._directory.items():
            holders = set()
            dirty = []
            for cache in self.system.caches:
                entry = cache.find(block)
                state = decode_state(entry)
                if state is not FullMapState.INVALID:
                    holders.add(cache.node_id)
                if state is FullMapState.DIRTY:
                    dirty.append(cache.node_id)
            if directory.broadcast:
                # Overflow: the directory may only under-approximate.
                if directory.pointers:
                    raise ProtocolError(
                        f"block {block}: broadcast mode with pointers "
                        f"{sorted(directory.pointers)}"
                    )
            else:
                if holders != directory.pointers:
                    raise ProtocolError(
                        f"block {block}: pointers "
                        f"{sorted(directory.pointers)}, holders "
                        f"{sorted(holders)}"
                    )
            if len(dirty) > 1:
                raise ProtocolError(
                    f"block {block} dirty at {dirty}"
                )
            if directory.dirty and not dirty:
                raise ProtocolError(
                    f"block {block}: directory dirty, no dirty copy"
                )
