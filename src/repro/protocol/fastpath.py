"""Stable-state fast paths for the compiled-trace replay loop.

Most references in a steady-state workload are *message-free*: a read hit
on a valid local copy, or a write by an exclusive owner (in either mode).
The full :meth:`~repro.protocol.stenstrom.StenstromProtocol.read` /
``write`` dispatch still pays for address checking, a cache probe, state
decoding and the mode-policy owner lookup on every one of them.

A :class:`FastPathTable` memoises the answer per ``(node, block)``: after a
slow-path reference it records the live cache entry, its replacement-policy
slot and (for reads) the owner's entry, stamped with the protocol's
``fastpath_epoch``.  Any event that could change a "no messages needed"
answer -- ownership transfer, mode switch, replacement, fault degradation
-- bumps the epoch, so a stale record fails its stamp comparison and the
reference falls back to the slow path (which re-registers it).  Conditions
the epoch deliberately does *not* cover -- the present vector gaining or
losing sharers -- are re-checked live on every hit, because a record's
entry object is the protocol's own entry, not a copy.

Two further record kinds cover the dominant *message-bearing* stable
states.  The global-read remote read (§2.2 item 2(b)ii via the OWNER
field): its two unicasts -- request out, word-and-owner back -- are a
pure function of the ``(node, owner)`` pair, so the record carries their
memoised route plans and costs and a hit replays the exact link, switch
and ledger increments the slow path would have produced.  And the
distributed-write owner write with sharers (item 3(b)): its WRITE_UPDATE
multicast plan -- notably the scheme-2 vector-split tree -- is a pure
function of the ``(owner, present-vector)`` pair, so the record memoises
the plan :func:`~repro.network.multicast.multicast_plan_for` selects and
stamps the protocol's ``present_epoch``; any present-vector membership
change anywhere retires it.

A fast-path hit replicates the slow path's observable effects exactly:
the same ``stats`` events and traffic ledgers, the same per-link network
counters, the same replacement-policy touch, the same data-word access
and the same mode-policy consultation (which may itself trigger a
``set_mode`` and bump the epoch).  Replaying a compiled trace through
the table is therefore bit-identical to replaying it reference by
reference (proven every ``repro perf`` run; docs/PERF.md).

The table is only handed out in configurations where the shortcut is
sound: ``StenstromProtocol.fastpath`` returns ``None`` under fault
injection, with a trace recorder attached, or with the message log
enabled (a hit does not append ``LoggedMessage`` entries), and the
engine engages it only when value verification and invariant re-checks
are off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.state import Mode
from repro.errors import TraceError
from repro.network.multicast import (
    Multicaster,
    _payload_unicast_result,
    multicast_plan_for,
)
from repro.network.routing import unicast_plan
from repro.protocol.messages import MsgKind
from repro.sim import stats as ev
from repro.types import Address, Op

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.protocol.stenstrom import StenstromProtocol
    from repro.sim.ctrace import CompiledTrace


class FastPathTable:
    """Per-``(node, block)`` memo of message-free reference answers.

    Records are keyed by the integer ``block * n_nodes + node`` (never
    negative for a registered block, so malformed trace rows simply miss).
    A local read hit is a 7-tuple ``(epoch, entry, policy, set_index,
    way, owner, owner_entry)``; a global-read remote read is an 11-tuple
    extending it with ``(plan_out, cost_out, plan_back, cost_back)`` --
    the memoised request/reply unicasts; a message-free write is the
    5-tuple ``(epoch, entry, policy, set_index, way)`` -- the writer *is*
    the owner, so no separate owner fields are needed; a distributed-write
    owner write with sharers is the 9-tuple extending the write record
    with ``(present_epoch, copy_entries, plan, cost)`` -- the memoised
    WRITE_UPDATE multicast.  Record kinds are discriminated by length.
    ``hits`` and ``misses`` count fast-path engagement across all
    :meth:`replay` calls (the ``bench_fastpath_hit_rate`` checks).
    """

    __slots__ = ("_protocol", "_reads", "_writes", "hits", "misses")

    def __init__(self, protocol: "StenstromProtocol") -> None:
        self._protocol = protocol
        self._reads: dict[int, tuple] = {}
        self._writes: dict[int, tuple] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Registration (off the hot path: runs once per slow-path reference)
    # ------------------------------------------------------------------

    def _register_read(self, node: int, block: int) -> None:
        protocol = self._protocol
        system = protocol.system
        cache = system.caches[node]
        location = cache.locate(block)
        if location is None:
            return
        entry = cache.find(block)
        owner = protocol._owner_of(block)
        if owner is None:
            return
        owner_entry = system.caches[owner].find(block)
        if owner_entry is None or not owner_entry.state_field.owned:
            return
        key = block * system.n_nodes + node
        if entry.state_field.valid:
            self._reads[key] = (
                protocol.fastpath_epoch,
                entry,
                cache.policy,
                location[0],
                location[1],
                owner,
                owner_entry,
            )
            return
        # Invalid placeholder in global-read mode: the steady-state remote
        # read (2b ii via the OWNER field) is two deterministic unicasts
        # whose plans and costs depend only on the (node, owner) pair.
        if owner_entry.state_field.distributed_write:
            return
        if entry.state_field.owner != owner:
            return
        network = system.network
        self._reads[key] = (
            protocol.fastpath_epoch,
            entry,
            cache.policy,
            location[0],
            location[1],
            owner,
            owner_entry,
            unicast_plan(network, node, owner),
            _payload_unicast_result(
                network, node, protocol._cost_request, owner, False
            ).cost,
            unicast_plan(network, owner, node),
            _payload_unicast_result(
                network, owner, protocol._cost_word_owner, node, False
            ).cost,
        )

    def _register_write(self, node: int, block: int) -> None:
        protocol = self._protocol
        system = protocol.system
        cache = system.caches[node]
        location = cache.locate(block)
        if location is None:
            return
        entry = cache.find(block)
        field = entry.state_field
        if not (field.valid and field.owned):
            return
        key = block * system.n_nodes + node
        if not field.distributed_write or len(field.present) == 1:
            self._writes[key] = (
                protocol.fastpath_epoch,
                entry,
                cache.policy,
                location[0],
                location[1],
            )
            return
        # Non-exclusive distributed-write owner (3b): the steady-state
        # write is one WRITE_UPDATE multicast to the copy holders plus a
        # data-word store at every copy.  The plan depends only on the
        # (owner, present-vector) pair, so it is memoised here; a custom
        # multicaster (or one with a net recorder) may account sends
        # differently, so only the plain Multicaster is memoised.
        multicaster = system.multicaster
        if (
            type(multicaster) is not Multicaster
            or multicaster.recorder is not None
        ):
            return
        copy_entries = []
        caches = system.caches
        for copy in field.others(node):
            copy_entry = caches[copy].find(block)
            if copy_entry is None or not copy_entry.state_field.valid:
                return
            copy_entries.append(copy_entry)
        word_bits = protocol._cost_word
        plan = multicast_plan_for(
            system.network,
            multicaster.scheme,
            node,
            field.others(node),
            word_bits,
        )
        self._writes[key] = (
            protocol.fastpath_epoch,
            entry,
            cache.policy,
            location[0],
            location[1],
            protocol.present_epoch,
            tuple(copy_entries),
            plan,
            plan.cost_for(word_bits),
        )

    # ------------------------------------------------------------------
    # The hot loop
    # ------------------------------------------------------------------

    def replay(
        self, trace: "CompiledTrace", base_index: int = 0
    ) -> tuple[int, int]:
        """Replay every column row; returns ``(n_reads, n_writes)``.

        Owns the whole loop so the per-reference cost on a hit is a dict
        probe, an epoch compare and a handful of attribute checks -- no
        ``Reference`` or ``Address`` is constructed, no message sent.
        Misses take the ordinary ``protocol.read``/``write`` path and then
        register the reference for next time.  ``base_index`` offsets the
        reference index reported in errors, so a caller replaying a slice
        of a larger trace (the batched kernel's fallback) reports the
        position in the original trace.
        """
        protocol = self._protocol
        system = protocol.system
        n_nodes = system.n_nodes
        block_size = system.config.block_size_words
        events = protocol.stats.events
        traffic_bits = protocol.stats.traffic_bits
        traffic_messages = protocol.stats.traffic_messages
        request_bits = protocol._cost_request
        word_owner_bits = protocol._cost_word_owner
        policy = protocol.mode_policy
        reads_get = self._reads.get
        writes_get = self._writes.get
        read_slow = protocol.read
        write_slow = protocol.write
        set_mode = protocol.set_mode
        register_read = self._register_read
        register_write = self._register_write
        dw = Mode.DISTRIBUTED_WRITE
        gr = Mode.GLOBAL_READ
        op_read = Op.READ
        op_write = Op.WRITE
        reads_name = ev.READS
        read_hits_name = ev.READ_HITS
        read_misses_name = ev.READ_MISSES
        coherence_misses_name = ev.COHERENCE_MISSES
        global_reads_name = ev.GLOBAL_READS
        writes_name = ev.WRITES
        write_hits_name = ev.WRITE_HITS
        load_direct_kind = MsgKind.LOAD_DIRECT.value
        word_reply_kind = MsgKind.WORD_REPLY.value
        write_update_kind = MsgKind.WRITE_UPDATE.value
        write_updates_name = ev.WRITE_UPDATES
        word_bits = protocol._cost_word
        hits = misses = 0
        n_reads = n_writes = 0
        # Per-hit accounting that is identical for every hit of a kind is
        # deferred: plain int accumulators (and a per-record count for the
        # global-read records) here, flushed into the Counter ledgers and
        # link arrays once at the end.  Counter and array addition commute
        # with the interleaved slow-path updates and nothing reads the
        # ledgers mid-replay, so batched flushing is bit-identical; the
        # ``finally`` keeps the flush exact even when a slow-path call
        # raises mid-trace.
        local_read_hits = 0
        fast_write_hits = 0
        # Keyed by id(record): the tuples hold unhashable entries, and
        # the value keeps the record alive so ids cannot be recycled.
        pending: dict[int, list] = {}
        pending_get = pending.get
        dw_pending: dict[int, list] = {}
        dw_pending_get = dw_pending.get
        epoch = protocol.fastpath_epoch
        pepoch = protocol.present_epoch
        try:
            for index, (node, op, block, offset, value) in enumerate(
                zip(
                    trace.nodes,
                    trace.ops,
                    trace.blocks,
                    trace.offsets,
                    trace.values,
                )
            ):
                if node < 0 or node >= n_nodes:
                    raise TraceError(
                        f"reference {base_index + index}: node {node} "
                        f"outside this {n_nodes}-node system"
                    )
                key = block * n_nodes + node
                if op:
                    n_writes += 1
                    record = writes_get(key)
                    if record is not None and record[0] == epoch:
                        entry = record[1]
                        field = entry.state_field
                        if len(record) == 5:
                            # Exclusivity is re-checked live: the present
                            # vector changes without bumping the epoch.
                            if (
                                field.valid
                                and field.owned
                                and (
                                    not field.distributed_write
                                    or len(field.present) == 1
                                )
                                and 0 <= offset < block_size
                            ):
                                hits += 1
                                fast_write_hits += 1
                                record[2].touch(record[3], record[4])
                                entry.data[offset] = value
                                field.modified = True
                                if policy is not None:
                                    mode = (
                                        dw
                                        if field.distributed_write
                                        else gr
                                    )
                                    n_sharers = len(field.present)
                                    policy.observe(
                                        block,
                                        op_write,
                                        owner_visible=True,
                                        mode=mode,
                                        n_sharers=n_sharers,
                                    )
                                    desired = policy.decide(
                                        block, mode, n_sharers
                                    )
                                    if (
                                        desired is not None
                                        and desired is not mode
                                    ):
                                        set_mode(node, block, desired)
                                        epoch = protocol.fastpath_epoch
                                        pepoch = protocol.present_epoch
                                continue
                        elif (
                            field.valid
                            and field.owned
                            and field.distributed_write
                            and record[5] == pepoch
                            and 0 <= offset < block_size
                        ):
                            # Distributed-write multicast hit: the word
                            # lands at the owner and every copy now; the
                            # per-hit WRITE_UPDATE traffic is identical
                            # for every hit of the record, so it is
                            # counted here and flushed scaled.
                            hits += 1
                            record[2].touch(record[3], record[4])
                            entry.data[offset] = value
                            field.modified = True
                            for copy_entry in record[6]:
                                copy_entry.data[offset] = value
                            counted = dw_pending_get(id(record))
                            if counted is None:
                                dw_pending[id(record)] = [record, 1]
                            else:
                                counted[1] += 1
                            if policy is not None:
                                n_sharers = len(field.present)
                                policy.observe(
                                    block,
                                    op_write,
                                    owner_visible=True,
                                    mode=dw,
                                    n_sharers=n_sharers,
                                )
                                desired = policy.decide(
                                    block, dw, n_sharers
                                )
                                if (
                                    desired is not None
                                    and desired is not dw
                                ):
                                    set_mode(node, block, desired)
                                    epoch = protocol.fastpath_epoch
                                    pepoch = protocol.present_epoch
                            continue
                    misses += 1
                    write_slow(node, Address(block, offset), value)
                    register_write(node, block)
                    epoch = protocol.fastpath_epoch
                    pepoch = protocol.present_epoch
                else:
                    n_reads += 1
                    record = reads_get(key)
                    if record is not None and record[0] == epoch:
                        entry = record[1]
                        if len(record) == 7:
                            if (
                                entry.state_field.valid
                                and 0 <= offset < block_size
                            ):
                                hits += 1
                                local_read_hits += 1
                                record[2].touch(record[3], record[4])
                                if policy is not None:
                                    owner = record[5]
                                    owner_field = record[6].state_field
                                    mode = (
                                        dw
                                        if owner_field.distributed_write
                                        else gr
                                    )
                                    n_sharers = len(owner_field.present)
                                    policy.observe(
                                        block,
                                        op_read,
                                        owner_visible=(
                                            node == owner or mode is gr
                                        ),
                                        mode=mode,
                                        n_sharers=n_sharers,
                                    )
                                    desired = policy.decide(
                                        block, mode, n_sharers
                                    )
                                    if (
                                        desired is not None
                                        and desired is not mode
                                    ):
                                        set_mode(owner, block, desired)
                                        epoch = protocol.fastpath_epoch
                                        pepoch = protocol.present_epoch
                                continue
                        elif (
                            not entry.state_field.valid
                            and 0 <= offset < block_size
                        ):
                            # Global-read remote read: count the hit per
                            # record; the flush replays its memoised
                            # request/reply unicasts.  The owner's mode
                            # is epoch-stable but re-checked live for
                            # free.
                            owner_field = record[6].state_field
                            if (
                                owner_field.owned
                                and not owner_field.distributed_write
                            ):
                                hits += 1
                                counted = pending_get(id(record))
                                if counted is None:
                                    pending[id(record)] = [record, 1]
                                else:
                                    counted[1] += 1
                                record[2].touch(record[3], record[4])
                                if policy is not None:
                                    n_sharers = len(owner_field.present)
                                    policy.observe(
                                        block,
                                        op_read,
                                        owner_visible=True,
                                        mode=gr,
                                        n_sharers=n_sharers,
                                    )
                                    desired = policy.decide(
                                        block, gr, n_sharers
                                    )
                                    if (
                                        desired is not None
                                        and desired is not gr
                                    ):
                                        set_mode(record[5], block, desired)
                                        epoch = protocol.fastpath_epoch
                                        pepoch = protocol.present_epoch
                                continue
                    misses += 1
                    read_slow(node, Address(block, offset))
                    register_read(node, block)
                    epoch = protocol.fastpath_epoch
                    pepoch = protocol.present_epoch
        finally:
            gr_hits = 0
            if pending:
                apply_scaled = system.network.apply_plan_traffic_scaled
                bits_out = bits_back = 0
                for record, count in pending.values():
                    gr_hits += count
                    bits_out += record[8] * count
                    bits_back += record[10] * count
                    apply_scaled(record[7], request_bits, count)
                    apply_scaled(record[9], word_owner_bits, count)
                traffic_bits[load_direct_kind] += bits_out
                traffic_messages[load_direct_kind] += gr_hits
                traffic_bits[word_reply_kind] += bits_back
                traffic_messages[word_reply_kind] += gr_hits
                events[read_misses_name] += gr_hits
                events[coherence_misses_name] += gr_hits
                events[global_reads_name] += gr_hits
            dw_hits = 0
            if dw_pending:
                apply_scaled = system.network.apply_plan_traffic_scaled
                bits_update = 0
                for record, count in dw_pending.values():
                    dw_hits += count
                    bits_update += record[8] * count
                    apply_scaled(record[7], word_bits, count)
                traffic_bits[write_update_kind] += bits_update
                traffic_messages[write_update_kind] += dw_hits
                events[write_updates_name] += dw_hits
            if local_read_hits or gr_hits:
                events[reads_name] += local_read_hits + gr_hits
            if local_read_hits:
                events[read_hits_name] += local_read_hits
            if fast_write_hits or dw_hits:
                events[writes_name] += fast_write_hits + dw_hits
                events[write_hits_name] += fast_write_hits + dw_hits
            self.hits += hits
            self.misses += misses
        return n_reads, n_writes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FastPathTable(reads={len(self._reads)}, "
            f"writes={len(self._writes)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
