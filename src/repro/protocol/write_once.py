"""Goodman's write-once protocol, adapted to a multistage network (§4).

Goodman (1983) designed write-once for a snooping bus: the first write to a
shared block is written through to memory (and observed by every cache,
invalidating their copies); subsequent writes stay local.  On a multistage
network nothing can be observed for free, so -- as the paper's §1 notes for
all snoopy protocols -- the broadcast must be replaced by a *directory*:
the home memory module keeps, per block, the set of caches holding a copy
and whether one of them is dirty, and multicasts invalidations to exactly
the copies.  This is the adaptation simulated here; it is the protocol
eq. 10 models analytically with the two-state (exclusive/shared) Markov
chain of Figure 7.

Per-cache block states (Goodman's, encoded in the generic state field):

* ``INVALID`` -- no copy (``V = 0``);
* ``VALID``   -- clean, possibly shared (``V = 1, O = 0``);
* ``RESERVED``-- written exactly once, memory consistent, only copy
  (``V = 1, O = 1, M = 0``);
* ``DIRTY``   -- written repeatedly, memory stale, only copy
  (``V = 1, O = 1, M = 1``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cache.entry import CacheEntry
from repro.cache.state import StateField
from repro.errors import ProtocolError
from repro.protocol.base import CoherenceProtocol
from repro.protocol.messages import MsgKind
from repro.sim import stats as ev
from repro.types import Address, BlockId, NodeId


class WriteOnceState(enum.Enum):
    """Goodman's four block states."""

    INVALID = "Invalid"
    VALID = "Valid"
    RESERVED = "Reserved"
    DIRTY = "Dirty"


def decode_state(entry: CacheEntry | None) -> WriteOnceState:
    """Read a Goodman state out of the generic state-field bits."""
    if entry is None or not entry.state_field.valid:
        return WriteOnceState.INVALID
    if not entry.state_field.owned:
        return WriteOnceState.VALID
    if entry.state_field.modified:
        return WriteOnceState.DIRTY
    return WriteOnceState.RESERVED


def encode_state(state: WriteOnceState) -> StateField:
    """A fresh state field encoding ``state``."""
    return StateField(
        valid=state is not WriteOnceState.INVALID,
        owned=state in (WriteOnceState.RESERVED, WriteOnceState.DIRTY),
        modified=state is WriteOnceState.DIRTY,
    )


@dataclass
class _DirectoryEntry:
    """Home-side bookkeeping: copy holders, plus the *exclusive* holder.

    ``dirty_holder`` names the cache holding the block Reserved or Dirty.
    The directory cannot observe the silent Reserved-to-Dirty promotion
    (a local write), so any miss while an exclusive holder exists recalls
    the block conservatively -- a Reserved holder's recall writes back
    data memory already has, which costs bits but never correctness.
    """

    sharers: set[NodeId] = field(default_factory=set)
    dirty_holder: NodeId | None = None


class WriteOnceProtocol(CoherenceProtocol):
    """Directory-adapted write-once over a :class:`~repro.sim.system.System`."""

    name = "write-once"

    def __init__(self, system) -> None:
        super().__init__(system)
        self._directory: dict[BlockId, _DirectoryEntry] = {}

    # ------------------------------------------------------------------

    def _dir(self, block: BlockId) -> _DirectoryEntry:
        entry = self._directory.get(block)
        if entry is None:
            entry = _DirectoryEntry()
            self._directory[block] = entry
        return entry

    def directory_sharers(self, block: BlockId) -> frozenset[NodeId]:
        """Caches the home module believes hold ``block`` (for tests)."""
        return frozenset(self._dir(block).sharers)

    # ------------------------------------------------------------------

    def read(self, node: NodeId, address: Address) -> int:
        self.system.check_address(address)
        self.stats.count(ev.READS)
        block, offset = address
        entry = self.system.caches[node].find(block)
        if decode_state(entry) is not WriteOnceState.INVALID:
            assert entry is not None
            self.stats.count(ev.READ_HITS)
            self.system.caches[node].touch(block)
            return entry.read_word(offset)
        self.stats.count(ev.READ_MISSES)
        entry = self._fetch_block(node, block)
        return entry.read_word(offset)

    def write(self, node: NodeId, address: Address, value: int) -> None:
        self.system.check_address(address)
        self.stats.count(ev.WRITES)
        block, offset = address
        costs = self.system.costs
        home = self.home(block)
        entry = self.system.caches[node].find(block)
        state = decode_state(entry)
        if state in (WriteOnceState.RESERVED, WriteOnceState.DIRTY):
            # Local write; Reserved promotes to Dirty.
            assert entry is not None
            self.stats.count(ev.WRITE_HITS)
            self.system.caches[node].touch(block)
            entry.write_word(offset, value)
            entry.state_field.modified = True
            return
        if state is WriteOnceState.VALID:
            # The "write once": write through to memory and have the home
            # module invalidate every other copy.
            assert entry is not None
            self.stats.count(ev.WRITE_HITS)
            self.system.caches[node].touch(block)
            self._send(
                MsgKind.DIR_WRITE_THROUGH, node, home, costs.word_data()
            )
            self.system.memory_for(block).write_word(block, offset, value)
            self._invalidate_others(node, block)
            entry.write_word(offset, value)
            entry.state_field.owned = True
            entry.state_field.modified = False  # memory is consistent
            return
        # Write miss: read the block with intent to modify -- fetch,
        # invalidate every other copy, write locally (block goes Dirty).
        self.stats.count(ev.WRITE_MISSES)
        entry = self._fetch_block(node, block)
        self._invalidate_others(node, block)
        entry.write_word(offset, value)
        entry.state_field.owned = True
        entry.state_field.modified = True

    # ------------------------------------------------------------------

    def _fetch_block(self, node: NodeId, block: BlockId) -> CacheEntry:
        """Miss service: recall a dirty copy if one exists, then deliver."""
        home = self.home(block)
        costs = self.system.costs
        memory = self.system.memory_for(block)
        directory = self._dir(block)
        self._send(MsgKind.LOAD_REQ, node, home, costs.request())
        if directory.dirty_holder is not None:
            holder = directory.dirty_holder
            holder_entry = self.system.caches[holder].find(block)
            if holder_entry is None:
                raise ProtocolError(
                    f"directory says cache {holder} holds block {block} "
                    f"dirty, but it has no entry"
                )
            self._send(MsgKind.DIR_RECALL, home, holder, costs.request())
            self._send(
                MsgKind.WRITEBACK,
                holder,
                home,
                costs.block_data(self.system.config.block_size_words),
            )
            self.stats.count(ev.WRITEBACKS)
            memory.write_block(block, holder_entry.data)
            holder_entry.state_field.owned = False
            holder_entry.state_field.modified = False
            directory.dirty_holder = None
        self._send(
            MsgKind.BLOCK_REPLY,
            home,
            node,
            costs.block_data(self.system.config.block_size_words),
        )
        entry = self._allocate(node, block)
        entry.data = memory.read_block(block)
        entry.state_field = encode_state(WriteOnceState.VALID)
        directory.sharers.add(node)
        return entry

    def _invalidate_others(self, node: NodeId, block: BlockId) -> None:
        """Home-side invalidation multicast to every other copy."""
        home = self.home(block)
        directory = self._dir(block)
        others = frozenset(directory.sharers - {node})
        if others:
            self._multicast(
                MsgKind.DIR_INVALIDATE,
                home,
                others,
                self.system.costs.request(),
            )
            self.stats.count(ev.INVALIDATIONS, len(others))
            for other in others:
                other_entry = self.system.caches[other].find(block)
                if other_entry is not None:
                    other_entry.state_field.valid = False
                    other_entry.state_field.owned = False
                    other_entry.state_field.modified = False
        directory.sharers = {node}
        directory.dirty_holder = node

    # ------------------------------------------------------------------

    def _allocate(self, node: NodeId, block: BlockId) -> CacheEntry:
        cache = self.system.caches[node]
        slot = cache.slot_for(block)
        if slot.needs_eviction(block):
            self._replace_entry(node, slot.entry)
        return cache.install(slot, block)

    def _replace_entry(self, node: NodeId, entry: CacheEntry) -> None:
        block = entry.tag
        assert block is not None
        self.stats.count(ev.REPLACEMENTS)
        state = decode_state(entry)
        home = self.home(block)
        costs = self.system.costs
        directory = self._dir(block)
        if state is WriteOnceState.INVALID:
            # An invalidated husk; the directory already dropped us.
            directory.sharers.discard(node)
            return
        if state is WriteOnceState.DIRTY:
            self._send(
                MsgKind.WRITEBACK,
                node,
                home,
                costs.block_data(self.system.config.block_size_words),
            )
            self.stats.count(ev.WRITEBACKS)
            self.system.memory_for(block).write_block(block, entry.data)
        else:
            # Valid or Reserved: memory is current, just tell the home.
            self._send(MsgKind.REPLACE_NOTIFY, node, home, costs.request())
        directory.sharers.discard(node)
        if directory.dirty_holder == node:
            directory.dirty_holder = None
        entry.state_field = StateField()

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Directory/cache agreement and single-dirty-copy invariants."""
        for block, directory in self._directory.items():
            holders = set()
            dirty = []
            for cache in self.system.caches:
                entry = cache.find(block)
                state = decode_state(entry)
                if state is not WriteOnceState.INVALID:
                    holders.add(cache.node_id)
                if state in (WriteOnceState.DIRTY, WriteOnceState.RESERVED):
                    dirty.append(cache.node_id)
            if holders != directory.sharers:
                raise ProtocolError(
                    f"write-once directory for block {block} says "
                    f"{sorted(directory.sharers)}, caches say "
                    f"{sorted(holders)}"
                )
            if len(dirty) > 1:
                raise ProtocolError(
                    f"write-once block {block} reserved/dirty at "
                    f"{dirty}"
                )
            if dirty and holders != set(dirty):
                raise ProtocolError(
                    f"write-once block {block} dirty at {dirty} "
                    f"while shared at {sorted(holders)}"
                )
