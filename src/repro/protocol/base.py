"""The interface every coherence protocol implements, plus shared plumbing.

A protocol is an object driving one :class:`~repro.sim.system.System`:
:meth:`read` and :meth:`write` perform a processor reference *atomically*
(all consequent protocol messages included) and account every message's
network cost.  The atomic-reference, trace-driven methodology follows
Archibald & Baer (1986), which the paper itself cites for protocol
evaluation; the paper's metric is traffic, not timing, so no cycle model is
needed.
"""

from __future__ import annotations

import abc
from typing import NamedTuple

from repro.network.multicast import MulticastResult
from repro.protocol.messages import MsgKind
from repro.sim.stats import Stats
from repro.sim.system import System
from repro.types import Address, BlockId, NodeId


class LoggedMessage(NamedTuple):
    """One protocol message as seen by the (optional) message log.

    ``dests`` holds the requested destination set -- for a unicast, a
    single element.  ``cost`` is the network cost actually paid (which for
    a multicast depends on the scheme and placement).  ``loads`` is the
    message's per-link traffic with dependency structure, as consumed by
    the timing model of :mod:`repro.sim.timing`.
    """

    kind: MsgKind
    source: NodeId
    dests: frozenset[NodeId]
    payload_bits: int
    cost: int
    loads: tuple


class CoherenceProtocol(abc.ABC):
    """Base class for all protocols.

    Subclasses implement :meth:`read` and :meth:`write`; the helpers here
    send protocol messages through the system's multicaster and keep the
    per-kind traffic ledger, so every protocol is costed identically.
    """

    #: Human-readable protocol name (overridden by subclasses).
    name = "abstract"

    def __init__(self, system: System) -> None:
        self.system = system
        self.stats = Stats()
        self.message_log: list[LoggedMessage] | None = None

    def enable_message_log(self) -> None:
        """Start recording every protocol message in ``message_log``.

        Intended for tests and debugging: the scenario tests assert the
        exact §2.2 message sequences against this log.
        """
        self.message_log = []

    def _log(
        self,
        kind: MsgKind,
        source: NodeId,
        dests: frozenset[NodeId],
        bits: int,
        result: MulticastResult,
    ) -> None:
        if self.message_log is not None:
            self.message_log.append(
                LoggedMessage(
                    kind, source, dests, bits, result.cost, result.loads
                )
            )

    # ------------------------------------------------------------------
    # The processor-facing interface
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def read(self, node: NodeId, address: Address) -> int:
        """Processor ``node`` reads one word; returns the value observed."""

    @abc.abstractmethod
    def write(self, node: NodeId, address: Address, value: int) -> None:
        """Processor ``node`` writes ``value`` to one word."""

    # ------------------------------------------------------------------
    # Messaging helpers (cost accounting)
    # ------------------------------------------------------------------

    def _send(
        self, kind: MsgKind, source: NodeId, dest: NodeId, bits: int
    ) -> None:
        """Unicast ``bits`` payload bits from ``source`` to ``dest``."""
        result = self.system.multicaster.send_payload_one(source, bits, dest)
        self.stats.record_traffic(kind.value, result.cost)
        if self.message_log is not None:
            # result.requested is exactly frozenset((dest,)).
            self._log(kind, source, result.requested, bits, result)

    def _multicast(
        self,
        kind: MsgKind,
        source: NodeId,
        dests: frozenset[NodeId] | set[NodeId],
        bits: int,
    ) -> MulticastResult:
        """One-to-many send using the system's configured scheme."""
        dest_set = dests if type(dests) is frozenset else frozenset(dests)
        result = self.system.multicaster.send_payload(source, bits, dest_set)
        self.stats.record_traffic(kind.value, result.cost)
        if self.message_log is not None:
            self._log(kind, source, dest_set, bits, result)
        return result

    # ------------------------------------------------------------------
    # Common structure
    # ------------------------------------------------------------------

    def home(self, block: BlockId) -> NodeId:
        """Home memory module port of ``block``."""
        return self.system.home(block)

    def check_invariants(self) -> None:
        """Verify protocol-specific structural invariants (optional).

        The verifying engine calls this after every reference when
        ``verify=True``; protocols with nothing to check inherit this
        no-op.  Implementations raise
        :class:`~repro.errors.CoherenceError` on violation.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(system={self.system.config.n_nodes})"
