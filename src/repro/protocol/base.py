"""The interface every coherence protocol implements, plus shared plumbing.

A protocol is an object driving one :class:`~repro.sim.system.System`:
:meth:`read` and :meth:`write` perform a processor reference *atomically*
(all consequent protocol messages included) and account every message's
network cost.  The atomic-reference, trace-driven methodology follows
Archibald & Baer (1986), which the paper itself cites for protocol
evaluation; the paper's metric is traffic, not timing, so no cycle model is
needed.
"""

from __future__ import annotations

import abc
from typing import NamedTuple

from repro.errors import TransientNetworkError, UnreachableRouteError
from repro.network.multicast import MulticastResult
from repro.protocol.messages import MsgKind
from repro.sim import stats as ev
from repro.sim.stats import Stats
from repro.sim.system import System
from repro.types import Address, BlockId, NodeId


class LoggedMessage(NamedTuple):
    """One protocol message as seen by the (optional) message log.

    ``dests`` holds the requested destination set -- for a unicast, a
    single element.  ``cost`` is the network cost actually paid (which for
    a multicast depends on the scheme and placement).  ``loads`` is the
    message's per-link traffic with dependency structure, as consumed by
    the timing model of :mod:`repro.sim.timing`.
    """

    kind: MsgKind
    source: NodeId
    dests: frozenset[NodeId]
    payload_bits: int
    cost: int
    loads: tuple


class CoherenceProtocol(abc.ABC):
    """Base class for all protocols.

    Subclasses implement :meth:`read` and :meth:`write`; the helpers here
    send protocol messages through the system's multicaster and keep the
    per-kind traffic ledger, so every protocol is costed identically.
    """

    #: Human-readable protocol name (overridden by subclasses).
    name = "abstract"

    def __init__(self, system: System) -> None:
        self.system = system
        self.stats = Stats()
        self.message_log: list[LoggedMessage] | None = None
        #: Optional :class:`~repro.obs.recorder.TraceRecorder`.  Attached
        #: via :func:`repro.obs.hooks.attach_recorder`; every traffic and
        #: fault accounting site below also emits a trace event when one
        #: is present, so trace event counts reconcile exactly with
        #: ``stats``.  ``None`` (the default) costs one attribute test
        #: per site and allocates nothing.
        self.recorder = None
        #: Monotonic generation counter for stable-state fast paths.  Any
        #: event that can invalidate a cached "this reference needs no
        #: messages" answer -- ownership transfer, mode switch, replacement,
        #: fault degradation -- bumps it, and every
        #: :class:`~repro.protocol.fastpath.FastPathTable` record carries
        #: the epoch it was minted under (docs/PERF.md).
        self.fastpath_epoch = 0
        #: Companion generation counter for the *membership* of present
        #: vectors.  Some membership changes (a reader joining at the
        #: owner, an UnOwned copy clearing its flag on replacement) leave
        #: every memoised message-free answer intact -- so they must not
        #: bump ``fastpath_epoch`` -- but they do invalidate the
        #: distributed-write multicast records, whose memoised split tree
        #: is a pure function of ``(owner, present-vector)``.
        self.present_epoch = 0
        #: The block the protocol is currently operating on; maintained by
        #: fault-aware subclasses so that an
        #: :class:`~repro.errors.UnreachableRouteError` surfacing from deep
        #: inside a reference (e.g. while retiring an eviction victim) can
        #: be attributed to the right block for degradation.
        self._active_block: BlockId | None = None

    def enable_message_log(self) -> None:
        """Start recording every protocol message in ``message_log``.

        Intended for tests and debugging: the scenario tests assert the
        exact §2.2 message sequences against this log.
        """
        self.message_log = []

    def _log(
        self,
        kind: MsgKind,
        source: NodeId,
        dests: frozenset[NodeId],
        bits: int,
        result: MulticastResult,
    ) -> None:
        if self.message_log is not None:
            self.message_log.append(
                LoggedMessage(
                    kind, source, dests, bits, result.cost, result.loads
                )
            )

    # ------------------------------------------------------------------
    # The processor-facing interface
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def read(self, node: NodeId, address: Address) -> int:
        """Processor ``node`` reads one word; returns the value observed."""

    @abc.abstractmethod
    def write(self, node: NodeId, address: Address, value: int) -> None:
        """Processor ``node`` writes ``value`` to one word."""

    # ------------------------------------------------------------------
    # Messaging helpers (cost accounting)
    # ------------------------------------------------------------------

    def _send(
        self, kind: MsgKind, source: NodeId, dest: NodeId, bits: int
    ) -> None:
        """Unicast ``bits`` payload bits from ``source`` to ``dest``."""
        if self.system.fault_injector is not None:
            self._send_recovering(kind, source, dest, bits)
            return
        result = self.system.multicaster.send_payload_one(source, bits, dest)
        self.stats.record_traffic(kind.value, result.cost)
        if self.recorder is not None:
            self.recorder.message(kind.value, source, (dest,), bits, result)
        if self.message_log is not None:
            # result.requested is exactly frozenset((dest,)).
            self._log(kind, source, result.requested, bits, result)

    def _multicast(
        self,
        kind: MsgKind,
        source: NodeId,
        dests: frozenset[NodeId] | set[NodeId],
        bits: int,
    ) -> MulticastResult:
        """One-to-many send using the system's configured scheme."""
        dest_set = dests if type(dests) is frozenset else frozenset(dests)
        if self.system.fault_injector is not None:
            return self._multicast_recovering(kind, source, dest_set, bits)
        result = self.system.multicaster.send_payload(source, bits, dest_set)
        self.stats.record_traffic(kind.value, result.cost)
        if self.recorder is not None:
            self.recorder.message(kind.value, source, dest_set, bits, result)
        if self.message_log is not None:
            self._log(kind, source, dest_set, bits, result)
        return result

    # ------------------------------------------------------------------
    # Fault-aware messaging (only reached when a fault plan is active)
    # ------------------------------------------------------------------
    #
    # The recovery contract (docs/FAULTS.md): every delivery is judged by
    # the injector; a dropped delivery is detected by ack timeout and the
    # message re-sent (each attempt pays its network cost), bounded by
    # the plan's retry budget; a successful delivery is confirmed by an
    # ack whose cost is also accounted.  A dead route -- the unique omega
    # path crossing a failed link or switch, in either direction, since
    # the ack must travel back -- cannot be retried around, so it raises
    # UnreachableRouteError tagged with the block being operated on;
    # protocols catch it at the reference level and degrade that block.
    # Recovery-control traffic (the acks) is assumed fault-free: re-acking
    # acks would recurse without changing what the protocol can observe.

    def _dead_route(
        self, source: NodeId, dest: NodeId
    ) -> UnreachableRouteError:
        self.stats.record_fault(
            ev.FAULT_DEAD_ROUTES,
            source=source,
            dest=dest,
            block=self._active_block,
        )
        if self.recorder is not None:
            self.recorder.fault(
                ev.FAULT_DEAD_ROUTES, source,
                block=self._active_block, dest=dest,
            )
        return UnreachableRouteError(
            f"no live round trip between port {source} and port {dest}",
            source=source,
            dest=dest,
            block=self._active_block,
        )

    def _send_recovering(
        self, kind: MsgKind, source: NodeId, dest: NodeId, bits: int
    ) -> None:
        injector = self.system.fault_injector
        if not injector.pair_alive(source, dest):
            raise self._dead_route(source, dest)
        multicaster = self.system.multicaster
        stats = self.stats
        recorder = self.recorder
        ack_bits = self.system.costs.ack()
        attempt = 0
        while True:
            result = multicaster.send_payload_one(source, bits, dest)
            stats.record_traffic(kind.value, result.cost)
            if recorder is not None:
                recorder.message(kind.value, source, (dest,), bits, result)
            if self.message_log is not None:
                self._log(kind, source, result.requested, bits, result)
            outcome = injector.draw(
                kind=kind.value, source=source, dest=dest
            )
            if outcome.duplicated:
                # The fabric delivered a second copy; its traffic is real.
                dup = multicaster.send_payload_one(source, bits, dest)
                stats.record_traffic(kind.value, dup.cost)
                stats.count(ev.FAULT_DUPLICATES)
                if recorder is not None:
                    recorder.message(kind.value, source, (dest,), bits, dup)
                    recorder.fault(ev.FAULT_DUPLICATES, dest, source=source)
            if outcome.delayed:
                stats.count(ev.FAULT_DELAYS)
                if recorder is not None:
                    recorder.fault(ev.FAULT_DELAYS, dest, source=source)
            if not outcome.dropped:
                ack = multicaster.send_payload_one(dest, ack_bits, source)
                stats.record_traffic(MsgKind.ACK.value, ack.cost)
                if recorder is not None:
                    recorder.message(
                        MsgKind.ACK.value, dest, (source,), ack_bits, ack
                    )
                return
            stats.count(ev.FAULT_DROPS)
            if recorder is not None:
                recorder.fault(ev.FAULT_DROPS, dest, source=source)
            attempt += 1
            if attempt > injector.plan.max_retries:
                raise TransientNetworkError(
                    f"{kind.value} from {source} to {dest} dropped "
                    f"{attempt} times; retry budget "
                    f"({injector.plan.max_retries}) exhausted",
                    kind=kind.value,
                    source=source,
                    dests=(dest,),
                    block=self._active_block,
                    multicast=False,
                )
            stats.count(ev.FAULT_RETRIES)
            if recorder is not None:
                recorder.fault(
                    ev.FAULT_RETRIES, source, attempt=attempt, dest=dest
                )

    def _multicast_recovering(
        self,
        kind: MsgKind,
        source: NodeId,
        dest_set: frozenset[NodeId],
        bits: int,
    ) -> MulticastResult:
        injector = self.system.fault_injector
        if not dest_set:
            return self.system.multicaster.send_payload(source, bits, dest_set)
        for dest in sorted(dest_set):
            if not injector.pair_alive(source, dest):
                raise self._dead_route(source, dest)
        multicaster = self.system.multicaster
        stats = self.stats
        recorder = self.recorder
        ack_bits = self.system.costs.ack()
        result = multicaster.send_payload(source, bits, dest_set)
        stats.record_traffic(kind.value, result.cost)
        if recorder is not None:
            recorder.message(kind.value, source, dest_set, bits, result)
        if self.message_log is not None:
            self._log(kind, source, dest_set, bits, result)
        pending: tuple[NodeId, ...] = tuple(sorted(dest_set))
        rounds = 0
        while True:
            if recorder is not None:
                recorder.multicast_round(source, rounds, len(pending))
            missed: list[NodeId] = []
            # Per-destination verdicts in sorted order, so the variate
            # stream is a function of the destination *set*, never of
            # set-iteration order.
            for dest in pending:
                outcome = injector.draw(
                    kind=kind.value, source=source, dest=dest
                )
                if outcome.duplicated:
                    dup = multicaster.send_payload_one(source, bits, dest)
                    stats.record_traffic(kind.value, dup.cost)
                    stats.count(ev.FAULT_DUPLICATES)
                    if recorder is not None:
                        recorder.message(
                            kind.value, source, (dest,), bits, dup
                        )
                        recorder.fault(
                            ev.FAULT_DUPLICATES, dest, source=source
                        )
                if outcome.delayed:
                    stats.count(ev.FAULT_DELAYS)
                    if recorder is not None:
                        recorder.fault(ev.FAULT_DELAYS, dest, source=source)
                if outcome.dropped:
                    stats.count(ev.FAULT_DROPS)
                    if recorder is not None:
                        recorder.fault(ev.FAULT_DROPS, dest, source=source)
                    missed.append(dest)
                else:
                    ack = multicaster.send_payload_one(
                        dest, ack_bits, source
                    )
                    stats.record_traffic(MsgKind.ACK.value, ack.cost)
                    if recorder is not None:
                        recorder.message(
                            MsgKind.ACK.value, dest, (source,), ack_bits,
                            ack,
                        )
            if not missed:
                return result
            rounds += 1
            if rounds > injector.plan.max_retries:
                raise TransientNetworkError(
                    f"{kind.value} multicast from {source} to "
                    f"{sorted(dest_set)} still undelivered at "
                    f"{sorted(missed)} after {rounds} rounds; retry "
                    f"budget ({injector.plan.max_retries}) exhausted",
                    kind=kind.value,
                    source=source,
                    dests=tuple(sorted(missed)),
                    block=self._active_block,
                    multicast=True,
                )
            stats.count(ev.FAULT_RETRIES)
            if recorder is not None:
                recorder.fault(
                    ev.FAULT_RETRIES, source, attempt=rounds,
                    dests=sorted(missed),
                )
            # Re-send only to the destinations that missed the update.
            resend = multicaster.send_payload(
                source, bits, frozenset(missed)
            )
            stats.record_traffic(kind.value, resend.cost)
            if recorder is not None:
                recorder.message(kind.value, source, missed, bits, resend)
            pending = tuple(missed)

    def _send_unguarded(
        self, kind: MsgKind, source: NodeId, dest: NodeId, bits: int
    ) -> None:
        """Best-effort accounting send for degraded-mode operation.

        Used on paths that must never raise (write-backs during
        degradation, memory-direct service of uncacheable blocks): if the
        round trip is alive the cost is accounted normally, otherwise the
        attempt is only counted.  No delivery verdict is drawn -- the
        data moves by direct state manipulation as everywhere else in the
        atomic-reference model, and degraded-mode accounting stays a
        deterministic function of the reference stream.
        """
        injector = self.system.fault_injector
        if injector is not None and not injector.pair_alive(source, dest):
            self.stats.count(ev.FAULT_UNROUTABLE)
            if self.recorder is not None:
                self.recorder.fault(ev.FAULT_UNROUTABLE, source, dest=dest)
            return
        result = self.system.multicaster.send_payload_one(source, bits, dest)
        self.stats.record_traffic(kind.value, result.cost)
        if self.recorder is not None:
            self.recorder.message(kind.value, source, (dest,), bits, result)
        if self.message_log is not None:
            self._log(kind, source, result.requested, bits, result)

    # ------------------------------------------------------------------
    # Common structure
    # ------------------------------------------------------------------

    def home(self, block: BlockId) -> NodeId:
        """Home memory module port of ``block``."""
        return self.system.home(block)

    def fastpath(self):
        """A stable-state fast-path table for the replay loop, or ``None``.

        Protocols that can answer "this reference is a message-free hit"
        without a full :meth:`read`/:meth:`write` dispatch return a
        :class:`~repro.protocol.fastpath.FastPathTable`; the base class --
        and any protocol in a configuration where the shortcut would be
        unsound (fault injection, attached recorder) -- returns ``None``
        and the engine replays every reference on the slow path.
        """
        return None

    def batched_kernel(self):
        """A batched columnar replay kernel, or ``None``.

        Protocols whose :meth:`fastpath` records can additionally be
        validated once per *chunk* of references (rather than once per
        reference) return a :class:`~repro.sim.kernel.BatchedKernel`;
        everything that gates the fast path gates this too, plus any
        per-reference-order-dependent machinery (e.g. a counting mode
        policy).  The base class returns ``None`` and the engine uses the
        per-reference table, or the slow path.
        """
        return None

    def check_invariants(self) -> None:
        """Verify protocol-specific structural invariants (optional).

        The verifying engine calls this after every reference when
        ``verify=True``; protocols with nothing to check inherit this
        no-op.  Implementations raise
        :class:`~repro.errors.CoherenceError` on violation.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(system={self.system.config.n_nodes})"
