"""Structural coherence invariants of the two-mode protocol.

The verifying simulator checks these after *every* reference (and the
property-based tests after random traces), so a protocol bug cannot hide
behind a lucky value comparison.  The invariants hold at every quiescent
point of the atomic-reference simulation:

1. **Single owner** -- at most one cache holds an owned entry per block.
2. **Block-store accuracy** -- the home module's block store is valid iff
   some cache owns the block, and names that cache.
3. **Owner in its own vector** -- an owner's present-flag vector contains
   the owner itself.
4. **DW vector accuracy** -- in distributed-write mode the present vector
   equals exactly the set of caches holding a valid copy, and every copy's
   data equals the owner's (updates reached everyone).
5. **GR single copy** -- in global-read mode the owner holds the only
   valid copy; present-flagged caches other than the owner hold invalid
   placeholders whose OWNER field names the current owner.
6. **No orphan copies** -- a valid UnOwned copy only exists for a block
   with a current owner in distributed-write mode.

Placeholders *outside* the present vector may exist (and may hold stale
OWNER fields) after mode switches -- the protocol repairs them lazily, see
:mod:`repro.protocol.stenstrom` -- so invariant 5 constrains only vector
members.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.state import Mode
from repro.errors import CoherenceError
from repro.types import BlockId, NodeId

if TYPE_CHECKING:  # pragma: no cover - import for typing only
    from repro.protocol.stenstrom import StenstromProtocol


def _fail(
    block: BlockId, node: NodeId | None, mode: Mode | None, detail: str
) -> None:
    """Raise with the uniform context prefix.

    Every violation message names the block, the cache the violation was
    observed at (the owner when no single cache is more specific), and
    the block's operating mode (``none`` when no owner exists to define
    one), so a failure deep inside a long trace is actionable on its own.
    """
    mode_name = mode.name if mode is not None else "none"
    node_name = node if node is not None else "none"
    raise CoherenceError(
        f"block {block} (node {node_name}, mode {mode_name}): {detail}",
        block=block,
        node=node,
        mode=mode.name if mode is not None else None,
        detail=detail,
    )


def _blocks_in_play(protocol: "StenstromProtocol") -> set[BlockId]:
    """Every block any cache or block store currently knows about."""
    blocks: set[BlockId] = set()
    for cache in protocol.system.caches:
        blocks.update(cache.resident_blocks())
    for memory in protocol.system.memories:
        blocks.update(memory.block_store.valid_blocks())
    return blocks


def check_stenstrom(protocol: "StenstromProtocol") -> None:
    """Raise :class:`~repro.errors.CoherenceError` on any violation."""
    for block in _blocks_in_play(protocol):
        _check_block(protocol, block)


def _check_block(protocol: "StenstromProtocol", block: BlockId) -> None:
    system = protocol.system
    owners: list[NodeId] = []
    valid_holders: list[NodeId] = []
    placeholder_holders: list[NodeId] = []
    for cache in system.caches:
        entry = cache.find(block)
        if entry is None:
            continue
        field = entry.state_field
        if field.valid:
            valid_holders.append(cache.node_id)
            if field.owned:
                owners.append(cache.node_id)
        else:
            placeholder_holders.append(cache.node_id)

    # The mode is defined by the (first) owner's DW bit; before an owner
    # is identified the block has no mode and _fail reports "none".
    mode: Mode | None = None
    if owners:
        first = system.caches[owners[0]].find(block)
        assert first is not None
        mode = first.state_field.mode

    # 1. Single owner.
    if len(owners) > 1:
        _fail(
            block, owners[0], mode,
            f"owned by several caches: {owners}",
        )

    # 2. Block store accuracy.
    recorded = system.memory_for(block).block_store.owner_of(block)
    if owners:
        if recorded != owners[0]:
            _fail(
                block, owners[0], mode,
                f"block store says owner {recorded}, "
                f"caches say {owners[0]}",
            )
    else:
        if recorded is not None:
            _fail(
                block, recorded, mode,
                f"block store names owner {recorded} "
                f"but no cache owns it",
            )
        # 6. No orphan copies without an owner.
        if valid_holders:
            _fail(
                block, valid_holders[0], mode,
                f"valid copies at {valid_holders} with no owner",
            )
        return

    owner = owners[0]
    entry = system.caches[owner].find(block)
    assert entry is not None
    field = entry.state_field

    # 3. Owner in its own vector.
    if owner not in field.present:
        _fail(
            block, owner, mode,
            f"owner {owner} missing from its present vector "
            f"{sorted(field.present)}",
        )

    if field.mode is Mode.DISTRIBUTED_WRITE:
        # 4. DW vector = valid copies, data coherent.
        if field.present != set(valid_holders):
            _fail(
                block, owner, mode,
                f"present vector {sorted(field.present)} != valid "
                f"copies {sorted(valid_holders)}",
            )
        for holder in valid_holders:
            copy = system.caches[holder].find(block)
            assert copy is not None
            if copy.data != entry.data:
                _fail(
                    block, holder, mode,
                    f"cache {holder} holds {copy.data}, "
                    f"owner holds {entry.data}",
                )
    else:
        # 5. GR: only the owner's copy is valid; vector members other than
        # the owner are placeholders pointing at the owner.
        if valid_holders != [owner]:
            _fail(
                block, owner, mode,
                f"valid copies at {sorted(valid_holders)}, "
                f"expected only owner {owner}",
            )
        for member in sorted(field.present - {owner}):
            member_entry = system.caches[member].find(block)
            if member_entry is None:
                _fail(
                    block, member, mode,
                    f"present vector names cache {member}, "
                    f"which has no entry",
                )
                return
            if member_entry.state_field.valid:
                _fail(
                    block, member, mode,
                    f"present vector member {member} holds a valid copy",
                )
            if member_entry.state_field.owner != owner:
                _fail(
                    block, member, mode,
                    f"placeholder at {member} points at "
                    f"{member_entry.state_field.owner}, owner is {owner}",
                )
