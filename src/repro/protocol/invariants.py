"""Structural coherence invariants of the two-mode protocol.

The verifying simulator checks these after *every* reference (and the
property-based tests after random traces), so a protocol bug cannot hide
behind a lucky value comparison.  The invariants hold at every quiescent
point of the atomic-reference simulation:

1. **Single owner** -- at most one cache holds an owned entry per block.
2. **Block-store accuracy** -- the home module's block store is valid iff
   some cache owns the block, and names that cache.
3. **Owner in its own vector** -- an owner's present-flag vector contains
   the owner itself.
4. **DW vector accuracy** -- in distributed-write mode the present vector
   equals exactly the set of caches holding a valid copy, and every copy's
   data equals the owner's (updates reached everyone).
5. **GR single copy** -- in global-read mode the owner holds the only
   valid copy; present-flagged caches other than the owner hold invalid
   placeholders whose OWNER field names the current owner.
6. **No orphan copies** -- a valid UnOwned copy only exists for a block
   with a current owner in distributed-write mode.

Placeholders *outside* the present vector may exist (and may hold stale
OWNER fields) after mode switches -- the protocol repairs them lazily, see
:mod:`repro.protocol.stenstrom` -- so invariant 5 constrains only vector
members.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.state import Mode
from repro.errors import CoherenceError
from repro.types import BlockId, NodeId

if TYPE_CHECKING:  # pragma: no cover - import for typing only
    from repro.protocol.stenstrom import StenstromProtocol


def _fail(message: str) -> None:
    raise CoherenceError(message)


def _blocks_in_play(protocol: "StenstromProtocol") -> set[BlockId]:
    """Every block any cache or block store currently knows about."""
    blocks: set[BlockId] = set()
    for cache in protocol.system.caches:
        blocks.update(cache.resident_blocks())
    for memory in protocol.system.memories:
        blocks.update(memory.block_store.valid_blocks())
    return blocks


def check_stenstrom(protocol: "StenstromProtocol") -> None:
    """Raise :class:`~repro.errors.CoherenceError` on any violation."""
    for block in _blocks_in_play(protocol):
        _check_block(protocol, block)


def _check_block(protocol: "StenstromProtocol", block: BlockId) -> None:
    system = protocol.system
    owners: list[NodeId] = []
    valid_holders: list[NodeId] = []
    placeholder_holders: list[NodeId] = []
    for cache in system.caches:
        entry = cache.find(block)
        if entry is None:
            continue
        field = entry.state_field
        if field.valid:
            valid_holders.append(cache.node_id)
            if field.owned:
                owners.append(cache.node_id)
        else:
            placeholder_holders.append(cache.node_id)

    # 1. Single owner.
    if len(owners) > 1:
        _fail(f"block {block} owned by several caches: {owners}")

    # 2. Block store accuracy.
    recorded = system.memory_for(block).block_store.owner_of(block)
    if owners:
        if recorded != owners[0]:
            _fail(
                f"block {block}: block store says owner {recorded}, "
                f"caches say {owners[0]}"
            )
    else:
        if recorded is not None:
            _fail(
                f"block {block}: block store names owner {recorded} "
                f"but no cache owns it"
            )
        # 6. No orphan copies without an owner.
        if valid_holders:
            _fail(
                f"block {block}: valid copies at {valid_holders} "
                f"with no owner"
            )
        return

    owner = owners[0]
    entry = system.caches[owner].find(block)
    assert entry is not None
    field = entry.state_field

    # 3. Owner in its own vector.
    if owner not in field.present:
        _fail(
            f"block {block}: owner {owner} missing from its present "
            f"vector {sorted(field.present)}"
        )

    if field.mode is Mode.DISTRIBUTED_WRITE:
        # 4. DW vector = valid copies, data coherent.
        if field.present != set(valid_holders):
            _fail(
                f"block {block} (DW): present vector "
                f"{sorted(field.present)} != valid copies "
                f"{sorted(valid_holders)}"
            )
        for holder in valid_holders:
            copy = system.caches[holder].find(block)
            assert copy is not None
            if copy.data != entry.data:
                _fail(
                    f"block {block} (DW): cache {holder} holds "
                    f"{copy.data}, owner holds {entry.data}"
                )
    else:
        # 5. GR: only the owner's copy is valid; vector members other than
        # the owner are placeholders pointing at the owner.
        if valid_holders != [owner]:
            _fail(
                f"block {block} (GR): valid copies at "
                f"{sorted(valid_holders)}, expected only owner {owner}"
            )
        for member in field.present - {owner}:
            member_entry = system.caches[member].find(block)
            if member_entry is None:
                _fail(
                    f"block {block} (GR): present vector names cache "
                    f"{member}, which has no entry"
                )
                return
            if member_entry.state_field.valid:
                _fail(
                    f"block {block} (GR): present vector member {member} "
                    f"holds a valid copy"
                )
            if member_entry.state_field.owner != owner:
                _fail(
                    f"block {block} (GR): placeholder at {member} points "
                    f"at {member_entry.state_field.owner}, owner is {owner}"
                )
