"""A Censier-Feautrier full-map directory protocol (the §1 baseline).

The classical "global directory" solution the paper positions itself
against: the home memory module keeps, for every block, a presence bit per
cache plus a dirty bit (``O(N M)`` bits of state), and every coherence
action consults it.  Write-invalidate semantics:

* read miss -- home supplies the block (recalling it from a dirty holder
  first) and sets the presence bit;
* write to a non-exclusive copy -- home invalidates all other copies,
  then the writer holds the block dirty and writes locally;
* replacement -- write back if dirty, always clear the presence bit.

This gives the comparison points the paper's storage argument (§1) and the
performance discussion need: same network, same costing, memory-side state
instead of cache-side state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cache.entry import CacheEntry
from repro.cache.state import StateField
from repro.errors import ProtocolError
from repro.protocol.base import CoherenceProtocol
from repro.protocol.messages import MsgKind
from repro.sim import stats as ev
from repro.types import Address, BlockId, NodeId


class FullMapState(enum.Enum):
    """Per-cache block states of the write-invalidate directory protocol."""

    INVALID = "Invalid"
    SHARED = "Shared"
    DIRTY = "Dirty"


def decode_state(entry: CacheEntry | None) -> FullMapState:
    """Read the directory-protocol state from the generic state field."""
    if entry is None or not entry.state_field.valid:
        return FullMapState.INVALID
    if entry.state_field.modified:
        return FullMapState.DIRTY
    return FullMapState.SHARED


@dataclass
class _DirectoryEntry:
    """One block's full-map entry: presence vector + dirty bit."""

    present: set[NodeId] = field(default_factory=set)
    dirty: bool = False


class FullMapProtocol(CoherenceProtocol):
    """Full-map write-invalidate directory protocol."""

    name = "full-map-directory"

    def __init__(self, system) -> None:
        super().__init__(system)
        self._directory: dict[BlockId, _DirectoryEntry] = {}

    def _dir(self, block: BlockId) -> _DirectoryEntry:
        entry = self._directory.get(block)
        if entry is None:
            entry = _DirectoryEntry()
            self._directory[block] = entry
        return entry

    def directory_present(self, block: BlockId) -> frozenset[NodeId]:
        """The presence vector the home module holds (for tests)."""
        return frozenset(self._dir(block).present)

    # ------------------------------------------------------------------

    def read(self, node: NodeId, address: Address) -> int:
        self.system.check_address(address)
        self.stats.count(ev.READS)
        block, offset = address
        entry = self.system.caches[node].find(block)
        if decode_state(entry) is not FullMapState.INVALID:
            assert entry is not None
            self.stats.count(ev.READ_HITS)
            self.system.caches[node].touch(block)
            return entry.read_word(offset)
        self.stats.count(ev.READ_MISSES)
        entry = self._fetch_block(node, block)
        return entry.read_word(offset)

    def write(self, node: NodeId, address: Address, value: int) -> None:
        self.system.check_address(address)
        self.stats.count(ev.WRITES)
        block, offset = address
        entry = self.system.caches[node].find(block)
        state = decode_state(entry)
        if state is FullMapState.DIRTY:
            assert entry is not None
            self.stats.count(ev.WRITE_HITS)
            self.system.caches[node].touch(block)
            entry.write_word(offset, value)
            return
        if state is FullMapState.SHARED:
            assert entry is not None
            self.stats.count(ev.WRITE_HITS)
            self.system.caches[node].touch(block)
            # Ask the home for exclusivity: it invalidates other copies.
            self._send(
                MsgKind.OWN_REQ,
                node,
                self.home(block),
                self.system.costs.request(),
            )
            self._invalidate_others(node, block)
        else:
            self.stats.count(ev.WRITE_MISSES)
            entry = self._fetch_block(node, block)
            self._invalidate_others(node, block)
        directory = self._dir(block)
        directory.dirty = True
        entry.write_word(offset, value)
        entry.state_field.modified = True
        entry.state_field.owned = True

    # ------------------------------------------------------------------

    def _fetch_block(self, node: NodeId, block: BlockId) -> CacheEntry:
        """Miss service: recall from a dirty holder, deliver from home."""
        home = self.home(block)
        costs = self.system.costs
        memory = self.system.memory_for(block)
        directory = self._dir(block)
        self._send(MsgKind.LOAD_REQ, node, home, costs.request())
        if directory.dirty:
            (holder,) = directory.present
            holder_entry = self.system.caches[holder].find(block)
            if holder_entry is None:
                raise ProtocolError(
                    f"full-map directory says cache {holder} holds block "
                    f"{block} dirty, but it has no entry"
                )
            self._send(MsgKind.DIR_RECALL, home, holder, costs.request())
            self._send(
                MsgKind.WRITEBACK,
                holder,
                home,
                costs.block_data(self.system.config.block_size_words),
            )
            self.stats.count(ev.WRITEBACKS)
            memory.write_block(block, holder_entry.data)
            holder_entry.state_field.modified = False
            holder_entry.state_field.owned = False
            directory.dirty = False
        self._send(
            MsgKind.BLOCK_REPLY,
            home,
            node,
            costs.block_data(self.system.config.block_size_words),
        )
        entry = self._allocate(node, block)
        entry.data = memory.read_block(block)
        entry.state_field = StateField(valid=True)
        directory.present.add(node)
        return entry

    def _invalidate_others(self, node: NodeId, block: BlockId) -> None:
        home = self.home(block)
        directory = self._dir(block)
        others = frozenset(directory.present - {node})
        if others:
            self._multicast(
                MsgKind.DIR_INVALIDATE,
                home,
                others,
                self.system.costs.request(),
            )
            self.stats.count(ev.INVALIDATIONS, len(others))
            for other in others:
                other_entry = self.system.caches[other].find(block)
                if other_entry is not None:
                    other_entry.state_field = StateField(valid=False)
        directory.present = {node}

    # ------------------------------------------------------------------

    def _allocate(self, node: NodeId, block: BlockId) -> CacheEntry:
        cache = self.system.caches[node]
        slot = cache.slot_for(block)
        if slot.needs_eviction(block):
            self._replace_entry(node, slot.entry)
        return cache.install(slot, block)

    def _replace_entry(self, node: NodeId, entry: CacheEntry) -> None:
        block = entry.tag
        assert block is not None
        self.stats.count(ev.REPLACEMENTS)
        state = decode_state(entry)
        home = self.home(block)
        costs = self.system.costs
        directory = self._dir(block)
        if state is FullMapState.INVALID:
            directory.present.discard(node)
            return
        if state is FullMapState.DIRTY:
            self._send(
                MsgKind.WRITEBACK,
                node,
                home,
                costs.block_data(self.system.config.block_size_words),
            )
            self.stats.count(ev.WRITEBACKS)
            self.system.memory_for(block).write_block(block, entry.data)
            directory.dirty = False
        else:
            self._send(MsgKind.REPLACE_NOTIFY, node, home, costs.request())
        directory.present.discard(node)
        entry.state_field = StateField()

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Presence-vector accuracy and single-dirty-copy invariants."""
        for block, directory in self._directory.items():
            holders = set()
            dirty = []
            for cache in self.system.caches:
                entry = cache.find(block)
                state = decode_state(entry)
                if state is not FullMapState.INVALID:
                    holders.add(cache.node_id)
                if state is FullMapState.DIRTY:
                    dirty.append(cache.node_id)
            if holders != directory.present:
                raise ProtocolError(
                    f"full-map directory for block {block} says "
                    f"{sorted(directory.present)}, caches say "
                    f"{sorted(holders)}"
                )
            if directory.dirty:
                if len(holders) != 1 or not dirty:
                    raise ProtocolError(
                        f"full-map block {block} marked dirty with "
                        f"holders {sorted(holders)}"
                    )
            elif dirty:
                raise ProtocolError(
                    f"full-map block {block} dirty at {dirty} but the "
                    f"directory disagrees"
                )
