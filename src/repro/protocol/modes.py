"""Per-block operating-mode selection (§4 threshold, §5 adaptive sketch).

The paper's two modes trade read traffic against write traffic:

* distributed-write costs ``w * CC4(n)`` per reference (eq. 11);
* global-read costs ``(1 - w) * 2 * CC1`` per reference (eq. 12).

With scheme-1 multicast the curves cross at ``w1 = 2 / (n + 2)`` (§4):
below the threshold, writes are rare enough that updating ``n`` copies is
cheaper than making every remote read cross the network twice.

§5 sketches a hardware selector: "one counter counts all memory references
to a block, and the other all reads to this block in global read mode."
Two selectors are provided:

* :class:`OracleModePolicy` observes *every* reference (an idealised
  selector that knows the true write fraction) -- an upper bound on what
  mode selection can achieve;
* :class:`AdaptiveModePolicy` observes only what the owner's hardware
  counters can see, per the §5 sketch.  In global-read mode every
  reference reaches the owner, so the write fraction is measured exactly;
  in distributed-write mode remote read hits are invisible, so the policy
  measures the write fraction over owner-visible references only -- an
  overestimate of ``w`` that biases the selector toward global read.  The
  documentation of this bias (and the benchmark comparing the two
  policies) is an extension beyond the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.cache.state import Mode
from repro.errors import ConfigurationError
from repro.types import BlockId, Op


def write_fraction_threshold(n_sharers: int) -> float:
    """The §4 threshold ``w1 = 2 / (n + 2)``.

    Distributed write is the cheaper mode while the write fraction ``w``
    satisfies ``w <= w1`` (with scheme-1 multicast costs).
    """
    if n_sharers < 0:
        raise ConfigurationError(
            f"sharer count must be non-negative, got {n_sharers}"
        )
    return 2.0 / (n_sharers + 2)


@dataclass
class _BlockCounters:
    """The two §5 counters plus a write tally for the DW-mode estimate."""

    references: int = 0
    gr_reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.references = 0
        self.gr_reads = 0
        self.writes = 0


class ModePolicy(abc.ABC):
    """Decides the operating mode of each block.

    The protocol calls :meth:`observe` for every reference (flagging
    whether the owner's hardware could see it) and :meth:`decide` after the
    reference completes; a non-``None`` return asks the owner to switch the
    block to that mode.

    ``batchable`` declares whether the policy is safe to consult once per
    *run* of identical references instead of once per reference: it must
    hold that :meth:`observe` is a no-op and :meth:`decide` is a pure
    function of ``(block, mode, n_sharers)``.  The counting policies
    measure per-reference windows, so they keep the default ``False`` and
    the batched kernel (docs/PERF.md) stands down for them.
    """

    batchable = False

    @abc.abstractmethod
    def observe(
        self,
        block: BlockId,
        op: Op,
        *,
        owner_visible: bool,
        mode: Mode,
        n_sharers: int,
    ) -> None:
        """Record one reference to ``block``."""

    @abc.abstractmethod
    def decide(
        self, block: BlockId, mode: Mode, n_sharers: int
    ) -> Mode | None:
        """The mode ``block`` should run in, or ``None`` to keep ``mode``."""


class StaticModePolicy(ModePolicy):
    """Pin every block to one mode (the 'software sets the mode' case)."""

    batchable = True

    def __init__(self, mode: Mode) -> None:
        self.mode = mode

    def observe(self, block, op, *, owner_visible, mode, n_sharers):
        pass

    def decide(self, block, mode, n_sharers):
        return self.mode if mode is not self.mode else None


class PerBlockModePolicy(ModePolicy):
    """Pin each block to a precomputed mode (the 'set by the software' case).

    §2.1: the operating mode is 'selected so as to minimize communication
    cost and set by the software'.  The mode map typically comes from
    :func:`repro.analysis.compiler.recommend_modes`, which plays the role
    of the §5 compiler: profile the sharing pattern, compare each block's
    write fraction against its ``w1`` threshold, emit a mode per block.
    Blocks absent from the map keep their current mode.
    """

    batchable = True

    def __init__(self, modes: dict[BlockId, Mode]) -> None:
        self.modes = dict(modes)

    def observe(self, block, op, *, owner_visible, mode, n_sharers):
        pass

    def decide(self, block, mode, n_sharers):
        desired = self.modes.get(block)
        if desired is None or desired is mode:
            return None
        return desired


class _CountingPolicy(ModePolicy):
    """Shared machinery for the two measuring policies."""

    def __init__(self, window: int = 64) -> None:
        if window < 2:
            raise ConfigurationError(
                f"decision window must be >= 2, got {window}"
            )
        self.window = window
        self._counters: dict[BlockId, _BlockCounters] = {}

    def _counter(self, block: BlockId) -> _BlockCounters:
        counter = self._counters.get(block)
        if counter is None:
            counter = _BlockCounters()
            self._counters[block] = counter
        return counter

    def _decide_from(
        self,
        counter: _BlockCounters,
        write_fraction: float,
        mode: Mode,
        n_sharers: int,
    ) -> Mode | None:
        if counter.references < self.window:
            return None
        counter.reset()
        threshold = write_fraction_threshold(n_sharers)
        desired = (
            Mode.DISTRIBUTED_WRITE
            if write_fraction <= threshold
            else Mode.GLOBAL_READ
        )
        return desired if desired is not mode else None


class OracleModePolicy(_CountingPolicy):
    """Idealised selector: measures the true write fraction of each block."""

    def observe(self, block, op, *, owner_visible, mode, n_sharers):
        counter = self._counter(block)
        counter.references += 1
        if op is Op.WRITE:
            counter.writes += 1
        elif mode is Mode.GLOBAL_READ:
            counter.gr_reads += 1

    def decide(self, block, mode, n_sharers):
        counter = self._counter(block)
        if counter.references == 0:
            return None
        write_fraction = counter.writes / counter.references
        return self._decide_from(counter, write_fraction, mode, n_sharers)


class AdaptiveModePolicy(_CountingPolicy):
    """The §5 owner-visible selector.

    Counts only references the owner's hardware observes: its own
    references, every write (writes always execute at the owner), and --
    in global-read mode -- every remote read.  Remote read hits in
    distributed-write mode are invisible, so the measured write fraction in
    DW mode overestimates ``w`` and the policy leans toward global read.
    """

    def observe(self, block, op, *, owner_visible, mode, n_sharers):
        if not owner_visible:
            return
        counter = self._counter(block)
        counter.references += 1
        if op is Op.WRITE:
            counter.writes += 1
        elif mode is Mode.GLOBAL_READ:
            counter.gr_reads += 1

    def decide(self, block, mode, n_sharers):
        counter = self._counter(block)
        if counter.references == 0:
            return None
        if mode is Mode.GLOBAL_READ:
            # Every reference was visible: w = 1 - (GR reads / references).
            write_fraction = 1.0 - counter.gr_reads / counter.references
        else:
            # Only owner-local reads were visible: an overestimate of w.
            write_fraction = counter.writes / counter.references
        return self._decide_from(counter, write_fraction, mode, n_sharers)
