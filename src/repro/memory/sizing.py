"""State-memory sizing: the paper's storage argument, made exact.

§1 compares the storage cost of coherence state:

* memory-side full-map directories (Censier & Feautrier; Yen, Yen & Fu)
  need ``O(N M)`` bits -- a presence vector of ``N`` bits for each of the
  ``M`` blocks of main memory;
* the proposed protocol needs ``O(C (N + log N) + M log N)`` bits -- a full
  state field per *cache* entry (``C`` entries per cache) plus only a
  ``log2 N``-bit block-store entry per memory block.

These functions compute the exact bit counts behind the O-notation so the
claim can be tabulated for concrete machine sizes (an extension experiment;
the paper states the asymptotics only).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.state import StateField
from repro.errors import ConfigurationError
from repro.types import ilog2, is_power_of_two


def _check_machine(n_caches: int, memory_blocks: int) -> None:
    if n_caches < 2 or not is_power_of_two(n_caches):
        raise ConfigurationError(
            f"need a power-of-two cache count >= 2, got {n_caches}"
        )
    if memory_blocks <= 0:
        raise ConfigurationError(
            f"need a positive memory size, got {memory_blocks} blocks"
        )


def full_map_directory_bits(n_caches: int, memory_blocks: int) -> int:
    """Bits of a memory-side full-map directory: per block, one presence
    bit per cache, a dirty bit and a valid bit."""
    _check_machine(n_caches, memory_blocks)
    return memory_blocks * (n_caches + 2)


def stenstrom_state_bits(
    n_caches: int, memory_blocks: int, cache_entries: int
) -> int:
    """Bits of the proposed protocol's distributed state.

    ``N`` caches each hold ``C`` state fields of
    :meth:`~repro.cache.state.StateField.size_bits` bits, and every memory
    block has a block-store entry of ``1 + log2 N`` bits.
    """
    _check_machine(n_caches, memory_blocks)
    if cache_entries <= 0:
        raise ConfigurationError(
            f"need a positive cache size, got {cache_entries} entries"
        )
    per_cache = cache_entries * StateField.size_bits(n_caches)
    block_store = memory_blocks * (1 + ilog2(n_caches))
    return n_caches * per_cache + block_store


def limited_pointer_directory_bits(
    n_caches: int, memory_blocks: int, n_pointers: int
) -> int:
    """Bits of a ``Dir_i B`` limited-pointer directory.

    Per block: ``i`` pointers of ``log2 N`` bits, a broadcast bit, a
    dirty bit and a valid bit -- the contemporaneous (Agarwal et al.,
    ISCA 1988) alternative fix to the same ``O(N M)`` problem the paper
    attacks, included for the storage comparison.
    """
    _check_machine(n_caches, memory_blocks)
    if n_pointers < 1:
        raise ConfigurationError(
            f"need at least one pointer, got {n_pointers}"
        )
    return memory_blocks * (n_pointers * ilog2(n_caches) + 3)


def split_stenstrom_state_bits(
    n_caches: int,
    memory_blocks: int,
    cache_entries: int,
    owner_store_entries: int,
    tag_bits: int = 32,
) -> int:
    """Bits of the §5 *split* organisation of the distributed state.

    "Since the present flag vector is used only by the owner, we could
    separate parts of the state memory from the cache directory and
    select an entry in the state memory using an associative memory
    scheme.  The size of the state memory could then be reduced."

    Every cache entry keeps only the bits every copy needs -- V, O, M and
    the ``log2 N``-bit OWNER field -- while the ``N``-bit present vector
    and the DW bit move to a small associative *owner store* with
    ``owner_store_entries`` tagged entries (a cache can own at most that
    many blocks at once).  The block store is unchanged.
    """
    _check_machine(n_caches, memory_blocks)
    if cache_entries <= 0:
        raise ConfigurationError(
            f"need a positive cache size, got {cache_entries} entries"
        )
    if not 0 < owner_store_entries <= cache_entries:
        raise ConfigurationError(
            f"owner store must have between 1 and {cache_entries} "
            f"entries, got {owner_store_entries}"
        )
    if tag_bits <= 0:
        raise ConfigurationError(
            f"tag width must be positive, got {tag_bits}"
        )
    per_entry = 3 + ilog2(n_caches)  # V, O, M + OWNER
    per_owner_entry = tag_bits + n_caches + 1  # tag + P vector + DW
    per_cache = (
        cache_entries * per_entry
        + owner_store_entries * per_owner_entry
    )
    block_store = memory_blocks * (1 + ilog2(n_caches))
    return n_caches * per_cache + block_store


@dataclass(frozen=True)
class StateMemoryComparison:
    """Exact state-memory budgets for one machine configuration."""

    n_caches: int
    memory_blocks: int
    cache_entries: int
    full_map_bits: int
    stenstrom_bits: int

    @property
    def ratio(self) -> float:
        """Full-map bits per proposed-protocol bit (>1 favours the paper)."""
        return self.full_map_bits / self.stenstrom_bits


def state_memory_comparison(
    n_caches: int, memory_blocks: int, cache_entries: int
) -> StateMemoryComparison:
    """Compare both schemes for one ``(N, M, C)`` machine."""
    return StateMemoryComparison(
        n_caches=n_caches,
        memory_blocks=memory_blocks,
        cache_entries=cache_entries,
        full_map_bits=full_map_directory_bits(n_caches, memory_blocks),
        stenstrom_bits=stenstrom_state_bits(
            n_caches, memory_blocks, cache_entries
        ),
    )
