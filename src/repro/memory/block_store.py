"""The memory module's *block store* (§2.1).

"Each memory module keeps track of the owner for each of its cached blocks
by means of a data structure called block store containing one entry for
each block.  Each entry contains a valid bit (V) and an ID-field containing
``log2 N`` bits storing the identification of the owner for the block."

The block store is the only memory-side coherence state of the proposed
protocol.  It answers exactly one question -- *which cache owns this block,
if any* -- and is consulted only when a request arrives at the home module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import BlockId, NodeId


@dataclass
class BlockStoreEntry:
    """One block's entry: the V bit and the ``log2 N``-bit owner id."""

    valid: bool = False
    owner: NodeId = 0


class BlockStore:
    """Owner bookkeeping for the blocks homed at one memory module.

    Entries are materialised lazily (a real machine would have one per
    block; simulating terabytes of invalid entries eagerly would be silly),
    but the abstraction is exactly the paper's: every block has an entry,
    initially invalid.
    """

    def __init__(self) -> None:
        self._entries: dict[BlockId, BlockStoreEntry] = {}

    def lookup(self, block: BlockId) -> BlockStoreEntry:
        """The entry for ``block`` (an invalid default if never set)."""
        entry = self._entries.get(block)
        if entry is None:
            entry = BlockStoreEntry()
            self._entries[block] = entry
        return entry

    def owner_of(self, block: BlockId) -> NodeId | None:
        """The owning cache of ``block``, or ``None`` if uncached."""
        entry = self._entries.get(block)
        if entry is None or not entry.valid:
            return None
        return entry.owner

    def set_owner(self, block: BlockId, owner: NodeId) -> None:
        """Record ``owner`` as the owning cache of ``block``."""
        entry = self.lookup(block)
        entry.valid = True
        entry.owner = owner

    def clear(self, block: BlockId) -> None:
        """Mark ``block`` as uncached (the V bit is cleared)."""
        entry = self.lookup(block)
        entry.valid = False

    def valid_blocks(self) -> list[BlockId]:
        """Blocks currently marked as cached somewhere."""
        return sorted(
            block for block, entry in self._entries.items() if entry.valid
        )
