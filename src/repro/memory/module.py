"""Interleaved memory modules.

The multiprocessor of Figure 1 attaches one memory module per network port;
blocks are interleaved across modules (block ``b`` is *homed* at module
``b mod N``).  A module stores the data words of its blocks and the
:class:`~repro.memory.block_store.BlockStore` used by the coherence
protocols.

The directory-style baseline protocols need more memory-side state than the
block store (a full presence vector per block); they keep it themselves --
the module only offers generic per-block metadata storage so the substrate
stays protocol-neutral.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, ProtocolError
from repro.memory.block_store import BlockStore
from repro.types import BlockId, NodeId


class MemoryModule:
    """One memory module: data words plus the block store.

    Data blocks are materialised lazily and initialised to zero, matching
    the simulator-wide convention that uninitialised memory reads as 0.
    """

    def __init__(
        self, module_id: NodeId, n_modules: int, block_size_words: int
    ) -> None:
        if block_size_words <= 0:
            raise ConfigurationError(
                f"block size must be positive, got {block_size_words}"
            )
        if not 0 <= module_id < n_modules:
            raise ConfigurationError(
                f"module id {module_id} outside 0..{n_modules - 1}"
            )
        self.module_id = module_id
        self.n_modules = n_modules
        self.block_size_words = block_size_words
        self.block_store = BlockStore()
        self._data: dict[BlockId, list[int]] = {}

    def homes(self, block: BlockId) -> bool:
        """Whether ``block`` is interleaved onto this module."""
        return block % self.n_modules == self.module_id

    def _check_home(self, block: BlockId) -> None:
        if not self.homes(block):
            raise ProtocolError(
                f"block {block} is homed at module "
                f"{block % self.n_modules}, not {self.module_id}"
            )

    def read_block(self, block: BlockId) -> list[int]:
        """A copy of the data words of ``block`` (zeros if never written)."""
        self._check_home(block)
        data = self._data.get(block)
        if data is None:
            return [0] * self.block_size_words
        return list(data)

    def write_block(self, block: BlockId, words: list[int]) -> None:
        """Store a full block of data (a write-back)."""
        self._check_home(block)
        if len(words) != self.block_size_words:
            raise ProtocolError(
                f"write-back of {len(words)} words to block {block}; "
                f"expected {self.block_size_words}"
            )
        self._data[block] = list(words)

    def read_word(self, block: BlockId, offset: int) -> int:
        """One data word (used by the uncached baseline)."""
        self._check_home(block)
        if not 0 <= offset < self.block_size_words:
            raise ProtocolError(
                f"offset {offset} outside block of "
                f"{self.block_size_words} words"
            )
        data = self._data.get(block)
        return 0 if data is None else data[offset]

    def write_word(self, block: BlockId, offset: int, value: int) -> None:
        """Update one data word (used by write-through baselines)."""
        self._check_home(block)
        if not 0 <= offset < self.block_size_words:
            raise ProtocolError(
                f"offset {offset} outside block of "
                f"{self.block_size_words} words"
            )
        data = self._data.setdefault(block, [0] * self.block_size_words)
        data[offset] = value
