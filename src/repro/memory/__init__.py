"""Memory-module substrate: block stores, data storage, state-memory sizing.

Each of the ``N`` memory modules keeps, besides the data words themselves,
the paper's *block store*: one ``(valid, owner-id)`` entry per cached block.
That is the entire memory-side directory state of the proposed protocol --
the presence information lives in the caches.
"""

from repro.memory.block_store import BlockStore, BlockStoreEntry
from repro.memory.module import MemoryModule
from repro.memory.sizing import (
    full_map_directory_bits,
    split_stenstrom_state_bits,
    state_memory_comparison,
    stenstrom_state_bits,
)

__all__ = [
    "BlockStore",
    "BlockStoreEntry",
    "MemoryModule",
    "full_map_directory_bits",
    "split_stenstrom_state_bits",
    "state_memory_comparison",
    "stenstrom_state_bits",
]
