"""Parallel, cached, observable execution of experiment specs.

The :class:`Executor` fans a :class:`~repro.runner.spec.SweepSpec` out over
worker processes -- one short-lived process per cell, fed the cell's spec
as plain JSON data and returning the serialised
:class:`~repro.sim.engine.SimulationReport` over a pipe.  Because every
cell is a pure function of its spec (the workload generator is reseeded
from the spec inside the worker), the parallel path is bit-identical to
the sequential in-process fallback (``workers=0``): same specs in, same
reports out, in cell order, regardless of completion order.

Robustness knobs:

* ``timeout`` -- per-attempt wall-clock limit; a worker that overruns is
  terminated and the cell retried (parallel mode only -- an in-process
  task cannot be interrupted);
* ``retries`` -- how many *additional* attempts a cell gets after a
  worker crash, raised exception, or timeout, before the whole run fails
  with :class:`~repro.errors.ExecutionError`;
* ``backoff`` -- base delay before a retry, doubled per attempt
  (``backoff * 2**(attempt-1)``): a deterministic schedule derived from
  the attempt number alone, never from the clock, recorded per retry in
  the journal;
* ``on_error`` -- ``"raise"`` (default) aborts the run when a cell
  exhausts its budget; ``"collect"`` records the failure as a
  :class:`TaskResult` with ``report=None`` and keeps going, which is how
  chaos campaigns turn failures into survival-report rows;
* ``cache`` -- a :class:`~repro.runner.cache.ResultCache`; hits skip
  execution entirely and are journaled as ``task_cached``;
* ``journal`` -- a :class:`~repro.runner.journal.RunJournal` receiving
  start/finish/retry/failure events with wall time, traffic counters,
  and the error class of every failed attempt;
* ``metrics`` -- a :class:`~repro.obs.metrics.MetricsRegistry`; when
  set, every completed task observes its wall time into the
  ``latency.start_to_finish_ms`` histogram (the serve daemon's
  start->finish leg) and the parallel path keeps an
  ``executor.workers_busy`` occupancy gauge.  ``None`` (the default)
  costs the execution paths nothing;
* ``trace_dir`` -- when set, every cell runs with a
  :class:`~repro.obs.recorder.TraceRecorder` attached and exports its
  JSONL trace, Chrome trace and heatmap JSON there (named by spec
  hash); the result cache is bypassed so every cell actually runs and
  traced reports never leak into untraced consumers.

Errors are *classified before retrying*: an exception whose type says
the outcome is a pure function of the spec -- a bad configuration, a
coherence violation, a malformed trace -- will fail identically on every
attempt, so the executor fails fast instead of burning the retry budget
(see :data:`PERMANENT_ERROR_CLASSES`).
"""

from __future__ import annotations

import functools
import multiprocessing
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import ConfigurationError, ExecutionError
from repro.obs.metrics import LATENCY_BUCKETS_MS, MetricsRegistry
from repro.runner.cache import ResultCache
from repro.runner.journal import RunJournal
from repro.runner.spec import ExperimentSpec, SweepSpec
from repro.sim.engine import SimulationReport, run_trace
from repro.sim.system import System

#: How long the scheduler sleeps in :func:`multiprocessing.connection.wait`
#: between bookkeeping passes (timeout checks, launches).
_POLL_SECONDS = 0.05

#: Exception class names whose failure is a deterministic function of the
#: spec: retrying re-runs the same pure function on the same input, so
#: these fail fast regardless of the retry budget.  Classes not listed
#: here (worker crashes, timeouts, MemoryError, ...) stay retryable.
PERMANENT_ERROR_CLASSES = frozenset(
    {
        "ConfigurationError",
        "CoherenceError",
        "TraceError",
        "ProtocolError",
        "FaultInjectionError",
    }
)


def execute_spec(spec: ExperimentSpec) -> SimulationReport:
    """Run one cell in-process: build the machine, the trace, measure.

    This single function is the whole task body -- the sequential path
    calls it directly and the worker processes call it on a deserialised
    copy of the spec, which is what makes the two paths bit-identical.
    """
    from repro.analysis.compare import default_factories

    factories = default_factories()
    if spec.protocol not in factories:
        raise ConfigurationError(
            f"unknown protocol {spec.protocol!r}; "
            f"expected one of {sorted(factories)}"
        )
    protocol = factories[spec.protocol](
        System(spec.config, fault_plan=spec.fault_plan)
    )
    # Both trace forms slice and replay to bit-identical reports; the
    # compiled default takes the columnar loop (and, where the protocol
    # offers one, its stable-state fast path -- see docs/PERF.md).
    if spec.compiled:
        trace = spec.workload.build_compiled()
    else:
        trace = spec.workload.build().references
    if spec.warmup:
        run_trace(
            protocol,
            trace[: spec.warmup],
            verify=False,
            check_invariants_every=0,
        )
    return run_trace(
        protocol,
        trace[spec.warmup :],
        verify=spec.verify,
        check_invariants_every=spec.check_invariants_every,
    )


def _worker_main(spec_dict: dict, task_fn, conn) -> None:
    """Worker-process entry: run one cell, ship the outcome, exit."""
    try:
        spec = ExperimentSpec.from_dict(spec_dict)
        fn = execute_spec if task_fn is None else task_fn
        report = fn(spec)
        conn.send(("ok", report.to_dict()))
    except BaseException as exc:
        try:
            conn.send(
                (
                    "error",
                    {
                        "class": type(exc).__name__,
                        "traceback": traceback.format_exc(),
                    },
                )
            )
        except Exception:  # parent gone; nothing left to report to
            pass
    finally:
        conn.close()


@dataclass(frozen=True)
class TaskResult:
    """One executed (or cache-served, or collected-failed) cell.

    ``attempts`` counts executions actually performed (0 for a cache
    hit); ``wall_time`` is the successful attempt's duration in seconds.
    Under ``on_error="collect"`` a cell that exhausted its budget comes
    back with ``report=None`` and the last failure's class and text in
    ``error_class`` / ``error``.
    """

    spec: ExperimentSpec
    report: SimulationReport | None
    cached: bool
    attempts: int
    wall_time: float
    error: str | None = None
    error_class: str | None = None

    @property
    def failed(self) -> bool:
        return self.report is None


class _Running:
    """Bookkeeping for one in-flight worker process."""

    def __init__(self, index, spec, attempt, process, conn, started):
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = started


class Executor:
    """Runs experiment specs, optionally in parallel, through the cache.

    ``workers=0`` (the default) executes sequentially in-process --
    useful under debuggers, in environments without ``multiprocessing``
    head-room, and as the reference the parallel path is checked against.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.0,
        on_error: str = "raise",
        cache: ResultCache | None = None,
        journal: RunJournal | None = None,
        task_fn: Callable[[ExperimentSpec], SimulationReport] | None = None,
        trace_dir: str | Path | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {workers}"
            )
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {timeout}"
            )
        if retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {retries}"
            )
        if backoff < 0:
            raise ConfigurationError(
                f"backoff must be >= 0, got {backoff}"
            )
        if on_error not in ("raise", "collect"):
            raise ConfigurationError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}"
            )
        if trace_dir is not None and task_fn is not None:
            raise ConfigurationError(
                "trace_dir and task_fn are mutually exclusive: tracing "
                "substitutes its own task body"
            )
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.on_error = on_error
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        # Tracing bypasses the result cache in both directions: a cache
        # hit would skip the run that produces the trace artifacts, and
        # a traced report (which carries metrics) must not be served to
        # later untraced runs.
        self.cache = cache if self.trace_dir is None else None
        self.journal = journal if journal is not None else RunJournal()
        self.metrics = metrics
        # Testing hook: replaces execute_spec as the task body.  Under the
        # fork start method any callable works; under spawn it must be an
        # importable module-level function (a functools.partial of one,
        # as built for trace_dir below, also pickles fine).
        if self.trace_dir is not None:
            from repro.obs.hooks import execute_spec_traced

            self._task_fn = functools.partial(
                execute_spec_traced, trace_dir=str(self.trace_dir)
            )
        else:
            self._task_fn = task_fn

    def _backoff_for(self, attempt: int) -> float:
        """Delay before re-running a cell that just failed ``attempt``.

        A pure function of the attempt number (exponential doubling from
        ``backoff``), so the retry schedule is reproducible and
        journalable -- no clock reads, no jitter.
        """
        if self.backoff == 0.0:
            return 0.0
        return self.backoff * (2 ** (attempt - 1))

    def _give_up(self, error_class: str | None, attempt: int) -> bool:
        """Classify before retrying: permanent errors never retry."""
        if error_class in PERMANENT_ERROR_CLASSES:
            return True
        return attempt > self.retries

    # ------------------------------------------------------------------

    def run(
        self, sweep: SweepSpec | Sequence[ExperimentSpec]
    ) -> list[TaskResult]:
        """Execute every cell; results come back in cell order.

        Cache hits never reach a worker.  A cell that exhausts
        ``retries`` (or fails with a permanent error class) aborts the
        run with :class:`~repro.errors.ExecutionError` (remaining
        workers are terminated first) -- unless ``on_error="collect"``,
        in which case the failure becomes a ``TaskResult`` with
        ``report=None`` and the run continues.
        """
        if isinstance(sweep, SweepSpec):
            name, cells = sweep.name, list(sweep.cells)
        else:
            name, cells = "ad-hoc", list(sweep)
        started = time.perf_counter()
        self.journal.sweep_start(name, len(cells), self.workers)

        results: list[TaskResult | None] = [None] * len(cells)
        pending: list[tuple[int, ExperimentSpec]] = []
        for index, spec in enumerate(cells):
            report = self.cache.get(spec) if self.cache else None
            if report is not None:
                self.journal.task_cached(spec)
                results[index] = TaskResult(
                    spec=spec,
                    report=report,
                    cached=True,
                    attempts=0,
                    wall_time=0.0,
                )
            else:
                pending.append((index, spec))

        if self.workers == 0:
            self._run_sequential(pending, results)
        else:
            self._run_parallel(pending, results)

        self.journal.sweep_finish(name, time.perf_counter() - started)
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Sequential fallback
    # ------------------------------------------------------------------

    def _run_sequential(self, pending, results) -> None:
        fn = execute_spec if self._task_fn is None else self._task_fn
        for index, spec in pending:
            attempt = 0
            while True:
                attempt += 1
                self.journal.task_start(spec, attempt)
                t0 = time.perf_counter()
                try:
                    report = fn(spec)
                except Exception as exc:
                    error = traceback.format_exc()
                    error_class = type(exc).__name__
                    if self._give_up(error_class, attempt):
                        self._fail(
                            results, index, spec, attempt, error,
                            error_class,
                        )
                        break
                    delay = self._backoff_for(attempt)
                    self.journal.task_retry(
                        spec, attempt, error,
                        error_class=error_class, backoff=delay,
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self._finish(
                    results, index, spec, attempt,
                    time.perf_counter() - t0, report,
                )
                break

    # ------------------------------------------------------------------
    # Parallel fan-out
    # ------------------------------------------------------------------

    def _run_parallel(self, pending, results) -> None:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        queue = list(pending)  # (index, spec); retries carry attempt no.
        # Retries wait out their backoff in this queue as
        # (ready_at, index, spec, attempt); ready ones launch first.
        retry_queue: list[tuple[float, int, ExperimentSpec, int]] = []
        running: list[_Running] = []
        try:
            while queue or retry_queue or running:
                while len(running) < self.workers:
                    now = time.perf_counter()
                    ready = next(
                        (
                            item for item in retry_queue
                            if item[0] <= now
                        ),
                        None,
                    )
                    if ready is not None:
                        retry_queue.remove(ready)
                        _, index, spec, attempt = ready
                    elif queue:
                        index, spec = queue.pop(0)
                        attempt = 1
                    else:
                        break
                    running.append(
                        self._launch(context, index, spec, attempt)
                    )
                if self.metrics is not None:
                    self.metrics.set_gauge(
                        "executor.workers_busy", len(running)
                    )
                if running:
                    self._reap(running, retry_queue, results)
                elif retry_queue:
                    # Only backoffs in flight: wait for the earliest.
                    time.sleep(
                        min(
                            _POLL_SECONDS,
                            max(
                                0.0,
                                min(item[0] for item in retry_queue)
                                - time.perf_counter(),
                            ),
                        )
                    )
        except BaseException:
            self._terminate_all(running)
            raise

    def _launch(self, context, index, spec, attempt) -> _Running:
        self.journal.task_start(spec, attempt)
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(spec.to_dict(), self._task_fn, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent keeps only the reading end
        return _Running(
            index, spec, attempt, process, parent_conn,
            time.perf_counter(),
        )

    def _reap(self, running, retry_queue, results) -> None:
        """One scheduler pass: collect finished, crashed and overrun."""
        if running:
            connection_wait(
                [task.conn for task in running], timeout=_POLL_SECONDS
            )
        now = time.perf_counter()
        for task in list(running):
            outcome = None  # ("ok", report) | ("error", payload) | None
            if task.conn.poll():
                try:
                    outcome = task.conn.recv()
                except EOFError:  # died between send and close
                    outcome = (
                        "error",
                        {
                            "class": "WorkerCrash",
                            "traceback": "worker closed the pipe early",
                        },
                    )
            elif self.timeout is not None and (
                now - task.started > self.timeout
            ):
                outcome = (
                    "error",
                    {
                        "class": "Timeout",
                        "traceback": f"timed out after {self.timeout:g} s",
                    },
                )
            elif not task.process.is_alive():
                outcome = (
                    "error",
                    {
                        "class": "WorkerCrash",
                        "traceback": (
                            f"worker exited with code "
                            f"{task.process.exitcode} before reporting"
                        ),
                    },
                )
            if outcome is None:
                continue

            running.remove(task)
            self._retire(task)
            status, payload = outcome
            if status == "ok":
                self._finish(
                    results, task.index, task.spec, task.attempt,
                    now - task.started,
                    SimulationReport.from_dict(payload),
                )
            else:
                error = payload["traceback"]
                error_class = payload["class"]
                if self._give_up(error_class, task.attempt):
                    if self.on_error == "raise":
                        self._terminate_all(running)
                    self._fail(
                        results, task.index, task.spec, task.attempt,
                        error, error_class,
                    )
                    continue
                delay = self._backoff_for(task.attempt)
                self.journal.task_retry(
                    task.spec, task.attempt, error,
                    error_class=error_class, backoff=delay,
                )
                retry_queue.append(
                    (now + delay, task.index, task.spec, task.attempt + 1)
                )

    @staticmethod
    def _retire(task: _Running) -> None:
        task.conn.close()
        if task.process.is_alive():
            task.process.terminate()
        task.process.join()

    @staticmethod
    def _terminate_all(running: list[_Running]) -> None:
        for task in running:
            Executor._retire(task)
        running.clear()

    # ------------------------------------------------------------------

    def _finish(
        self, results, index, spec, attempt, wall_time, report
    ) -> None:
        if self.metrics is not None:
            self.metrics.inc("executor.tasks")
            self.metrics.observe(
                "latency.start_to_finish_ms",
                wall_time * 1000.0,
                LATENCY_BUCKETS_MS,
            )
        self.journal.task_finish(spec, attempt, wall_time, report)
        if self.cache is not None:
            self.cache.put(spec, report)
        results[index] = TaskResult(
            spec=spec,
            report=report,
            cached=False,
            attempts=attempt,
            wall_time=wall_time,
        )

    def _fail(
        self, results, index, spec, attempts, error, error_class
    ) -> None:
        self.journal.task_failed(
            spec, attempts, error, error_class=error_class
        )
        if self.on_error == "collect":
            results[index] = TaskResult(
                spec=spec,
                report=None,
                cached=False,
                attempts=attempts,
                wall_time=0.0,
                error=error,
                error_class=error_class,
            )
            return
        raise ExecutionError(
            f"task {spec.spec_hash[:12]} ({spec.describe()}) failed "
            f"after {attempts} attempt(s) [{error_class}]:\n{error}"
        )
